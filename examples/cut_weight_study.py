"""Study how the cut weight affects clustering quality and cost.

Section 4.2 of the paper discusses the trade-off behind the kernel's only
parameter: small cut weights find fine-grained shared structure (better
discrimination, higher cost), large cut weights only keep heavyweight shared
substrings (cheaper, only coarse categories).  This example runs the sweep on
both string variants (with and without byte information) and prints the two
tables side by side, which is the data behind experiments E6 and E7.

Run with::

    python examples/cut_weight_study.py --small     # reduced corpus (fast)
    python examples/cut_weight_study.py             # full corpus (~1 minute)
"""

from __future__ import annotations

import argparse

from repro.pipeline.config import ExperimentConfig
from repro.pipeline.pipeline import AnalysisPipeline
from repro.pipeline.report import summarise_sweep
from repro.pipeline.sweep import cut_weight_sweep
from repro.workloads.corpus import CorpusConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the reduced corpus")
    parser.add_argument("--seed", type=int, default=2017, help="corpus seed")
    parser.add_argument(
        "--cut-weights",
        type=int,
        nargs="+",
        default=[2, 4, 8, 16, 32, 64, 128, 256],
        help="cut weights to sweep",
    )
    arguments = parser.parse_args()

    corpus_config = CorpusConfig.small(seed=arguments.seed) if arguments.small else CorpusConfig.paper(seed=arguments.seed)
    traces = AnalysisPipeline(ExperimentConfig(corpus=corpus_config)).build_traces()

    for use_bytes, title in ((True, "byte information kept"), (False, "byte information ignored")):
        config = ExperimentConfig(
            kernel="kast",
            use_byte_information=use_bytes,
            n_clusters=3,
            linkage="single",
            corpus=corpus_config,
        )
        strings = AnalysisPipeline(config).encode(traces)
        sweep = cut_weight_sweep(config, cut_weights=arguments.cut_weights, strings=strings)
        print(summarise_sweep(sweep, title=f"Kast kernel cut-weight sweep ({title})"))
        best = sweep.best_point()
        print(
            f"best cut weight by ARI: {best.cut_weight} "
            f"(ARI {best.metrics['adjusted_rand_index']:.3f}, "
            f"{best.metrics['misplacements_vs_expected']:.0f} misplacements)"
        )
        print()

    print("Reading the tables: with byte information the smallest cut weights already")
    print("recover the {A}, {B}, {C+D} grouping (and cost the most); without byte")
    print("information only category B separates cleanly, matching section 4.2.")


if __name__ == "__main__":
    main()
