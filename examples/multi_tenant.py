"""Multi-tenant serving: bearer tokens, isolated namespaces, quotas.

This example walks the tenancy layer of :mod:`repro.service` end to end,
entirely in-process (one ephemeral localhost port):

1. start an :class:`~repro.service.AnalysisServer` with two configured
   tenants (``alpha`` and ``beta``), each named by its own bearer token;
2. show that a client without a token gets a typed ``unauthorized`` error
   while ``/healthz`` stays open for load balancers;
3. submit the *identical* corpus as both tenants and check the answers
   are bit-identical while the tenants share nothing — separate job
   stores, separate matrix caches under ``<state-dir>/tenants/<id>/``;
4. exhaust a tenant's request budget and show the typed ``rate-limited``
   answer carrying ``retry_after`` — and the client's backoff riding it.

Run with::

    python examples/multi_tenant.py [--small]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile

import numpy as np

from repro.api import AnalysisSession, make_spec
from repro.service import (
    AnalysisServer,
    Authenticator,
    RateLimited,
    ServiceClient,
    TenantQuotas,
    Unauthorized,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the reduced 16-example corpus")
    args = parser.parse_args()

    spec = make_spec("kast", cut_weight=2)
    with AnalysisSession() as session:
        strings = session.corpus(small=True, seed=7) if args.small else session.corpus(seed=2017)
        strings = strings[:8]
    print(f"corpus: {len(strings)} examples; spec: {spec.canonical()}")

    with tempfile.TemporaryDirectory(prefix="repro-tenants-example-") as state_dir:
        tenants_path = os.path.join(state_dir, "tenants.json")
        with open(tenants_path, "w", encoding="utf-8") as handle:
            json.dump({
                "tenants": {
                    "alpha": {"token": "alpha-secret"},
                    "beta": {"token": "beta-secret",
                             "quotas": {"requests_per_second": 2, "burst": 2}},
                }
            }, handle)

        server = AnalysisServer(
            state_dir=os.path.join(state_dir, "state"),
            authenticator=Authenticator.from_file(tenants_path),
            default_quotas=TenantQuotas(max_corpus_strings=10_000),
        )
        host, port = server.start_http()
        base_url = f"http://{host}:{port}"
        print(f"server: {base_url} with tenants {server.auth.tenant_ids}")

        # --- no token: typed unauthorized, but health stays open ----------
        with ServiceClient(base_url, retries=0) as anonymous:
            print(f"health without a token           : {anonymous.health()['status']}")
            try:
                anonymous.specs()
            except Unauthorized as exc:
                print(f"specs without a token            : unauthorized ({exc})")

        # --- two tenants, identical corpus, zero sharing -------------------
        with ServiceClient(base_url, token="alpha-secret") as alpha, \
                ServiceClient(base_url, token="beta-secret") as beta:
            matrix_alpha = alpha.matrix(spec, strings, timeout=600)
            matrix_beta = beta.matrix(spec, strings, timeout=600)
            print(
                f"alpha and beta payloads identical: "
                f"{np.array_equal(matrix_alpha.values, matrix_beta.values)}"
            )
            for tenant, client in (("alpha", alpha), ("beta", beta)):
                stats = client.cache_stats()
                namespace = os.path.join(server.store.root, "tenants", tenant)
                print(
                    f"tenant {tenant}: cache entries={stats['entries']} "
                    f"hits={stats['hits']} namespace={os.path.isdir(namespace)}"
                )

            # --- beta's rate budget: typed, hinted, and client-honoured ---
            try:
                for _ in range(8):
                    beta_no_retry = ServiceClient(base_url, token="beta-secret", retries=0)
                    beta_no_retry.specs()
            except RateLimited as exc:
                print(f"beta rate-limited                : retry_after={exc.retry_after}s")
            # The default client retries with backoff, sleeping at least
            # the server's hint — so the same burst succeeds, just slower.
            assert "kinds" in beta.specs()
            print("beta with retries                : specs served after backoff")

        server.close()
        print("server stopped")


if __name__ == "__main__":
    main()
