"""Reproduce the paper's clustering experiment on the synthetic HPC corpus.

This is the example behind Figures 6 and 7 of the paper: build the
110-example corpus (four I/O categories, each original expanded with mutated
copies), compute the Kast Spectrum Kernel matrix, and analyse it with Kernel
PCA and single-linkage hierarchical clustering.

Run with::

    python examples/cluster_hpc_corpus.py            # full 110-example corpus
    python examples/cluster_hpc_corpus.py --small    # reduced corpus (fast)
"""

from __future__ import annotations

import argparse

from repro.pipeline.config import ExperimentConfig
from repro.pipeline.pipeline import AnalysisPipeline
from repro.pipeline.report import summarise_result
from repro.viz.dendro import cluster_tree_summary
from repro.viz.scatter import scatter_from_kpca
from repro.workloads.corpus import CorpusConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the reduced 16-example corpus")
    parser.add_argument("--cut-weight", type=int, default=2, help="Kast kernel cut weight (paper: 2)")
    parser.add_argument("--seed", type=int, default=2017, help="corpus seed")
    arguments = parser.parse_args()

    corpus_config = CorpusConfig.small(seed=arguments.seed) if arguments.small else CorpusConfig.paper(seed=arguments.seed)
    config = ExperimentConfig(
        kernel="kast",
        cut_weight=arguments.cut_weight,
        n_clusters=3,
        linkage="single",
        corpus=corpus_config,
    )

    result = AnalysisPipeline(config).run()

    print(summarise_result(result, title="Kast Spectrum Kernel clustering of the I/O corpus"))
    print()
    print("Kernel PCA embedding (compare with Figure 6 of the paper):")
    print(scatter_from_kpca(result.kpca, title="  each mark is one example, labelled by its category"))
    print()
    print("Hierarchical clustering (compare with Figure 7 of the paper):")
    print(cluster_tree_summary(result.clustering.dendrogram))
    print()
    if result.matches_expected_partition():
        print("Result: the three groups {A}, {B}, {C+D} are recovered with no misplaced examples,")
        print("matching the paper's headline claim for the Kast kernel with byte information.")
    else:
        print("Result: the expected {A}, {B}, {C+D} partition was NOT recovered exactly.")
        print("Cluster composition:", result.cluster_composition())


if __name__ == "__main__":
    main()
