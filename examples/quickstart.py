"""Quickstart: compare two I/O access patterns with the Kast Spectrum Kernel.

This walks the library's core path end to end on two tiny hand-written
traces:

1. parse plain-text access patterns;
2. convert them to the weighted-string representation (trace -> tree ->
   compacted tree -> weighted string);
3. describe the kernel declaratively (:func:`repro.make_spec`) and evaluate
   it through an :class:`repro.AnalysisSession` — the facade that owns the
   warm caches every evaluation shares;
4. inspect the shared substrings backing the similarity value.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AnalysisSession, make_spec, parse_trace, trace_to_string
from repro.tree.builder import build_tree
from repro.tree.compaction import compact_tree
from repro.tree.serialize import render_tree

# A program that appends fixed-size records to a log file...
TRACE_A = """
# trace: writer_a
open  log1
write log1 4096
write log1 4096
write log1 4096
write log1 4096
fsync log1
close log1
"""

# ...and a second run of the same program that wrote a few more records and
# also read a small configuration file first.
TRACE_B = """
# trace: writer_b
open  cfg
read  cfg 512
read  cfg 512
close cfg
open  log1
write log1 4096
write log1 4096
write log1 4096
write log1 4096
write log1 4096
write log1 4096
fsync log1
close log1
"""

# A completely different program: random-offset read-modify-write cycles.
TRACE_C = """
# trace: random_updater
open  db
lseek db 0
read  db 1024
lseek db 0
write db 1024
lseek db 0
read  db 1024
lseek db 0
write db 1024
close db
"""


def main() -> None:
    trace_a = parse_trace(TRACE_A, name="writer_a")
    trace_b = parse_trace(TRACE_B, name="writer_b")
    trace_c = parse_trace(TRACE_C, name="random_updater")

    # Step 1: look at the intermediate tree of one trace.
    tree_a = compact_tree(build_tree(trace_a))
    print("Compacted access-pattern tree of writer_a:")
    print(render_tree(tree_a))
    print()

    # Step 2: the weighted-string representation.
    string_a = trace_to_string(trace_a)
    string_b = trace_to_string(trace_b)
    string_c = trace_to_string(trace_c)
    for string in (string_a, string_b, string_c):
        print(f"{string.name:16s} -> {string.to_text()}")
    print()

    # Step 3: pairwise similarities under the Kast Spectrum Kernel.  The
    # kernel is described declaratively (a picklable, JSON-serialisable
    # KernelSpec) and evaluated through an AnalysisSession, whose engines
    # cache every pair value — ask again and the session answers from the
    # warm cache.
    spec = make_spec("kast", cut_weight=2)
    with AnalysisSession() as session:
        print(f"Kernel spec: {spec.to_json()}")
        print("Normalised Kast Spectrum Kernel similarities (cut weight 2):")
        print(f"  writer_a  vs writer_b       : {session.normalized_value(spec, string_a, string_b):.4f}")
        print(f"  writer_a  vs random_updater : {session.normalized_value(spec, string_a, string_c):.4f}")
        print(f"  writer_b  vs random_updater : {session.normalized_value(spec, string_b, string_c):.4f}")
        print()

        # Step 4: why are writer_a and writer_b similar?  Inspect the
        # embedding through the session's warm kernel for the same spec.
        embedding = session.kernel(spec).embed(string_a, string_b)
        print("Shared substrings between writer_a and writer_b:")
        for feature in embedding.features:
            print(f"  weight {feature.weight_in_a:3d} / {feature.weight_in_b:3d}  <- {' '.join(feature.literals)}")


if __name__ == "__main__":
    main()
