"""Streaming classification: fit a landmark model once, serve traces in O(m).

This example walks the :mod:`repro.streaming` subsystem end to end:

1. fit a frozen :class:`~repro.streaming.model.LandmarkModel` from a
   labelled corpus — ``m`` k-center landmarks picked from the full Gram,
   plus the Nyström/kPCA factorisation for out-of-sample embedding;
2. serve *novel* traces through an in-process
   :class:`~repro.streaming.scorer.StreamingScorer`, watching the engine
   counters prove the serving contract: exactly ``m`` kernel evaluations
   for a cold trace, zero for a repeated one;
3. round-trip the model through JSON and a persistent
   :class:`~repro.streaming.store.ModelStore`, then serve the same traces
   over HTTP via ``fit-model`` / ``classify`` protocol messages — the
   ``repro model fit/classify/list`` CLI path.

Run with::

    python examples/streaming_classify.py [--small]
"""

from __future__ import annotations

import argparse
import tempfile

from repro.api import AnalysisSession, make_spec
from repro.service import AnalysisServer, ServiceClient
from repro.streaming.model import LandmarkModel


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the reduced 16-example corpus")
    parser.add_argument("--landmarks", type=int, default=6, help="landmark budget m")
    args = parser.parse_args()

    spec = make_spec("kast", cut_weight=2)

    with AnalysisSession() as session:
        corpus = session.corpus(small=True, seed=7) if args.small else session.corpus(seed=2017)
        # Traces from a different seed: the model has never seen them.
        arrivals = session.corpus(small=True, seed=99)[:3]

        # --- fit once (the only O(n^2) step, result-cache aware) ----------
        model, cache = session.fit_landmark_model(
            spec, corpus, name="example", landmarks=args.landmarks, strategy="kcenter"
        )
        print(
            f"fitted {model.name!r}: {model.m} landmark(s) from {len(corpus)} trace(s), "
            f"labels {model.summary()['labels']}, gram cache {cache}"
        )

        # --- serve in O(m), with the counters watching ---------------------
        scorer = session.streaming_scorer(model)
        engine = session.engine(spec)
        for trace in arrivals:
            before = engine.cache_info()["kernel_evals"]
            result = scorer.classify(trace)
            evals = engine.cache_info()["kernel_evals"] - before
            print(f"  {trace.name}: {result.label}  ({evals} kernel eval(s) — cold)")
        before = engine.cache_info()["kernel_evals"]
        repeat = scorer.classify(arrivals[0])
        warm_evals = engine.cache_info()["kernel_evals"] - before
        print(f"  {arrivals[0].name} again: {repeat.label}  ({warm_evals} eval(s) — warm)")

        # --- the model is a frozen, round-trippable artefact ---------------
        clone = LandmarkModel.from_json(model.to_json())
        print(f"JSON round trip preserves identity: {clone.model_id == model.model_id}")

    # --- the same path over HTTP (the `repro model` CLI) -------------------
    with tempfile.TemporaryDirectory(prefix="repro-streaming-example-") as state_dir:
        server = AnalysisServer(state_dir=state_dir)
        host, port = server.start_http()
        try:
            with ServiceClient(f"http://{host}:{port}") as client:
                fitted = client.fit_model(
                    spec, corpus, name="served", landmarks=args.landmarks, timeout=600
                )
                print(
                    f"served model {fitted['payload']['name']!r} "
                    f"({fitted['payload']['landmarks']} landmarks, cache {fitted['cache']})"
                )
                answer = client.classify("served", arrivals)
                for entry in answer["results"]:
                    print(
                        f"  HTTP {entry['name']}: {entry['label']}  "
                        f"({entry['kernel_evals']} eval(s), warm={entry['warm']})"
                    )
                counters = client.health()["models"]
                print(
                    f"health counters: {counters['requests']} request(s), "
                    f"{counters['traces']} trace(s), warm rate {counters['warm_rate']}"
                )
        finally:
            server.close()


if __name__ == "__main__":
    main()
