"""Service round trip: one warm analysis server, many processes' clients.

This example walks the :mod:`repro.service` subsystem end to end, entirely
in-process (no sockets to clean up besides an ephemeral localhost port):

1. start an :class:`~repro.service.AnalysisServer` — one warm
   :class:`~repro.api.AnalysisSession` plus a persistent on-disk job store —
   with its HTTP front end on an ephemeral port;
2. compute the same Kast Gram matrix locally and through a
   :class:`~repro.service.ServiceClient`, including a block-sharded job,
   and check the values are bit-identical;
3. stop the server, start a *fresh* server object on the same state
   directory, and retrieve a previously submitted job's result — the
   persistence story that lets clients survive server restarts.

Run with::

    python examples/service_roundtrip.py [--small]
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro.api import AnalysisSession, make_spec
from repro.service import AnalysisServer, ServiceClient


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the reduced 16-example corpus")
    parser.add_argument("--shards", type=int, default=3, help="block-shard count for the sharded job")
    args = parser.parse_args()

    spec = make_spec("kast", cut_weight=2)
    with AnalysisSession() as session:
        strings = session.corpus(small=True, seed=7) if args.small else session.corpus(seed=2017)
        local = session.matrix(spec, strings)
    print(f"corpus: {len(strings)} examples; spec: {spec.canonical()}")

    with tempfile.TemporaryDirectory(prefix="repro-service-example-") as state_dir:
        # --- a server, a client, and a bit-identical remote matrix --------
        server = AnalysisServer(state_dir=state_dir)
        host, port = server.start_http()
        print(f"server: http://{host}:{port}  (state dir {state_dir})")

        with ServiceClient(f"http://{host}:{port}") as client:
            print(f"health: {client.health()['status']}")

            remote = client.matrix(spec, strings, timeout=600)
            print(f"remote matrix identical to local : {np.array_equal(local.values, remote.values)}")

            sharded = client.matrix(spec, strings, shards=args.shards, timeout=600)
            print(
                f"{args.shards}-shard matrix identical to local: "
                f"{np.array_equal(local.values, sharded.values)}"
            )

            # --- a job handle that outlives the server process ------------
            job_id = client.submit(spec, strings, shards=2)
            client.result_payload(job_id, timeout=600)  # wait until done
        server.close()
        print(f"server stopped; job {job_id} persisted")

        # A fresh server object on the same state dir: the warm session is
        # gone, but the job store still answers for the finished job.
        restarted = AnalysisServer(state_dir=state_dir)
        host, port = restarted.start_http()
        with ServiceClient(f"http://{host}:{port}") as client:
            print(f"status after restart             : {client.status(job_id)}")
            recovered = client.result(job_id, timeout=60)
            print(
                f"recovered result identical       : "
                f"{np.array_equal(local.values, recovered.values)}"
            )
        restarted.close()


if __name__ == "__main__":
    main()
