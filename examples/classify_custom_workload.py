"""Classify a custom application's I/O pattern against the known categories.

A downstream use case the paper motivates: given traces of a *new*
application, find which known I/O behaviour class it resembles, e.g. to pick
tuning parameters (compare Behzad et al., cited in the related work).  This
example:

1. defines a custom workload generator for a checkpoint/restart application
   (bursts of large sequential writes, occasional full re-reads) and registers
   a domain-specific operation name with the operation registry;
2. builds a small reference corpus of the paper's four categories;
3. classifies the new traces with a kernel nearest-centroid rule on the Kast
   similarity matrix.

Run with::

    python examples/classify_custom_workload.py
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.kast import KastSpectrumKernel
from repro.strings.encoder import trace_to_string
from repro.traces.operations import DEFAULT_REGISTRY, OperationClass, OperationSpec
from repro.workloads.base import OperationEmitter, WorkloadConfig, WorkloadGenerator
from repro.workloads.corpus import CorpusConfig, build_corpus


class CheckpointRestartGenerator(WorkloadGenerator):
    """Synthetic checkpoint/restart application.

    Writes a large checkpoint in fixed-size chunks every "iteration", flushes
    it with a custom collective call, and occasionally restarts by reading the
    whole checkpoint back sequentially.
    """

    label = "CKPT"
    description = "checkpoint/restart application (bursty large sequential writes)"

    def __init__(self, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(config or WorkloadConfig(files=1, operations_per_file=32, base_request_size=1 << 20))

    def _generate_operations(self, emitter: OperationEmitter, rng: random.Random) -> None:
        chunk = self.config.base_request_size
        iterations = 3 + rng.randint(0, 1)
        for iteration in range(iterations):
            handle = f"ckpt_{iteration}"
            emitter.emit("open", handle)
            offset = 0
            for _ in range(self.config.operations_per_file):
                emitter.emit("write", handle, chunk, offset=offset)
                offset += chunk
            emitter.emit("collective_flush", handle)
            emitter.emit("close", handle)
        # Restart path: read the last checkpoint back.
        handle = f"ckpt_{iterations - 1}"
        emitter.emit("open", handle)
        offset = 0
        for _ in range(self.config.operations_per_file):
            emitter.emit("read", handle, chunk, offset=offset)
            offset += chunk
        emitter.emit("close", handle)


def nearest_centroid(kernel: KastSpectrumKernel, query, references: Dict[str, List]) -> Dict[str, float]:
    """Mean normalised similarity of *query* to each labelled reference group."""
    scores = {}
    for label, strings in sorted(references.items()):
        scores[label] = sum(kernel.normalized_value(query, reference) for reference in strings) / len(strings)
    return scores


def main() -> None:
    # Register the application's custom collective flush so the parser and
    # statistics classify it sensibly (metadata-only, no payload bytes).
    DEFAULT_REGISTRY.register(
        OperationSpec("collective_flush", OperationClass.METADATA, carries_bytes=False)
    )

    # Reference corpus: a few examples per paper category.
    corpus = build_corpus(CorpusConfig(originals_per_class={"A": 3, "B": 3, "C": 3, "D": 3}, copies_per_original=1, seed=11))
    references: Dict[str, List] = {}
    for trace in corpus:
        references.setdefault(trace.label or "?", []).append(trace_to_string(trace))

    kernel = KastSpectrumKernel(cut_weight=2)
    generator = CheckpointRestartGenerator()

    print("Classifying checkpoint/restart traces against the paper's categories")
    print("(mean normalised Kast similarity to each category)\n")
    category_names = {
        "A": "Flash I/O",
        "B": "Random POSIX I/O",
        "C": "Normal I/O",
        "D": "Random Access I/O",
    }
    for seed in range(3):
        trace = generator.generate(seed=seed)
        query = trace_to_string(trace)
        scores = nearest_centroid(kernel, query, references)
        best = max(scores, key=scores.get)
        rendered = "  ".join(f"{label}={value:.3f}" for label, value in sorted(scores.items()))
        print(f"  {trace.name:10s} -> closest: {best} ({category_names[best]})   [{rendered}]")

    print()
    print("The checkpoint writer's contiguous fixed-size write bursts make it most")
    print("similar to the sequential-write categories (C/D) rather than to the")
    print("seek-heavy (B) or mixed-record-size (A) behaviours.")


if __name__ == "__main__":
    main()
