"""Compare the Kast Spectrum Kernel against the baseline string kernels.

Reproduces the kernel comparison of section 4 (Kast vs blended spectrum vs
k-spectrum vs the bag kernels) as a single table: for each kernel, the corpus
is clustered into three groups with single linkage and scored against the
paper's expected partition {A}, {B}, {C u D}.

Run with::

    python examples/compare_kernels.py             # full corpus (a few seconds)
    python examples/compare_kernels.py --small     # reduced corpus
"""

from __future__ import annotations

import argparse
import time

from repro import AnalysisSession, kernel_choices
from repro.learn.metrics import adjusted_rand_index
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.report import format_table
from repro.workloads.corpus import CorpusConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="use the reduced corpus")
    parser.add_argument("--cut-weight", type=int, default=2, help="cut weight / minimum substring weight")
    parser.add_argument("--seed", type=int, default=2017, help="corpus seed")
    arguments = parser.parse_args()

    corpus_config = CorpusConfig.small(seed=arguments.seed) if arguments.small else CorpusConfig.paper(seed=arguments.seed)

    # One session for the whole comparison: the corpus is encoded once and
    # every kernel's engine shares the session's token interner.  The kernel
    # kinds come from the spec registry — registering a new kernel adds it
    # to this comparison automatically.
    session = AnalysisSession()
    strings = session.corpus(corpus_config)

    rows = []
    for kernel_name in kernel_choices():
        config = ExperimentConfig(
            kernel=kernel_name,
            cut_weight=arguments.cut_weight,
            n_clusters=3,
            linkage="single",
            corpus=corpus_config,
        )
        start = time.perf_counter()
        result = session.analyze(config, strings=strings)
        elapsed = time.perf_counter() - start
        labels = [label or "?" for label in result.labels]
        merged = ["CD" if label in ("C", "D") else label for label in labels]
        rows.append(
            {
                "kernel": kernel_name,
                "ARI (3-group target)": adjusted_rand_index(list(result.assignments), merged),
                "purity (4 labels)": result.metrics["purity"],
                "misplacements": int(result.metrics["misplacements_vs_expected"]),
                "exact partition": "yes" if result.matches_expected_partition() else "no",
                "seconds": elapsed,
            }
        )

    print(f"Kernel comparison on {len(strings)} examples (cut weight {arguments.cut_weight}, single linkage, 3 clusters)")
    print(format_table(rows))
    print()
    print("Expected shape (paper, section 4): the Kast kernel recovers the exact")
    print("{A}, {B}, {C+D} partition; the blended spectrum kernel only isolates A;")
    print("the k-spectrum and bag kernels do not produce an acceptable clustering.")


if __name__ == "__main__":
    main()
