"""Command-line interface.

``repro-iokast`` (or ``python -m repro``) exposes the main library workflows:

* ``generate`` — write a synthetic trace corpus to a directory;
* ``convert`` — convert one trace file to its weighted-string representation;
* ``compare`` — evaluate the Kast kernel between two trace files;
* ``experiment`` — run one of the canned paper experiments and print the
  report;
* ``sweep`` — run the cut-weight sweep and print the table.

The CLI is intentionally thin: every command is a few lines of glue around
the library API, so scripting users can lift the same calls into their own
code.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.core.kast import KAST_BACKENDS, KastSpectrumKernel
from repro.pipeline.config import KERNEL_CHOICES, ExperimentConfig
from repro.pipeline.experiments import (
    experiment_cut_weight_sweep,
    experiment_fig6_kpca_kast,
    experiment_fig7_hclust_kast,
    experiment_fig8_kpca_blended,
    experiment_fig9_hclust_blended,
    experiment_nobytes_variant,
    experiment_worked_example,
)
from repro.pipeline.report import summarise_result, summarise_sweep
from repro.strings.encoder import trace_to_string
from repro.traces.parser import parse_trace_file
from repro.traces.writer import write_trace
from repro.viz.dendro import cluster_tree_summary
from repro.viz.scatter import scatter_from_kpca
from repro.workloads.corpus import CorpusConfig, build_corpus

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig6": experiment_fig6_kpca_kast,
    "fig7": experiment_fig7_hclust_kast,
    "fig8": experiment_fig8_kpca_blended,
    "fig9": experiment_fig9_hclust_blended,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-iokast`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-iokast",
        description="Weighted-string representation and Kast Spectrum Kernel for I/O access patterns",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="write a synthetic trace corpus to a directory")
    generate.add_argument("output", help="directory to write the trace files into")
    generate.add_argument("--seed", type=int, default=2017, help="corpus seed")
    generate.add_argument("--small", action="store_true", help="generate the reduced test corpus")

    convert = subparsers.add_parser("convert", help="convert a trace file to its weighted string")
    convert.add_argument("trace", help="path to a plain-text trace file")
    convert.add_argument("--no-bytes", action="store_true", help="ignore byte information")

    compare = subparsers.add_parser("compare", help="evaluate the Kast kernel between two trace files")
    compare.add_argument("trace_a", help="first trace file")
    compare.add_argument("trace_b", help="second trace file")
    compare.add_argument("--cut-weight", type=int, default=2, help="Kast kernel cut weight")
    compare.add_argument("--no-bytes", action="store_true", help="ignore byte information")
    _add_engine_arguments(compare)

    experiment = subparsers.add_parser("experiment", help="run one of the canned paper experiments")
    experiment.add_argument(
        "name",
        choices=sorted(_EXPERIMENTS) + ["worked-example"],
        help="which experiment to run",
    )
    experiment.add_argument("--seed", type=int, default=2017, help="corpus seed")
    experiment.add_argument("--cut-weight", type=int, default=2, help="cut weight")
    _add_engine_arguments(experiment)

    sweep = subparsers.add_parser("sweep", help="run the cut-weight sweep")
    sweep.add_argument("--seed", type=int, default=2017, help="corpus seed")
    sweep.add_argument("--no-bytes", action="store_true", help="use the byte-free string variant")
    _add_engine_arguments(sweep)

    return parser


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Kernel-engine flags shared by the kernel-evaluating commands."""
    parser.add_argument(
        "--backend",
        choices=list(KAST_BACKENDS),
        default="numpy",
        help="Kast candidate-search implementation (default: numpy)",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="worker threads for Gram-matrix construction (default: 1)",
    )


def _command_generate(args: argparse.Namespace) -> int:
    config = CorpusConfig.small(seed=args.seed) if args.small else CorpusConfig.paper(seed=args.seed)
    traces = build_corpus(config)
    os.makedirs(args.output, exist_ok=True)
    for trace in traces:
        write_trace(trace, os.path.join(args.output, f"{trace.name}.trace"))
    print(f"wrote {len(traces)} traces to {args.output}")
    return 0


def _command_convert(args: argparse.Namespace) -> int:
    trace = parse_trace_file(args.trace)
    string = trace_to_string(trace, use_byte_information=not args.no_bytes)
    print(string.to_text())
    print(f"# tokens={len(string)} total_weight={string.total_weight()}", file=sys.stderr)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    trace_a = parse_trace_file(args.trace_a)
    trace_b = parse_trace_file(args.trace_b)
    use_bytes = not args.no_bytes
    string_a = trace_to_string(trace_a, use_byte_information=use_bytes)
    string_b = trace_to_string(trace_b, use_byte_information=use_bytes)
    kernel = KastSpectrumKernel(cut_weight=args.cut_weight, backend=args.backend)
    embedding = kernel.embed(string_a, string_b)
    print(embedding.describe())
    print(f"raw kernel value        : {embedding.kernel_value}")
    print(f"normalised kernel value : {kernel.normalized_value(string_a, string_b):.6f}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    if args.name == "worked-example":
        for key, value in experiment_worked_example().items():
            print(f"{key}: {value}")
        return 0
    result = _EXPERIMENTS[args.name](
        seed=args.seed, cut_weight=args.cut_weight, n_jobs=args.n_jobs, backend=args.backend
    )
    print(summarise_result(result, title=f"experiment {args.name}"))
    print()
    print(scatter_from_kpca(result.kpca, title="Kernel PCA (first two components)"))
    print()
    print(cluster_tree_summary(result.clustering.dendrogram))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.no_bytes:
        sweep = experiment_nobytes_variant(seed=args.seed, n_jobs=args.n_jobs, backend=args.backend)
        title = "cut-weight sweep (byte information ignored)"
    else:
        sweep = experiment_cut_weight_sweep(seed=args.seed, n_jobs=args.n_jobs, backend=args.backend)
        title = "cut-weight sweep (byte information kept)"
    print(summarise_sweep(sweep, title=title))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-iokast`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "generate": _command_generate,
        "convert": _command_convert,
        "compare": _command_compare,
        "experiment": _command_experiment,
        "sweep": _command_sweep,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
