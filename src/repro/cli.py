"""Command-line interface.

``repro-iokast`` (or ``python -m repro``) exposes the main library workflows:

* ``generate`` — write a synthetic trace corpus to a directory;
* ``convert`` — convert one trace file to its weighted-string representation;
* ``compare`` — evaluate a kernel between two trace files;
* ``matrix`` — compute the JSON Gram matrix of a trace-corpus directory;
* ``experiment`` — run one of the canned paper experiments and print the
  report;
* ``sweep`` — run the cut-weight sweep and print the table;
* ``serve`` — run the analysis service (HTTP or stdio) over a persistent
  state directory;
* ``worker`` — run a pull-loop worker against a server's state directory,
  claiming and executing leased block tasks (scale out by starting more);
* ``gc`` — sweep expired terminal jobs out of a state directory;
* ``remote`` — talk to a running analysis service (submit matrix and
  analyze jobs, query status/results, health);
* ``model`` — the streaming serving tier: fit landmark models server-side
  and classify individual trace files against them in O(m) per request.

The CLI is intentionally thin: every command is a few lines of glue around
the :class:`~repro.api.session.AnalysisSession` facade and the declarative
kernel-spec registry, so scripting users can lift the same calls into their
own code.  Kernel-evaluating commands accept either flag-level kernel
options (``--kernel``, ``--cut-weight``, …) or a full declarative spec via
``--spec path.json`` (see :class:`~repro.api.spec.KernelSpec`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.api import AnalysisSession, KernelSpec, kernel_choices
from repro.core.atomicio import write_text_atomic
from repro.core.kast import KAST_BACKENDS
from repro.pipeline.config import ExperimentConfig, config_from_spec
from repro.pipeline.experiments import (
    experiment_cut_weight_sweep,
    experiment_fig6_kpca_kast,
    experiment_fig7_hclust_kast,
    experiment_fig8_kpca_blended,
    experiment_fig9_hclust_blended,
    experiment_nobytes_variant,
    experiment_worked_example,
)
from repro.pipeline.report import summarise_result, summarise_sweep
from repro.pipeline.sweep import cut_weight_sweep
from repro.streaming.landmarks import LANDMARK_STRATEGIES
from repro.strings.encoder import trace_to_string
from repro.traces.parser import parse_trace_file
from repro.traces.writer import write_trace
from repro.viz.dendro import cluster_tree_summary
from repro.viz.scatter import scatter_from_kpca
from repro.workloads.corpus import CorpusConfig, build_corpus

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig6": experiment_fig6_kpca_kast,
    "fig7": experiment_fig7_hclust_kast,
    "fig8": experiment_fig8_kpca_blended,
    "fig9": experiment_fig9_hclust_blended,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-iokast`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-iokast",
        description="Weighted-string representation and Kast Spectrum Kernel for I/O access patterns",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="write a synthetic trace corpus to a directory")
    generate.add_argument("output", help="directory to write the trace files into")
    generate.add_argument("--seed", type=int, default=2017, help="corpus seed")
    generate.add_argument("--small", action="store_true", help="generate the reduced test corpus")

    convert = subparsers.add_parser("convert", help="convert a trace file to its weighted string")
    convert.add_argument("trace", help="path to a plain-text trace file")
    convert.add_argument("--no-bytes", action="store_true", help="ignore byte information")

    compare = subparsers.add_parser("compare", help="evaluate a kernel between two trace files")
    compare.add_argument("trace_a", help="first trace file")
    compare.add_argument("trace_b", help="second trace file")
    compare.add_argument("--cut-weight", type=int, default=2, help="Kast kernel cut weight")
    compare.add_argument("--no-bytes", action="store_true", help="ignore byte information")
    _add_spec_argument(compare)
    _add_engine_arguments(compare)

    matrix = subparsers.add_parser(
        "matrix", help="compute the JSON Gram matrix of a directory of trace files"
    )
    matrix.add_argument("corpus", help="directory containing *.trace files")
    matrix.add_argument("--kernel", choices=list(kernel_choices()), default="kast", help="kernel kind")
    matrix.add_argument("--cut-weight", type=int, default=2, help="cut weight / minimum substring weight")
    matrix.add_argument("--spectrum-k", type=int, default=3, help="substring length bound (spectrum/blended)")
    matrix.add_argument("--no-bytes", action="store_true", help="ignore byte information")
    matrix.add_argument("--raw", action="store_true", help="skip cosine normalisation")
    matrix.add_argument("--output", default=None, help="write the JSON payload here instead of stdout")
    _add_spec_argument(matrix)
    _add_engine_arguments(matrix)

    experiment = subparsers.add_parser("experiment", help="run one of the canned paper experiments")
    experiment.add_argument(
        "name",
        choices=sorted(_EXPERIMENTS) + ["worked-example"],
        help="which experiment to run",
    )
    experiment.add_argument("--seed", type=int, default=2017, help="corpus seed")
    experiment.add_argument("--cut-weight", type=int, default=2, help="cut weight")
    _add_engine_arguments(experiment)

    sweep = subparsers.add_parser("sweep", help="run the cut-weight sweep")
    sweep.add_argument("--seed", type=int, default=2017, help="corpus seed")
    sweep.add_argument("--no-bytes", action="store_true", help="use the byte-free string variant")
    _add_spec_argument(sweep)
    _add_engine_arguments(sweep)

    serve = subparsers.add_parser("serve", help="run the analysis service")
    serve.add_argument("--state-dir", required=True, help="job-store directory (records/payloads/quarantine)")
    serve.add_argument("--host", default="127.0.0.1", help="HTTP bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0, help="HTTP port (0 = pick an ephemeral port)")
    serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port here once listening (for scripts using --port 0)",
    )
    serve.add_argument("--stdio", action="store_true", help="serve line-framed JSON on stdin/stdout instead of HTTP")
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="default block-shard count for matrix jobs that do not request one (default: 1)",
    )
    serve.add_argument("--n-jobs", type=int, default=1, help="engine workers (default: 1)")
    serve.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="engine worker-pool implementation (default: thread)",
    )
    serve.add_argument("--job-workers", type=int, default=2, help="concurrent service jobs (default: 2)")
    serve.add_argument(
        "--no-inline-blocks",
        action="store_true",
        help="leave distributed block tasks entirely to external workers (default: the server also executes blocks)",
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=900.0,
        help="lease stamped on jobs this server claims (default: 900)",
    )
    serve.add_argument(
        "--job-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="garbage-collect terminal jobs older than this (default: keep forever)",
    )
    serve.add_argument(
        "--gc-interval",
        type=float,
        default=30.0,
        help="seconds between maintenance passes (lease requeue, adoption, TTL sweep; default: 30)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent matrix result cache (default: cache under <state-dir>/matrix-cache)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=64,
        metavar="N",
        help="LRU bound on result-cache entries (default: 64)",
    )
    serve.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict result-cache entries idle longer than this (default: LRU eviction only)",
    )
    serve.add_argument(
        "--no-pair-store",
        action="store_true",
        help="disable the persistent pair-value store (default: store under <state-dir>/pair-store)",
    )
    serve.add_argument(
        "--max-pair-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="size bound on pair-store segments (default: 256 MiB)",
    )
    serve.add_argument(
        "--pair-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict pair-store segments idle longer than this (default: LRU eviction only)",
    )
    serve.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="require this bearer token on every request (single-tenant auth)",
    )
    serve.add_argument(
        "--tenants",
        default=None,
        metavar="PATH",
        help="tenants.json mapping tenant ids to tokens and quota overrides (multi-tenant auth)",
    )
    serve.add_argument(
        "--max-request-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="refuse request bodies larger than this (default: 64 MiB)",
    )
    serve.add_argument(
        "--tenant-rps",
        type=float,
        default=None,
        metavar="N",
        help="default per-tenant request rate limit in requests/second (default: unlimited)",
    )
    serve.add_argument(
        "--tenant-burst",
        type=int,
        default=None,
        metavar="N",
        help="with --tenant-rps: token-bucket burst capacity (default: twice the rate)",
    )
    serve.add_argument(
        "--max-queued-jobs",
        type=int,
        default=None,
        metavar="N",
        help="default per-tenant bound on live (queued + running) jobs (default: unlimited)",
    )
    serve.add_argument(
        "--max-corpus-strings",
        type=int,
        default=None,
        metavar="N",
        help="default per-tenant bound on submitted corpus size (default: unlimited)",
    )

    worker = subparsers.add_parser(
        "worker", help="run a pull-loop worker over a server's state directory"
    )
    worker.add_argument("--state-dir", required=True, help="the job-store directory shared with the server")
    worker.add_argument("--worker-id", default=None, help="stable worker identity (default: host/pid-derived)")
    worker.add_argument(
        "--poll-interval", type=float, default=0.5, help="seconds between queue scans when idle (default: 0.5)"
    )
    worker.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="lease stamped on claimed tasks, renewed while running (default: 30)",
    )
    worker.add_argument("--n-jobs", type=int, default=1, help="engine workers (default: 1)")
    worker.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="engine worker-pool implementation (default: thread)",
    )
    worker.add_argument(
        "--max-tasks", type=int, default=None, help="exit after executing this many tasks (default: unbounded)"
    )
    worker.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit after the queue stays dry this long (default: run forever)",
    )
    worker.add_argument(
        "--throttle",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="sleep between claiming and executing each task (rate limit; default: 0)",
    )
    worker.add_argument(
        "--no-pair-store",
        action="store_true",
        help="do not share the pair-value store under <state-dir>/pair-store",
    )

    gc = subparsers.add_parser("gc", help="sweep expired terminal jobs out of a state directory")
    gc.add_argument("--state-dir", required=True, help="the job-store directory to sweep")
    gc.add_argument(
        "--ttl",
        type=float,
        required=True,
        metavar="SECONDS",
        help="drop terminal jobs whose last update is older than this (0 = every terminal job)",
    )
    gc.add_argument("--dry-run", action="store_true", help="print what would be swept without removing it")
    gc.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also evict matrix result-cache entries idle longer than this (0 = every entry; "
        "default: leave the cache alone)",
    )
    gc.add_argument(
        "--max-cache-entries",
        type=int,
        default=None,
        metavar="N",
        help="with --cache-ttl: also enforce this LRU bound on the result cache",
    )
    gc.add_argument(
        "--pair-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also evict pair-store segments idle longer than this (0 = every segment; "
        "default: leave the pair store alone)",
    )
    gc.add_argument(
        "--max-pair-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="also shrink the pair store to this many segment bytes (LRU), "
        "usable with or without --pair-ttl",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant checkers (atomic writes, lock discipline, "
        "determinism, protocol completeness, typed errors, metric naming)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files and/or directories to scan (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="JSON baseline of grandfathered findings; matched findings do not fail the run",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from this run: keep matched entries, add current "
        "findings (with TODO justifications), drop stale entries",
    )
    lint.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    lint.add_argument(
        "--ignore",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules with their summaries and exit",
    )

    remote = subparsers.add_parser("remote", help="talk to a running analysis service")
    remote.add_argument("--url", required=True, help="server base URL, e.g. http://127.0.0.1:8123")
    remote.add_argument("--timeout", type=float, default=600.0, help="seconds to wait for results (default: 600)")
    remote.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="bearer token for an auth-enabled server (default: $REPRO_SERVICE_TOKEN)",
    )
    remote_actions = remote.add_subparsers(dest="remote_command", required=True)

    remote_actions.add_parser("health", help="print the server health snapshot")
    remote_actions.add_parser("specs", help="list the server's kernel kinds and warm specs")
    remote_actions.add_parser(
        "cache-stats", help="print the server's matrix result-cache and pair-store counters"
    )
    remote_actions.add_parser(
        "metrics", help="fetch and print the server's Prometheus /metrics page"
    )

    remote_matrix = remote_actions.add_parser(
        "matrix", help="compute a Gram matrix remotely from a directory of trace files"
    )
    remote_matrix.add_argument("corpus", help="directory containing *.trace files")
    remote_matrix.add_argument("--kernel", choices=list(kernel_choices()), default="kast", help="kernel kind")
    remote_matrix.add_argument("--cut-weight", type=int, default=2, help="cut weight / minimum substring weight")
    remote_matrix.add_argument("--spectrum-k", type=int, default=3, help="substring length bound (spectrum/blended)")
    remote_matrix.add_argument("--no-bytes", action="store_true", help="ignore byte information")
    remote_matrix.add_argument("--raw", action="store_true", help="skip cosine normalisation")
    remote_matrix.add_argument(
        "--shards",
        type=int,
        default=None,
        help="block-shard count for the job (1 = monolithic; default: the server's default)",
    )
    remote_matrix.add_argument(
        "--distributed",
        action="store_true",
        help="persist the shard blocks as leasable tasks for external `repro-iokast worker` processes",
    )
    remote_matrix.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the server's matrix result cache (always re-evaluate kernel pairs)",
    )
    remote_matrix.add_argument("--no-wait", action="store_true", help="print the job id instead of waiting")
    remote_matrix.add_argument("--output", default=None, help="write the JSON payload here instead of stdout")
    _add_spec_argument(remote_matrix)

    remote_analyze = remote_actions.add_parser(
        "analyze", help="run the full analysis pipeline remotely from a directory of trace files"
    )
    remote_analyze.add_argument("corpus", help="directory containing *.trace files")
    remote_analyze.add_argument("--kernel", choices=list(kernel_choices()), default="kast", help="kernel kind")
    remote_analyze.add_argument("--cut-weight", type=int, default=2, help="cut weight / minimum substring weight")
    remote_analyze.add_argument("--spectrum-k", type=int, default=3, help="substring length bound (spectrum/blended)")
    remote_analyze.add_argument("--no-bytes", action="store_true", help="ignore byte information")
    remote_analyze.add_argument("--clusters", type=int, default=3, help="cluster count (default: 3)")
    remote_analyze.add_argument("--components", type=int, default=2, help="kernel-PCA components (default: 2)")
    remote_analyze.add_argument(
        "--linkage", choices=["single", "complete", "average"], default="single",
        help="hierarchical-clustering linkage (default: single)",
    )
    remote_analyze.add_argument("--no-wait", action="store_true", help="print the job id instead of waiting")
    remote_analyze.add_argument("--output", default=None, help="write the JSON payload here instead of stdout")
    _add_spec_argument(remote_analyze)

    remote_status = remote_actions.add_parser("status", help="print one job's status")
    remote_status.add_argument("job_id", help="job id returned by a submit")

    remote_result = remote_actions.add_parser("result", help="fetch one job's result payload")
    remote_result.add_argument("job_id", help="job id returned by a submit")
    remote_result.add_argument("--output", default=None, help="write the JSON payload here instead of stdout")
    remote_result.add_argument("--forget", action="store_true", help="drop the job server-side after delivery")

    remote_cancel = remote_actions.add_parser("cancel", help="cancel a queued job")
    remote_cancel.add_argument("job_id", help="job id returned by a submit")

    model = subparsers.add_parser(
        "model", help="fit and serve streaming landmark models on a running analysis service"
    )
    model.add_argument("--url", required=True, help="server base URL, e.g. http://127.0.0.1:8123")
    model.add_argument("--timeout", type=float, default=600.0, help="seconds to wait for fits (default: 600)")
    model.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="bearer token for an auth-enabled server (default: $REPRO_SERVICE_TOKEN)",
    )
    model_actions = model.add_subparsers(dest="model_command", required=True)

    model_fit = model_actions.add_parser(
        "fit", help="fit a landmark model server-side from a directory of trace files"
    )
    model_fit.add_argument("corpus", help="directory containing *.trace files")
    model_fit.add_argument("--name", required=True, help="model name (the store key)")
    model_fit.add_argument("--kernel", choices=list(kernel_choices()), default="kast", help="kernel kind")
    model_fit.add_argument("--cut-weight", type=int, default=2, help="cut weight / minimum substring weight")
    model_fit.add_argument("--spectrum-k", type=int, default=3, help="substring length bound (spectrum/blended)")
    model_fit.add_argument("--no-bytes", action="store_true", help="ignore byte information")
    model_fit.add_argument("--landmarks", type=int, default=16, help="landmark count m (default: 16)")
    model_fit.add_argument(
        "--strategy", choices=list(LANDMARK_STRATEGIES), default="kcenter",
        help="landmark selection strategy (default: kcenter)",
    )
    model_fit.add_argument("--seed", type=int, default=2017, help="selection seed (default: 2017)")
    model_fit.add_argument("--components", type=int, default=2, help="Nyström/kPCA components (default: 2)")
    model_fit.add_argument(
        "--clusters", type=int, default=None,
        help="fit kernel k-means pseudo-labels with this many clusters "
        "(default: only when the corpus is unlabelled)",
    )
    model_fit.add_argument(
        "--no-cache", action="store_true",
        help="bypass the server's matrix result cache when computing the fitting Gram",
    )
    _add_spec_argument(model_fit)

    model_classify = model_actions.add_parser(
        "classify", help="classify trace files against a stored model"
    )
    model_classify.add_argument("traces", nargs="+", help="trace files to classify")
    model_classify.add_argument("--name", required=True, help="stored model name")
    model_classify.add_argument("--no-bytes", action="store_true", help="ignore byte information")
    model_classify.add_argument(
        "--embed", action="store_true", help="also return the Nyström/kPCA embedding per trace"
    )
    model_classify.add_argument("--output", default=None, help="write the JSON response here too")

    model_actions.add_parser("list", help="list the server's stored models and serve counters")

    return parser


def _add_spec_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--spec",
        default=None,
        metavar="PATH",
        help="JSON kernel-spec file (overrides the kernel flags; see repro.api.KernelSpec)",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Kernel-engine flags shared by the kernel-evaluating commands."""
    parser.add_argument(
        "--backend",
        choices=list(KAST_BACKENDS),
        default="numpy",
        help="Kast candidate-search implementation (default: numpy)",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help="workers for Gram-matrix construction (default: 1)",
    )
    parser.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="worker-pool implementation for --n-jobs > 1 (default: thread)",
    )


def _load_spec(path: str) -> KernelSpec:
    with open(path, "r", encoding="utf-8") as handle:
        return KernelSpec.from_json(handle.read())


def _session_from_args(args: argparse.Namespace) -> AnalysisSession:
    return AnalysisSession(n_jobs=args.n_jobs, executor=getattr(args, "executor", "thread"))


def _command_generate(args: argparse.Namespace) -> int:
    config = CorpusConfig.small(seed=args.seed) if args.small else CorpusConfig.paper(seed=args.seed)
    traces = build_corpus(config)
    os.makedirs(args.output, exist_ok=True)
    for trace in traces:
        write_trace(trace, os.path.join(args.output, f"{trace.name}.trace"))
    print(f"wrote {len(traces)} traces to {args.output}")
    return 0


def _command_convert(args: argparse.Namespace) -> int:
    trace = parse_trace_file(args.trace)
    string = trace_to_string(trace, use_byte_information=not args.no_bytes)
    print(string.to_text())
    print(f"# tokens={len(string)} total_weight={string.total_weight()}", file=sys.stderr)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    trace_a = parse_trace_file(args.trace_a)
    trace_b = parse_trace_file(args.trace_b)
    use_bytes = not args.no_bytes
    string_a = trace_to_string(trace_a, use_byte_information=use_bytes)
    string_b = trace_to_string(trace_b, use_byte_information=use_bytes)
    if args.spec is not None:
        spec = _load_spec(args.spec)
    else:
        spec = ExperimentConfig(cut_weight=args.cut_weight, backend=args.backend).kernel_spec()
    session = _session_from_args(args)
    kernel = session.kernel(spec)
    embed = getattr(kernel, "embed", None)
    if callable(embed):
        print(embed(string_a, string_b).describe())
    else:
        print(f"kernel spec               : {spec.canonical()}")
    print(f"raw kernel value        : {session.value(spec, string_a, string_b)}")
    print(f"normalised kernel value : {session.normalized_value(spec, string_a, string_b):.6f}")
    return 0


def _emit_payload(payload: dict, output: Optional[str], summary: str) -> None:
    """Write a JSON payload to *output* (with a one-line summary) or stdout."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if output:
        directory = os.path.dirname(os.path.abspath(output))
        os.makedirs(directory, exist_ok=True)
        # Atomic so a Ctrl-C mid-dump never leaves a truncated payload a
        # later `repro compare`/ingest step would trip over.
        write_text_atomic(output, text + "\n")
        print(summary)
    else:
        print(text)


def _command_matrix(args: argparse.Namespace) -> int:
    if args.spec is not None:
        spec = _load_spec(args.spec)
    else:
        spec = ExperimentConfig(
            kernel=args.kernel,
            cut_weight=args.cut_weight,
            spectrum_k=args.spectrum_k,
            backend=args.backend,
        ).kernel_spec()
    session = _session_from_args(args)
    strings = session.corpus_from_directory(args.corpus, use_byte_information=not args.no_bytes)
    matrix = session.matrix(spec, strings, normalized=not args.raw)
    # One stamped-payload format for files and stdout: the engine owns it.
    payload = session.engine(spec).matrix_payload(matrix, strings)
    _emit_payload(
        payload, args.output, f"wrote {len(strings)}x{len(strings)} {spec.kind} matrix to {args.output}"
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    if args.name == "worked-example":
        for key, value in experiment_worked_example().items():
            print(f"{key}: {value}")
        return 0
    result = _EXPERIMENTS[args.name](
        seed=args.seed, cut_weight=args.cut_weight, n_jobs=args.n_jobs, backend=args.backend
    )
    print(summarise_result(result, title=f"experiment {args.name}"))
    print()
    print(scatter_from_kpca(result.kpca, title="Kernel PCA (first two components)"))
    print()
    print(cluster_tree_summary(result.clustering.dendrogram))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.spec is not None:
        base = ExperimentConfig(
            use_byte_information=not args.no_bytes,
            n_clusters=3,
            corpus=CorpusConfig.paper(seed=args.seed),
            n_jobs=args.n_jobs,
        )
        config = config_from_spec(_load_spec(args.spec), base)
        session = _session_from_args(args)
        sweep = cut_weight_sweep(config, session=session)
        byte_text = "ignored" if args.no_bytes else "kept"
        title = f"cut-weight sweep ({config.kernel} spec, byte information {byte_text})"
    elif args.no_bytes:
        sweep = experiment_nobytes_variant(seed=args.seed, n_jobs=args.n_jobs, backend=args.backend)
        title = "cut-weight sweep (byte information ignored)"
    else:
        sweep = experiment_cut_weight_sweep(seed=args.seed, n_jobs=args.n_jobs, backend=args.backend)
        title = "cut-weight sweep (byte information kept)"
    print(summarise_sweep(sweep, title=title))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.obs.logging import configure_logging
    from repro.service import AnalysisServer, Authenticator, TenantQuotas, serve_stdio
    from repro.service.server import DEFAULT_MAX_REQUEST_BYTES

    # Long-running process: honour REPRO_LOG_JSON / REPRO_LOG_LEVEL so the
    # structured trace-carrying log lines are one env var away.
    configure_logging()
    if args.token and args.tenants:
        print("use --token (single tenant) or --tenants (file), not both", file=sys.stderr)
        return 2
    if args.tenants:
        authenticator = Authenticator.from_file(args.tenants)
    elif args.token:
        authenticator = Authenticator.single(args.token)
    else:
        authenticator = None
    default_quotas = TenantQuotas(
        requests_per_second=args.tenant_rps,
        burst=args.tenant_burst,
        max_queued_jobs=args.max_queued_jobs,
        max_corpus_strings=args.max_corpus_strings,
    )
    server = AnalysisServer(
        state_dir=args.state_dir,
        n_jobs=args.n_jobs,
        executor=args.executor,
        max_job_workers=args.job_workers,
        default_shards=args.shards,
        inline_blocks=not args.no_inline_blocks,
        lease_seconds=args.lease_seconds,
        job_ttl=args.job_ttl,
        gc_interval=args.gc_interval,
        result_cache=not args.no_cache,
        max_cache_entries=args.cache_entries,
        cache_ttl=args.cache_ttl,
        pair_store=not args.no_pair_store,
        max_pair_bytes=args.max_pair_bytes,
        pair_ttl=args.pair_ttl,
        authenticator=authenticator,
        default_quotas=None if default_quotas.unlimited else default_quotas,
        max_request_bytes=(
            args.max_request_bytes if args.max_request_bytes is not None
            else DEFAULT_MAX_REQUEST_BYTES
        ),
    )
    if server.auth.enabled:
        tenants = ", ".join(server.auth.tenant_ids)
        print(f"auth enabled for tenant(s): {tenants}", file=sys.stderr)
    try:
        if args.stdio:
            # Protocol traffic owns stdout; operator chatter goes to stderr.
            print(f"serving stdio protocol (state dir {server.store.root})", file=sys.stderr)
            serve_stdio(server, sys.stdin, sys.stdout)
            return 0

        def announce(host: str, port: int) -> None:
            if args.port_file:
                directory = os.path.dirname(os.path.abspath(args.port_file))
                os.makedirs(directory, exist_ok=True)
                # Atomic: smoke scripts poll this path and must never read
                # an empty just-created file before the port lands in it.
                write_text_atomic(args.port_file, f"{port}\n")
            print(f"serving on http://{host}:{port} (state dir {server.store.root})")

        try:
            server.serve_http_forever(host=args.host, port=args.port, ready=announce)
        except KeyboardInterrupt:
            print("shutting down")
        return 0
    finally:
        server.close()


def _command_worker(args: argparse.Namespace) -> int:
    import signal

    from repro.obs.logging import configure_logging
    from repro.service.worker import Worker

    configure_logging()
    worker = Worker(
        state_dir=args.state_dir,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        lease_seconds=args.lease_seconds,
        n_jobs=args.n_jobs,
        executor=args.executor,
        throttle=args.throttle,
        pair_store=not args.no_pair_store,
    )
    # Drain the current task, then exit cleanly on SIGTERM/SIGINT; SIGKILL
    # needs no handling — the lease expires and the task is reclaimed.
    signal.signal(signal.SIGTERM, lambda signum, frame: worker.stop())
    print(
        f"worker {worker.worker_id} pulling from {worker.store.root} "
        f"(poll {worker.poll_interval}s, lease {worker.lease_seconds}s)",
        file=sys.stderr,
    )
    try:
        worker.run_forever(max_tasks=args.max_tasks, idle_exit=args.idle_exit)
    except KeyboardInterrupt:
        pass
    finally:
        worker.close()
    print(
        f"worker {worker.worker_id} exiting: {worker.completed} task(s) done, {worker.failed} failed",
        file=sys.stderr,
    )
    # Batch pipelines key off the exit status: a worker that failed tasks
    # and completed none must not report success.
    return 1 if worker.failed and not worker.completed else 0


def _gc_layer_summary(state_dir: str) -> None:
    """One line per persistent layer, printed on every ``gc`` run.

    Before this, a flagless ``gc`` said nothing about the cache layers at
    all — operators had no way to see what a state dir holds without
    opting into a sweep.
    """
    from repro.core.cachestore import MatrixCache
    from repro.core.pairstore import PairStore
    from repro.streaming.store import ModelStore

    cache_stats = MatrixCache(os.path.join(state_dir, "matrix-cache")).stats()
    print(
        f"matrix cache: {cache_stats['entries']} entr(ies), "
        f"{cache_stats['payload_bytes']} payload byte(s)"
    )
    pair_stats = PairStore(os.path.join(state_dir, "pair-store")).stats()
    print(
        f"pair store  : {pair_stats['entries']} value(s) in {pair_stats['segments']} "
        f"segment(s), {pair_stats['payload_bytes']} payload byte(s)"
    )
    model_stats = ModelStore(os.path.join(state_dir, "models")).stats()
    print(
        f"models      : {model_stats['models']} model(s), "
        f"{model_stats['payload_bytes']} byte(s), "
        f"{model_stats['quarantined']} quarantined"
    )


def _gc_namespace(state_dir: str, args: argparse.Namespace) -> None:
    """Sweep one state namespace (the root dir, or one tenant's)."""
    from repro.service import JobStore

    store = JobStore(state_dir, recover=False)
    swept = store.sweep(args.ttl, dry_run=args.dry_run)
    verb = "would sweep" if args.dry_run else "swept"
    print(f"{verb} {len(swept)} job(s) from {store.root}")
    for job_id in swept:
        print(f"  {job_id}")
    if args.cache_ttl is not None:
        from repro.core.cachestore import MatrixCache

        cache = MatrixCache(os.path.join(store.root, "matrix-cache"))
        if args.dry_run:
            entries = cache.stats()["entries"]
            print(f"would sweep up to {entries} result-cache entr(ies) from {cache.root}")
        else:
            # Without --max-cache-entries this is a TTL-only sweep: the
            # serving process owns the LRU bound (it may be configured far
            # above this offline tool's construction default).
            evicted = cache.sweep(
                ttl=args.cache_ttl,
                max_entries=args.max_cache_entries if args.max_cache_entries is not None else sys.maxsize,
            )
            print(f"evicted {len(evicted)} result-cache entr(ies) from {cache.root}")
    if args.pair_ttl is not None or args.max_pair_bytes is not None:
        from repro.core.pairstore import PairStore

        pair_store = PairStore(os.path.join(store.root, "pair-store"))
        if args.dry_run:
            segments = pair_store.stats()["segments"]
            print(f"would sweep up to {segments} pair-store segment(s) from {pair_store.root}")
        else:
            # Like the matrix-cache sweep above, unset bounds stay with the
            # serving process: a TTL-only or size-only sweep must not apply
            # this offline tool's construction defaults for the other knob.
            dropped = pair_store.sweep(
                ttl=args.pair_ttl,
                max_bytes=args.max_pair_bytes if args.max_pair_bytes is not None else sys.maxsize,
            )
            print(f"evicted {len(dropped)} pair-store segment(s) from {pair_store.root}")
    _gc_layer_summary(store.root)


def _command_gc(args: argparse.Namespace) -> int:
    from repro.service.tenancy import TENANTS_DIRNAME, valid_tenant_id

    _gc_namespace(args.state_dir, args)
    # Tenant namespaces are their own stores and caches; sweep each one
    # under the same knobs, with a banner so operators can tell whose
    # layer summary they are reading.
    tenants_base = os.path.join(args.state_dir, TENANTS_DIRNAME)
    if os.path.isdir(tenants_base):
        for name in sorted(os.listdir(tenants_base)):
            namespace = os.path.join(tenants_base, name)
            if valid_tenant_id(name) and os.path.isdir(namespace):
                print(f"tenant {name}:")
                _gc_namespace(namespace, args)
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint.cli import run_lint

    return run_lint(args)


def _command_remote(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    with ServiceClient(args.url, token=args.token) as client:
        if args.remote_command == "health":
            health = client.health()
            print(json.dumps(health, indent=2, sort_keys=True))
            # One human-readable line for operators eyeballing a fleet;
            # older servers predate the uptime fields, so guard each one.
            if health.get("uptime_seconds") is not None:
                print(
                    f"# up {health['uptime_seconds']:.1f}s"
                    f" (started_at {health.get('started_at')}, pid {health.get('pid')})",
                    file=sys.stderr,
                )
            # With tenancy active the server reports one namespace summary
            # per tenant; give operators the roll-up at a glance.
            tenants = health.get("tenants")
            if isinstance(tenants, dict):
                for tenant_id in sorted(tenants):
                    summary = tenants[tenant_id]
                    jobs = summary.get("jobs")
                    job_count = sum(jobs.values()) if isinstance(jobs, dict) else jobs
                    print(
                        f"# tenant {tenant_id}: {job_count} job(s), "
                        f"queue depth {summary.get('queue_depth')}, "
                        f"{summary.get('matrix_cache_entries')} cached matrix(es), "
                        f"{summary.get('models')} model(s)",
                        file=sys.stderr,
                    )
            return 0
        if args.remote_command == "specs":
            print(json.dumps(client.specs(), indent=2, sort_keys=True))
            return 0
        if args.remote_command == "cache-stats":
            print(json.dumps(client.cache_stats(), indent=2, sort_keys=True))
            return 0
        if args.remote_command == "metrics":
            # Prometheus text is already line-oriented and human-readable;
            # print it verbatim so the output doubles as a scrape sample.
            print(client.metrics_text(), end="")
            return 0
        if args.remote_command == "status":
            print(client.status(args.job_id))
            return 0
        if args.remote_command == "result":
            payload = client.result_payload(args.job_id, timeout=args.timeout, forget=args.forget)
            _emit_payload(payload, args.output, f"wrote result of {args.job_id} to {args.output}")
            return 0
        if args.remote_command == "cancel":
            from repro.service.protocol import CannotCancel

            try:
                client.cancel(args.job_id)
            except CannotCancel as exc:
                print(f"not cancelled: {exc}")
                return 1
            print("cancelled")
            return 0
        # matrix / analyze: both read a trace directory under a spec.
        if args.spec is not None:
            spec = _load_spec(args.spec)
        else:
            spec = ExperimentConfig(
                kernel=args.kernel, cut_weight=args.cut_weight, spectrum_k=args.spectrum_k
            ).kernel_spec()
        session = AnalysisSession()
        strings = session.corpus_from_directory(args.corpus, use_byte_information=not args.no_bytes)
        if args.remote_command == "analyze":
            if args.no_wait:
                print(client.submit_analyze(
                    spec, strings, n_clusters=args.clusters,
                    n_components=args.components, linkage=args.linkage,
                ))
                return 0
            job = client.analyze_job(
                spec, strings, n_clusters=args.clusters, n_components=args.components,
                linkage=args.linkage, timeout=args.timeout,
            )
            # Report the matrix-stage cache outcome exactly like `remote
            # matrix` does — the analyze path went silent on it before.
            cache_text = f", matrix cache {job['cache']}" if job.get("cache") else ""
            _emit_payload(
                job["payload"],
                args.output,
                f"wrote analysis of {len(strings)} trace(s) under {spec.kind}"
                f"{cache_text} to {args.output}",
            )
            if not args.output and job.get("cache"):
                print(f"# matrix cache: {job['cache']}", file=sys.stderr)
            return 0
        if args.no_wait:
            job_id = client.submit(
                spec,
                strings,
                normalized=not args.raw,
                shards=args.shards,
                distributed=args.distributed,
                use_cache=not args.no_cache,
            )
            print(job_id)
            return 0
        job = client.matrix_job(
            spec,
            strings,
            normalized=not args.raw,
            shards=args.shards,
            distributed=args.distributed,
            use_cache=not args.no_cache,
            timeout=args.timeout,
        )
        shard_text = "server-default shards" if args.shards is None else f"{args.shards} shard(s)"
        if args.distributed:
            shard_text += ", distributed"
        if job.get("cache"):
            shard_text += f", cache {job['cache']}"
        _emit_payload(
            job["payload"],
            args.output,
            f"wrote {len(strings)}x{len(strings)} {spec.kind} matrix ({shard_text}) to {args.output}",
        )
        return 0


def _command_model(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    with ServiceClient(args.url, token=args.token) as client:
        if args.model_command == "list":
            print(json.dumps(client.models(), indent=2, sort_keys=True))
            return 0
        if args.model_command == "fit":
            if args.spec is not None:
                spec = _load_spec(args.spec)
            else:
                spec = ExperimentConfig(
                    kernel=args.kernel, cut_weight=args.cut_weight, spectrum_k=args.spectrum_k
                ).kernel_spec()
            session = AnalysisSession()
            strings = session.corpus_from_directory(
                args.corpus, use_byte_information=not args.no_bytes
            )
            job = client.fit_model(
                spec,
                strings,
                name=args.name,
                landmarks=args.landmarks,
                strategy=args.strategy,
                seed=args.seed,
                n_components=args.components,
                n_clusters=args.clusters,
                use_cache=not args.no_cache,
                timeout=args.timeout,
            )
            summary = job["payload"]
            cache_text = f", cache {job['cache']}" if job.get("cache") else ""
            print(
                f"fitted model {summary['name']}: {summary['landmarks']} landmark(s) "
                f"from {len(strings)} trace(s), strategy {summary['strategy']}{cache_text}"
            )
            print(json.dumps(summary, indent=2, sort_keys=True))
            return 0
        # classify
        strings = [
            trace_to_string(parse_trace_file(path), use_byte_information=not args.no_bytes)
            for path in args.traces
        ]
        response = client.classify(args.name, strings, embed=args.embed)
        for entry in response["results"]:
            cost = "warm (0 evals)" if entry["warm"] else f"{entry['kernel_evals']} eval(s)"
            print(f"{entry['name']}: {entry['label']} [{cost}]")
        print(
            f"# model {response['model']}: {response['kernel_evals']} kernel eval(s), "
            f"{response['warm_traces']}/{len(strings)} warm, "
            f"{response['elapsed_seconds'] * 1000.0:.2f} ms server-side",
            file=sys.stderr,
        )
        if args.output:
            _emit_payload(
                response, args.output,
                f"wrote classification of {len(strings)} trace(s) to {args.output}",
            )
        return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-iokast`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handlers = {
        "generate": _command_generate,
        "convert": _command_convert,
        "compare": _command_compare,
        "matrix": _command_matrix,
        "experiment": _command_experiment,
        "sweep": _command_sweep,
        "serve": _command_serve,
        "worker": _command_worker,
        "gc": _command_gc,
        "lint": _command_lint,
        "remote": _command_remote,
        "model": _command_model,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
