"""repro — weighted-string representation and Kast Spectrum Kernel for I/O access patterns.

Reproduction of Torres, Kunkel, Dolz & Ludwig, "A Novel String Representation
and Kernel Function for the Comparison of I/O Access Patterns" (PaCT 2017).

The package is organised bottom-up:

* :mod:`repro.traces` — trace data model, parser, mutation engine;
* :mod:`repro.tree` — containment trees and the compaction rules;
* :mod:`repro.strings` — weighted tokens / strings and the tree flattening;
* :mod:`repro.core` — the Kast Spectrum Kernel and kernel-matrix machinery;
* :mod:`repro.kernels` — baseline kernels (spectrum, blended, bag, vector);
* :mod:`repro.learn` — Kernel PCA, hierarchical clustering, kernel k-means,
  cluster metrics;
* :mod:`repro.workloads` — synthetic FLASH-IO / IOR workload generators and
  the 110-example evaluation corpus;
* :mod:`repro.pipeline` — end-to-end experiments, sweeps, reports;
* :mod:`repro.viz` — ASCII scatter plots and dendrograms;
* :mod:`repro.cli` — the ``repro-iokast`` command-line interface.

Quick start::

    from repro import AnalysisSession, make_spec, trace_to_string, parse_trace

    trace_a = parse_trace(open("a.trace").read(), name="a")
    trace_b = parse_trace(open("b.trace").read(), name="b")
    string_a = trace_to_string(trace_a)
    string_b = trace_to_string(trace_b)
    with AnalysisSession() as session:
        similarity = session.normalized_value(make_spec("kast", cut_weight=2), string_a, string_b)
"""

from repro.api import (
    AnalysisSession,
    KernelSpec,
    kernel_choices,
    kernel_from_spec,
    make_spec,
    register_kernel,
    spec_from_kernel,
)
from repro.core.kast import KastSpectrumKernel, kast_kernel_value
from repro.core.matrix import KernelMatrix, compute_kernel_matrix
from repro.kernels.bag import BagOfCharactersKernel, BagOfWordsKernel
from repro.kernels.blended import BlendedSpectrumKernel
from repro.kernels.spectrum import SpectrumKernel
from repro.learn.hierarchical import HierarchicalClustering, cluster_kernel_matrix
from repro.learn.kpca import KernelPCA, kernel_pca_embedding
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.pipeline import AnalysisPipeline, AnalysisResult, run_experiment
from repro.strings.encoder import StringEncoder, trace_to_string
from repro.strings.tokens import Token, WeightedString
from repro.traces.model import IOOperation, IOTrace
from repro.traces.parser import parse_trace, parse_trace_file
from repro.tree.builder import build_tree
from repro.tree.compaction import CompactionConfig, compact_tree
from repro.workloads.corpus import CorpusConfig, build_corpus

__version__ = "1.0.0"

__all__ = [
    "AnalysisSession",
    "KernelSpec",
    "kernel_choices",
    "kernel_from_spec",
    "make_spec",
    "register_kernel",
    "spec_from_kernel",
    "KastSpectrumKernel",
    "kast_kernel_value",
    "KernelMatrix",
    "compute_kernel_matrix",
    "BagOfCharactersKernel",
    "BagOfWordsKernel",
    "BlendedSpectrumKernel",
    "SpectrumKernel",
    "HierarchicalClustering",
    "cluster_kernel_matrix",
    "KernelPCA",
    "kernel_pca_embedding",
    "ExperimentConfig",
    "AnalysisPipeline",
    "AnalysisResult",
    "run_experiment",
    "StringEncoder",
    "trace_to_string",
    "Token",
    "WeightedString",
    "IOOperation",
    "IOTrace",
    "parse_trace",
    "parse_trace_file",
    "build_tree",
    "CompactionConfig",
    "compact_tree",
    "CorpusConfig",
    "build_corpus",
    "__version__",
]
