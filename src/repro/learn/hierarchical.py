"""Agglomerative hierarchical clustering from a distance or kernel matrix.

The paper analyses every similarity matrix with hierarchical clustering using
the *simple* (single) linkage method (section 4.1).  This module implements
the standard agglomerative algorithm with the Lance-Williams update, giving
single, complete, average and Ward linkage; the experiments use single
linkage, the others exist for the ablation benchmark and for general use.

The input is either a distance matrix or a :class:`KernelMatrix`, which is
converted to kernel-induced distances first (``d = sqrt(k_ii + k_jj - 2
k_ij)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.matrix import KernelMatrix
from repro.learn.dendrogram import Dendrogram, Merge

__all__ = ["HierarchicalClustering", "ClusteringResult", "cluster_kernel_matrix"]

_LINKAGES = ("single", "complete", "average", "ward")


@dataclass(frozen=True)
class ClusteringResult:
    """A dendrogram plus a flat clustering extracted from it."""

    dendrogram: Dendrogram
    assignments: Tuple[int, ...]
    n_clusters: int
    linkage: str

    def clusters(self) -> List[List[int]]:
        """Members of every cluster as lists of example indices."""
        members: List[List[int]] = [[] for _ in range(self.n_clusters)]
        for index, cluster in enumerate(self.assignments):
            members[cluster].append(index)
        return members

    def cluster_of(self, index: int) -> int:
        """Cluster id of example *index*."""
        return self.assignments[index]


class HierarchicalClustering:
    """Agglomerative clustering with Lance-Williams distance updates.

    Parameters
    ----------
    linkage:
        ``"single"`` (paper default), ``"complete"``, ``"average"`` or
        ``"ward"``.
    """

    def __init__(self, linkage: str = "single") -> None:
        if linkage not in _LINKAGES:
            raise ValueError(f"linkage must be one of {_LINKAGES}, got {linkage!r}")
        self.linkage = linkage

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        matrix: Union[KernelMatrix, np.ndarray],
        is_distance: Optional[bool] = None,
    ) -> Dendrogram:
        """Build the dendrogram for *matrix*.

        Parameters
        ----------
        matrix:
            Either a :class:`KernelMatrix` (similarities; converted to
            distances internally) or a raw square array.  For a raw array,
            ``is_distance`` says how to interpret it; the default assumes a
            distance matrix.
        """
        names: Tuple[str, ...] = ()
        labels: Tuple[Optional[str], ...] = ()
        if isinstance(matrix, KernelMatrix):
            distances = matrix.to_distance_matrix()
            names = matrix.names
            labels = matrix.labels
        else:
            values = np.asarray(matrix, dtype=float)
            if values.ndim != 2 or values.shape[0] != values.shape[1]:
                raise ValueError(f"matrix must be square, got shape {values.shape}")
            if is_distance is False:
                diagonal = np.diag(values)
                squared = diagonal[:, None] + diagonal[None, :] - 2.0 * values
                distances = np.sqrt(np.maximum(squared, 0.0))
            else:
                distances = values.copy()
        return self._agglomerate(distances, names, labels)

    def fit_predict(
        self,
        matrix: Union[KernelMatrix, np.ndarray],
        n_clusters: int,
        is_distance: Optional[bool] = None,
    ) -> ClusteringResult:
        """Build the dendrogram and cut it into *n_clusters* flat clusters."""
        dendrogram = self.fit(matrix, is_distance=is_distance)
        assignments = dendrogram.cut_into(n_clusters)
        return ClusteringResult(
            dendrogram=dendrogram,
            assignments=tuple(assignments),
            n_clusters=max(assignments) + 1 if assignments else 0,
            linkage=self.linkage,
        )

    # ------------------------------------------------------------------
    # Core algorithm
    # ------------------------------------------------------------------
    def _agglomerate(
        self,
        distances: np.ndarray,
        names: Tuple[str, ...],
        labels: Tuple[Optional[str], ...],
    ) -> Dendrogram:
        count = distances.shape[0]
        if count == 0:
            return Dendrogram(merges=(), n_leaves=0, names=names, labels=labels)
        working = distances.astype(float).copy()
        np.fill_diagonal(working, np.inf)

        active = list(range(count))            # positions still in play
        cluster_ids = list(range(count))       # dendrogram id of each active position
        sizes = [1] * count                     # leaf count of each active position
        merges: List[Merge] = []
        next_id = count

        while len(active) > 1:
            # Find the closest active pair.
            best = (np.inf, -1, -1)
            for ai in range(len(active)):
                row = working[active[ai]]
                for bi in range(ai + 1, len(active)):
                    distance = row[active[bi]]
                    if distance < best[0]:
                        best = (distance, ai, bi)
            distance, ai, bi = best
            position_a, position_b = active[ai], active[bi]
            size_a, size_b = sizes[ai], sizes[bi]

            merges.append(
                Merge(
                    left=cluster_ids[ai],
                    right=cluster_ids[bi],
                    height=float(distance) if np.isfinite(distance) else 0.0,
                    size=size_a + size_b,
                )
            )

            # Lance-Williams update of the row that will represent the merged cluster.
            for ci in range(len(active)):
                if ci in (ai, bi):
                    continue
                position_c = active[ci]
                d_ac = working[position_a, position_c]
                d_bc = working[position_b, position_c]
                if self.linkage == "single":
                    updated = min(d_ac, d_bc)
                elif self.linkage == "complete":
                    updated = max(d_ac, d_bc)
                elif self.linkage == "average":
                    updated = (size_a * d_ac + size_b * d_bc) / (size_a + size_b)
                else:  # ward
                    size_c = sizes[ci]
                    total = size_a + size_b + size_c
                    updated = np.sqrt(
                        max(
                            0.0,
                            ((size_a + size_c) * d_ac**2 + (size_b + size_c) * d_bc**2 - size_c * distance**2)
                            / total,
                        )
                    )
                working[position_a, position_c] = updated
                working[position_c, position_a] = updated

            # Position A now represents the merged cluster; retire position B.
            cluster_ids[ai] = next_id
            sizes[ai] = size_a + size_b
            next_id += 1
            del active[bi]
            del cluster_ids[bi]
            del sizes[bi]

        return Dendrogram(merges=tuple(merges), n_leaves=count, names=names, labels=labels)


def cluster_kernel_matrix(
    kernel_matrix: KernelMatrix,
    n_clusters: int,
    linkage: str = "single",
) -> ClusteringResult:
    """One-call helper: single-linkage clustering of a kernel matrix."""
    return HierarchicalClustering(linkage=linkage).fit_predict(kernel_matrix, n_clusters=n_clusters)
