"""Kernel Principal Component Analysis (Schölkopf, Smola & Müller, 1997).

Given a positive semidefinite kernel matrix ``K`` over ``n`` examples, Kernel
PCA double-centres the matrix, takes its leading eigenpairs and projects each
example onto the eigenvectors scaled by the inverse square root of their
eigenvalues.  The paper uses the 2-D Kernel PCA embedding of the Kast and
Blended kernel matrices as its Figures 6 and 8.

The implementation works directly from a kernel matrix (no access to feature
vectors is needed, matching the kernel-methods setting of section 2.2) and
supports out-of-sample projection for completeness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.matrix import KernelMatrix
from repro.core.normalization import center_kernel_matrix

__all__ = ["KernelPCAResult", "KernelPCA", "kernel_pca_embedding"]


@dataclass(frozen=True)
class KernelPCAResult:
    """Result of a Kernel PCA fit.

    Attributes
    ----------
    embedding:
        ``(n, d)`` array of projections of the training examples onto the
        leading ``d`` kernel principal components.
    eigenvalues:
        The ``d`` leading eigenvalues of the centred kernel matrix, in
        decreasing order.
    eigenvectors:
        ``(n, d)`` matrix of the corresponding (unit-norm) eigenvectors.
    explained_variance_ratio:
        Eigenvalues divided by the total positive spectrum mass.
    names / labels:
        Example names and labels carried over from the kernel matrix, if one
        was supplied.
    """

    embedding: np.ndarray
    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    explained_variance_ratio: np.ndarray
    names: Tuple[str, ...] = ()
    labels: Tuple[Optional[str], ...] = ()

    @property
    def n_components(self) -> int:
        """Number of components retained."""
        return int(self.embedding.shape[1])

    def component(self, index: int) -> np.ndarray:
        """The projections of all examples on component *index*."""
        return self.embedding[:, index]


class KernelPCA:
    """Kernel PCA on a precomputed kernel matrix.

    Parameters
    ----------
    n_components:
        Number of principal components to keep.
    center:
        Whether to double-centre the kernel matrix first (standard; disable
        only for experiments with already-centred kernels).
    min_eigenvalue:
        Components with eigenvalues below this threshold are dropped (they
        carry no variance and their inverse square root is unstable).
    """

    def __init__(self, n_components: int = 2, center: bool = True, min_eigenvalue: float = 1e-10) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.center = center
        self.min_eigenvalue = min_eigenvalue
        self._fit_matrix: Optional[np.ndarray] = None
        self._column_means: Optional[np.ndarray] = None
        self._total_mean: float = 0.0
        self._result: Optional[KernelPCAResult] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, kernel_matrix) -> KernelPCAResult:
        """Fit on a :class:`KernelMatrix` or a raw ``(n, n)`` array."""
        names: Tuple[str, ...] = ()
        labels: Tuple[Optional[str], ...] = ()
        if isinstance(kernel_matrix, KernelMatrix):
            values = kernel_matrix.values
            names = kernel_matrix.names
            labels = kernel_matrix.labels
        else:
            values = np.asarray(kernel_matrix, dtype=float)
        if values.ndim != 2 or values.shape[0] != values.shape[1]:
            raise ValueError(f"kernel matrix must be square, got shape {values.shape}")

        self._fit_matrix = values
        self._column_means = values.mean(axis=0)
        self._total_mean = float(values.mean())

        centred = center_kernel_matrix(values) if self.center else values
        eigenvalues, eigenvectors = np.linalg.eigh(centred)
        # eigh returns ascending order; we want descending.
        order = np.argsort(eigenvalues)[::-1]
        eigenvalues = eigenvalues[order]
        eigenvectors = eigenvectors[:, order]

        keep = min(self.n_components, values.shape[0])
        kept_values = []
        kept_vectors = []
        for index in range(len(eigenvalues)):
            if len(kept_values) >= keep:
                break
            value = eigenvalues[index]
            if value < self.min_eigenvalue:
                # Remaining eigenvalues are even smaller; pad with zeros below.
                break
            kept_values.append(value)
            kept_vectors.append(eigenvectors[:, index])

        count = values.shape[0]
        if kept_values:
            eigenvalue_array = np.asarray(kept_values, dtype=float)
            eigenvector_array = np.column_stack(kept_vectors)
            # Projection of training points: alpha_i scaled so that the
            # embedding coordinates are <phi(x), v_k> = sqrt(lambda_k) * u_k.
            embedding = eigenvector_array * np.sqrt(eigenvalue_array)[None, :]
        else:
            eigenvalue_array = np.zeros(0, dtype=float)
            eigenvector_array = np.zeros((count, 0), dtype=float)
            embedding = np.zeros((count, 0), dtype=float)

        # Pad with zero columns when fewer informative components exist than requested.
        if embedding.shape[1] < keep:
            pad = keep - embedding.shape[1]
            embedding = np.hstack([embedding, np.zeros((count, pad))])
            eigenvalue_array = np.concatenate([eigenvalue_array, np.zeros(pad)])
            eigenvector_array = np.hstack([eigenvector_array, np.zeros((count, pad))])

        positive_mass = float(np.sum(eigenvalues[eigenvalues > 0])) or 1.0
        explained = eigenvalue_array / positive_mass

        self._result = KernelPCAResult(
            embedding=embedding,
            eigenvalues=eigenvalue_array,
            eigenvectors=eigenvector_array,
            explained_variance_ratio=explained,
            names=names,
            labels=labels,
        )
        return self._result

    # ------------------------------------------------------------------
    # Out-of-sample projection
    # ------------------------------------------------------------------
    def transform(self, cross_kernel: np.ndarray) -> np.ndarray:
        """Project new examples given their kernel values against the training set.

        Parameters
        ----------
        cross_kernel:
            ``(m, n)`` matrix of kernel values ``k(new_i, train_j)``.
        """
        if self._result is None or self._fit_matrix is None:
            raise RuntimeError("KernelPCA.transform called before fit")
        cross = np.asarray(cross_kernel, dtype=float)
        if cross.ndim != 2 or cross.shape[1] != self._fit_matrix.shape[0]:
            raise ValueError(
                f"cross kernel must have shape (m, {self._fit_matrix.shape[0]}), got {cross.shape}"
            )
        if self.center:
            row_means = cross.mean(axis=1, keepdims=True)
            cross = cross - row_means - self._column_means[None, :] + self._total_mean
        eigenvalues = self._result.eigenvalues
        eigenvectors = self._result.eigenvectors
        with np.errstate(divide="ignore", invalid="ignore"):
            inverse_sqrt = np.where(eigenvalues > 0, 1.0 / np.sqrt(eigenvalues), 0.0)
        return cross @ eigenvectors * inverse_sqrt[None, :]


def kernel_pca_embedding(kernel_matrix, n_components: int = 2) -> KernelPCAResult:
    """Convenience wrapper: fit Kernel PCA and return the result."""
    return KernelPCA(n_components=n_components).fit(kernel_matrix)
