"""Kernel-based classifiers for labelled trace corpora.

The paper's evaluation is unsupervised (clustering), but its motivation —
recognising which known I/O behaviour class a new application belongs to, as
in the auto-tuning scenario of Behzad et al. cited in the related work — is a
classification task.  These two classifiers close that gap using nothing but
kernel evaluations, so they work with the Kast Spectrum Kernel and every
baseline kernel alike:

* :class:`KernelNearestCentroid` — assign the label whose reference examples
  have the highest *mean* normalised similarity to the query;
* :class:`KernelKNNClassifier` — majority vote among the ``k`` most similar
  reference examples.

Both operate on :class:`~repro.strings.tokens.WeightedString` objects whose
``label`` attribute provides the training labels.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kernels.base import StringKernel
from repro.strings.tokens import WeightedString

__all__ = ["ClassificationResult", "KernelNearestCentroid", "KernelKNNClassifier", "leave_one_out_accuracy"]


@dataclass(frozen=True)
class ClassificationResult:
    """Prediction for one query string."""

    #: Predicted label.
    label: str
    #: Score per candidate label (mean similarity or vote weight).
    scores: Dict[str, float]

    def ranked_labels(self) -> List[Tuple[str, float]]:
        """Labels sorted by decreasing score."""
        return sorted(self.scores.items(), key=lambda item: (-item[1], item[0]))


class _KernelClassifierBase:
    """Shared fitting logic: store labelled reference strings."""

    def __init__(self, kernel: StringKernel) -> None:
        self.kernel = kernel
        self._references: List[WeightedString] = []
        self._labels: List[str] = []

    def fit(self, references: Sequence[WeightedString], labels: Optional[Sequence[str]] = None) -> "_KernelClassifierBase":
        """Store the labelled reference corpus.

        Labels default to each string's own ``label`` attribute; strings
        without a label are rejected because they cannot vote.
        """
        references = list(references)
        if labels is None:
            labels = [string.label for string in references]
        labels = list(labels)
        if len(labels) != len(references):
            raise ValueError(f"{len(references)} references but {len(labels)} labels")
        if not references:
            raise ValueError("cannot fit a kernel classifier on an empty reference set")
        if any(label is None for label in labels):
            raise ValueError("every reference string needs a label")
        self._references = references
        self._labels = [str(label) for label in labels]
        return self

    @property
    def classes(self) -> List[str]:
        """Sorted list of distinct training labels."""
        return sorted(set(self._labels))

    def _require_fitted(self) -> None:
        if not self._references:
            raise RuntimeError("classifier used before fit()")

    def predict(self, queries: Sequence[WeightedString]) -> List[str]:
        """Predicted label for every query string."""
        return [self.classify(query).label for query in queries]

    def classify(self, query: WeightedString) -> ClassificationResult:  # pragma: no cover - abstract
        raise NotImplementedError


class KernelNearestCentroid(_KernelClassifierBase):
    """Assign the label with the highest mean normalised similarity."""

    def classify(self, query: WeightedString) -> ClassificationResult:
        """Score every label by mean similarity of its references to *query*."""
        self._require_fitted()
        totals: Dict[str, float] = defaultdict(float)
        counts: Dict[str, int] = defaultdict(int)
        for reference, label in zip(self._references, self._labels):
            totals[label] += self.kernel.normalized_value(query, reference)
            counts[label] += 1
        scores = {label: totals[label] / counts[label] for label in totals}
        best = max(scores.items(), key=lambda item: (item[1], item[0]))[0]
        return ClassificationResult(label=best, scores=scores)


class KernelKNNClassifier(_KernelClassifierBase):
    """Majority vote among the ``k`` most similar reference examples.

    Parameters
    ----------
    kernel:
        Any string kernel.
    k:
        Neighbourhood size.
    weighted_votes:
        When true (default) each neighbour votes with its similarity value
        rather than with 1, which resolves ties naturally.
    """

    def __init__(self, kernel: StringKernel, k: int = 3, weighted_votes: bool = True) -> None:
        super().__init__(kernel)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.weighted_votes = weighted_votes

    def classify(self, query: WeightedString) -> ClassificationResult:
        """Vote among the nearest neighbours of *query*."""
        self._require_fitted()
        similarities = [
            (self.kernel.normalized_value(query, reference), label)
            for reference, label in zip(self._references, self._labels)
        ]
        similarities.sort(key=lambda item: -item[0])
        neighbours = similarities[: self.k]
        votes: Counter = Counter()
        for similarity, label in neighbours:
            votes[label] += similarity if self.weighted_votes else 1.0
        best = max(votes.items(), key=lambda item: (item[1], item[0]))[0]
        return ClassificationResult(label=best, scores=dict(votes))


def leave_one_out_accuracy(
    classifier_factory,
    strings: Sequence[WeightedString],
    labels: Optional[Sequence[str]] = None,
) -> float:
    """Leave-one-out accuracy of a kernel classifier on a labelled corpus.

    ``classifier_factory`` is a zero-argument callable returning a fresh
    (unfitted) classifier, e.g. ``lambda: KernelNearestCentroid(kernel)``.
    """
    strings = list(strings)
    if labels is None:
        labels = [string.label for string in strings]
    labels = [str(label) for label in labels]
    if len(strings) < 2:
        raise ValueError("leave-one-out needs at least two examples")
    correct = 0
    for index, (held_out, truth) in enumerate(zip(strings, labels)):
        train_strings = strings[:index] + strings[index + 1 :]
        train_labels = labels[:index] + labels[index + 1 :]
        classifier = classifier_factory().fit(train_strings, train_labels)
        if classifier.classify(held_out).label == truth:
            correct += 1
    return correct / len(strings)
