"""Dendrogram data structure produced by agglomerative clustering.

A dendrogram records the sequence of merges performed by hierarchical
clustering: merge ``t`` joins two clusters at a given height (distance).  It
can be cut either at a height threshold or into a requested number of
clusters, and rendered as ASCII art by :mod:`repro.viz.dendro`.

The merge table uses the same convention as ``scipy.cluster.hierarchy``'s
linkage matrix: leaves are numbered ``0 .. n-1`` and the cluster created by
merge ``t`` gets id ``n + t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Merge", "Dendrogram"]


@dataclass(frozen=True)
class Merge:
    """One agglomeration step."""

    #: Ids of the two clusters merged (leaf ids are < n).
    left: int
    right: int
    #: Linkage distance at which the merge happened.
    height: float
    #: Number of leaves in the newly formed cluster.
    size: int


@dataclass
class Dendrogram:
    """The full merge history over ``n`` leaves."""

    merges: Tuple[Merge, ...]
    n_leaves: int
    names: Tuple[str, ...] = ()
    labels: Tuple[Optional[str], ...] = ()

    def __post_init__(self) -> None:
        if len(self.merges) != max(0, self.n_leaves - 1):
            raise ValueError(
                f"a dendrogram over {self.n_leaves} leaves needs {self.n_leaves - 1} merges, "
                f"got {len(self.merges)}"
            )
        if self.names and len(self.names) != self.n_leaves:
            raise ValueError("names length must equal n_leaves")
        if self.labels and len(self.labels) != self.n_leaves:
            raise ValueError("labels length must equal n_leaves")

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def heights(self) -> List[float]:
        """Merge heights in merge order."""
        return [merge.height for merge in self.merges]

    def linkage_matrix(self) -> np.ndarray:
        """Return the scipy-compatible ``(n-1, 4)`` linkage matrix."""
        matrix = np.zeros((len(self.merges), 4), dtype=float)
        for index, merge in enumerate(self.merges):
            matrix[index] = (merge.left, merge.right, merge.height, merge.size)
        return matrix

    def leaves_of(self, cluster_id: int) -> List[int]:
        """Leaf indices contained in the cluster with the given id."""
        if cluster_id < self.n_leaves:
            return [cluster_id]
        merge = self.merges[cluster_id - self.n_leaves]
        return self.leaves_of(merge.left) + self.leaves_of(merge.right)

    def leaf_order(self) -> List[int]:
        """Left-to-right leaf ordering induced by the merge tree."""
        if self.n_leaves == 0:
            return []
        root_id = self.n_leaves + len(self.merges) - 1 if self.merges else 0
        return self.leaves_of(root_id)

    # ------------------------------------------------------------------
    # Cutting
    # ------------------------------------------------------------------
    def cut_at_height(self, height: float) -> List[int]:
        """Assign a cluster id to every leaf, merging all links with height <= *height*.

        Returns a list of ``n_leaves`` cluster ids numbered ``0 .. k-1`` in
        order of first appearance.
        """
        parent = list(range(self.n_leaves + len(self.merges)))

        def find(node: int) -> int:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for index, merge in enumerate(self.merges):
            if merge.height <= height:
                new_id = self.n_leaves + index
                parent[find(merge.left)] = new_id
                parent[find(merge.right)] = new_id
        return self._roots_to_assignments(find)

    def cut_into(self, n_clusters: int) -> List[int]:
        """Cut the dendrogram into exactly *n_clusters* clusters.

        Performs the first ``n_leaves - n_clusters`` merges (the lowest ones,
        since merges are recorded in non-decreasing height order for the
        linkage methods implemented here).
        """
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        n_clusters = min(n_clusters, self.n_leaves)
        merges_to_apply = self.n_leaves - n_clusters

        parent = list(range(self.n_leaves + len(self.merges)))

        def find(node: int) -> int:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for index in range(merges_to_apply):
            merge = self.merges[index]
            new_id = self.n_leaves + index
            parent[find(merge.left)] = new_id
            parent[find(merge.right)] = new_id
        return self._roots_to_assignments(find)

    def _roots_to_assignments(self, find) -> List[int]:
        root_to_cluster: Dict[int, int] = {}
        assignments: List[int] = []
        for leaf in range(self.n_leaves):
            root = find(leaf)
            if root not in root_to_cluster:
                root_to_cluster[root] = len(root_to_cluster)
            assignments.append(root_to_cluster[root])
        return assignments

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe_clusters(self, assignments: Sequence[int]) -> Dict[int, List[str]]:
        """Map each cluster id to the names (or indices) of its members."""
        result: Dict[int, List[str]] = {}
        for index, cluster in enumerate(assignments):
            name = self.names[index] if self.names else str(index)
            result.setdefault(cluster, []).append(name)
        return result
