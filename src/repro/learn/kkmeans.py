"""Kernel k-means clustering.

Not used by the paper itself, but a natural companion to Kernel PCA and
hierarchical clustering once a kernel matrix exists: it provides a flat
clustering with a chosen ``k`` directly in the kernel-induced feature space.
The ablation benchmarks use it as a third reader of the same similarity
matrices to check that the cluster structure is algorithm-independent.

The algorithm is Lloyd's iteration expressed through the kernel trick: the
squared distance of example ``i`` to the centroid of cluster ``C`` is

.. math::

    K_{ii} - \\frac{2}{|C|} \\sum_{j \\in C} K_{ij}
          + \\frac{1}{|C|^2} \\sum_{j, l \\in C} K_{jl}
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.matrix import KernelMatrix

__all__ = ["KernelKMeansResult", "KernelKMeans"]


@dataclass(frozen=True)
class KernelKMeansResult:
    """Outcome of a kernel k-means run."""

    assignments: Tuple[int, ...]
    n_clusters: int
    inertia: float
    iterations: int
    converged: bool

    def clusters(self) -> List[List[int]]:
        """Members of each cluster as lists of example indices."""
        members: List[List[int]] = [[] for _ in range(self.n_clusters)]
        for index, cluster in enumerate(self.assignments):
            members[cluster].append(index)
        return members


class KernelKMeans:
    """Lloyd-style kernel k-means on a precomputed kernel matrix.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    max_iterations:
        Upper bound on Lloyd iterations per restart.
    n_restarts:
        Number of random initialisations; the best (lowest inertia) result is
        returned.
    seed:
        Seed for the initialisation RNG.
    """

    def __init__(
        self,
        n_clusters: int,
        max_iterations: int = 100,
        n_restarts: int = 5,
        seed: Optional[int] = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")
        if n_restarts < 1:
            raise ValueError(f"n_restarts must be >= 1, got {n_restarts}")
        self.n_clusters = n_clusters
        self.max_iterations = max_iterations
        self.n_restarts = n_restarts
        self._rng = random.Random(seed)

    def fit_predict(self, matrix: Union[KernelMatrix, np.ndarray]) -> KernelKMeansResult:
        """Cluster the examples of *matrix* and return the best restart."""
        values = matrix.values if isinstance(matrix, KernelMatrix) else np.asarray(matrix, dtype=float)
        if values.ndim != 2 or values.shape[0] != values.shape[1]:
            raise ValueError(f"kernel matrix must be square, got shape {values.shape}")
        count = values.shape[0]
        if count == 0:
            return KernelKMeansResult(assignments=(), n_clusters=0, inertia=0.0, iterations=0, converged=True)
        k = min(self.n_clusters, count)

        best: Optional[KernelKMeansResult] = None
        for _ in range(self.n_restarts):
            result = self._single_run(values, k)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _single_run(self, kernel: np.ndarray, k: int) -> KernelKMeansResult:
        count = kernel.shape[0]
        assignments = np.asarray([self._rng.randrange(k) for _ in range(count)], dtype=int)
        # Guarantee no empty cluster at start.
        for cluster in range(k):
            if not np.any(assignments == cluster):
                assignments[self._rng.randrange(count)] = cluster

        diagonal = np.diag(kernel)
        converged = False
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            distances = self._distances_to_centroids(kernel, diagonal, assignments, k)
            new_assignments = np.argmin(distances, axis=1)
            # Re-seed clusters that became empty with the farthest points.
            for cluster in range(k):
                if not np.any(new_assignments == cluster):
                    farthest = int(np.argmax(np.min(distances, axis=1)))
                    new_assignments[farthest] = cluster
            if np.array_equal(new_assignments, assignments):
                converged = True
                break
            assignments = new_assignments

        distances = self._distances_to_centroids(kernel, diagonal, assignments, k)
        inertia = float(np.sum(distances[np.arange(count), assignments]))
        return KernelKMeansResult(
            assignments=tuple(int(value) for value in assignments),
            n_clusters=k,
            inertia=inertia,
            iterations=iterations,
            converged=converged,
        )

    @staticmethod
    def _distances_to_centroids(
        kernel: np.ndarray,
        diagonal: np.ndarray,
        assignments: np.ndarray,
        k: int,
    ) -> np.ndarray:
        count = kernel.shape[0]
        distances = np.zeros((count, k), dtype=float)
        for cluster in range(k):
            members = np.where(assignments == cluster)[0]
            if members.size == 0:
                distances[:, cluster] = np.inf
                continue
            within = kernel[np.ix_(members, members)].sum() / (members.size**2)
            cross = kernel[:, members].sum(axis=1) / members.size
            distances[:, cluster] = diagonal - 2.0 * cross + within
        return distances
