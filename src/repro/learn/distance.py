"""Conversions between similarity (kernel) and distance matrices.

Different downstream algorithms want different representations: hierarchical
clustering consumes distances, kernel PCA and kernel k-means consume
similarities.  These helpers keep the conversions in one place and make the
conventions explicit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "kernel_to_distance",
    "similarity_to_dissimilarity",
    "distance_to_kernel",
    "check_distance_matrix",
]


def kernel_to_distance(kernel: np.ndarray) -> np.ndarray:
    """Feature-space distances induced by a kernel matrix.

    ``d(i, j) = sqrt(k(i, i) + k(j, j) - 2 k(i, j))``.  For a normalised
    kernel this reduces to ``sqrt(2 - 2 k(i, j))``.
    """
    kernel = np.asarray(kernel, dtype=float)
    diagonal = np.diag(kernel)
    squared = diagonal[:, None] + diagonal[None, :] - 2.0 * kernel
    np.fill_diagonal(squared, 0.0)
    return np.sqrt(np.maximum(squared, 0.0))


def similarity_to_dissimilarity(similarity: np.ndarray, maximum: float = 1.0) -> np.ndarray:
    """Simple complement conversion ``d = maximum - s`` with a zero diagonal."""
    similarity = np.asarray(similarity, dtype=float)
    dissimilarity = maximum - similarity
    np.fill_diagonal(dissimilarity, 0.0)
    return np.maximum(dissimilarity, 0.0)


def distance_to_kernel(distances: np.ndarray) -> np.ndarray:
    """Classical MDS / Gower centring: turn squared distances into an inner-product matrix."""
    distances = np.asarray(distances, dtype=float)
    count = distances.shape[0]
    if count == 0:
        return distances.copy()
    squared = distances**2
    centering = np.eye(count) - np.full((count, count), 1.0 / count)
    return -0.5 * centering @ squared @ centering


def check_distance_matrix(distances: np.ndarray, tolerance: float = 1e-9) -> None:
    """Raise ``ValueError`` unless *distances* is square, symmetric, non-negative with zero diagonal."""
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError(f"distance matrix must be square, got shape {distances.shape}")
    if not np.allclose(distances, distances.T, atol=tolerance):
        raise ValueError("distance matrix must be symmetric")
    if np.any(distances < -tolerance):
        raise ValueError("distance matrix must be non-negative")
    if not np.allclose(np.diag(distances), 0.0, atol=tolerance):
        raise ValueError("distance matrix must have a zero diagonal")
