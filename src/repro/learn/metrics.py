"""Clustering quality metrics.

The paper's evaluation is qualitative ("2 out of 4 groups completely
identified", "no misplaced examples").  To turn those statements into
assertable numbers, the benchmarks use the standard external metrics below
(purity, Adjusted Rand Index, Normalised Mutual Information) plus a kernel
silhouette for internal quality.  All metrics are implemented from first
principles on numpy — no sklearn is available in the environment.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "contingency_table",
    "purity",
    "rand_index",
    "adjusted_rand_index",
    "normalized_mutual_information",
    "cluster_label_composition",
    "misplacement_count",
    "silhouette_from_distances",
    "clusters_exactly_match_partition",
]


def _as_lists(
    predicted: Sequence[Hashable], truth: Sequence[Hashable]
) -> Tuple[List[Hashable], List[Hashable]]:
    predicted = list(predicted)
    truth = list(truth)
    if len(predicted) != len(truth):
        raise ValueError(f"length mismatch: {len(predicted)} predictions vs {len(truth)} labels")
    return predicted, truth


def contingency_table(predicted: Sequence[Hashable], truth: Sequence[Hashable]) -> Dict[Hashable, Counter]:
    """Return ``cluster -> Counter(true label -> count)``."""
    predicted, truth = _as_lists(predicted, truth)
    table: Dict[Hashable, Counter] = {}
    for cluster, label in zip(predicted, truth):
        table.setdefault(cluster, Counter())[label] += 1
    return table


def purity(predicted: Sequence[Hashable], truth: Sequence[Hashable]) -> float:
    """Fraction of examples belonging to the majority true label of their cluster."""
    predicted, truth = _as_lists(predicted, truth)
    if not predicted:
        return 0.0
    table = contingency_table(predicted, truth)
    majority_total = sum(counter.most_common(1)[0][1] for counter in table.values())
    return majority_total / len(predicted)


def _comb2(value: int) -> int:
    return value * (value - 1) // 2


def rand_index(predicted: Sequence[Hashable], truth: Sequence[Hashable]) -> float:
    """Unadjusted Rand index: fraction of agreeing example pairs."""
    predicted, truth = _as_lists(predicted, truth)
    count = len(predicted)
    if count < 2:
        return 1.0
    same_both = 0
    same_pred_only = 0
    same_true_only = 0
    different_both = 0
    for i in range(count):
        for j in range(i + 1, count):
            same_pred = predicted[i] == predicted[j]
            same_true = truth[i] == truth[j]
            if same_pred and same_true:
                same_both += 1
            elif same_pred:
                same_pred_only += 1
            elif same_true:
                same_true_only += 1
            else:
                different_both += 1
    total = same_both + same_pred_only + same_true_only + different_both
    return (same_both + different_both) / total


def adjusted_rand_index(predicted: Sequence[Hashable], truth: Sequence[Hashable]) -> float:
    """Adjusted Rand Index (Hubert & Arabie, 1985); 1.0 for a perfect match, ~0 for random."""
    predicted, truth = _as_lists(predicted, truth)
    count = len(predicted)
    if count < 2:
        return 1.0
    table = contingency_table(predicted, truth)
    sum_cells = sum(_comb2(cell) for counter in table.values() for cell in counter.values())
    cluster_sizes = [sum(counter.values()) for counter in table.values()]
    label_sizes = Counter(truth)
    sum_rows = sum(_comb2(size) for size in cluster_sizes)
    sum_cols = sum(_comb2(size) for size in label_sizes.values())
    total_pairs = _comb2(count)
    expected = sum_rows * sum_cols / total_pairs if total_pairs else 0.0
    maximum = 0.5 * (sum_rows + sum_cols)
    if math.isclose(maximum, expected):
        return 1.0 if math.isclose(sum_cells, expected) else 0.0
    return (sum_cells - expected) / (maximum - expected)


def normalized_mutual_information(predicted: Sequence[Hashable], truth: Sequence[Hashable]) -> float:
    """NMI with arithmetic-mean normalisation; in [0, 1]."""
    predicted, truth = _as_lists(predicted, truth)
    count = len(predicted)
    if count == 0:
        return 0.0
    table = contingency_table(predicted, truth)
    cluster_sizes = {cluster: sum(counter.values()) for cluster, counter in table.items()}
    label_sizes = Counter(truth)

    mutual_information = 0.0
    for cluster, counter in table.items():
        for label, joint in counter.items():
            p_joint = joint / count
            p_cluster = cluster_sizes[cluster] / count
            p_label = label_sizes[label] / count
            mutual_information += p_joint * math.log(p_joint / (p_cluster * p_label))

    def entropy(sizes: Dict[Hashable, int]) -> float:
        total = 0.0
        for size in sizes.values():
            probability = size / count
            if probability > 0:
                total -= probability * math.log(probability)
        return total

    h_pred = entropy(cluster_sizes)
    h_true = entropy(dict(label_sizes))
    mean_entropy = 0.5 * (h_pred + h_true)
    if mean_entropy <= 0.0:
        return 1.0
    return max(0.0, mutual_information / mean_entropy)


def cluster_label_composition(
    predicted: Sequence[Hashable], truth: Sequence[Hashable]
) -> Dict[Hashable, Dict[Hashable, int]]:
    """Readable composition of each cluster: ``cluster -> {label: count}``."""
    return {cluster: dict(counter) for cluster, counter in contingency_table(predicted, truth).items()}


def misplacement_count(
    predicted: Sequence[Hashable],
    truth: Sequence[Hashable],
    expected_groups: Sequence[Sequence[Hashable]],
) -> int:
    """Number of examples placed outside their expected label group's cluster.

    *expected_groups* describes the target partition at the level of true
    labels — e.g. the paper expects ``[["A"], ["B"], ["C", "D"]]`` for the
    Kast kernel.  Each expected group is mapped to the predicted cluster that
    contains the majority of its examples; every member of the group assigned
    to a different cluster counts as misplaced, as does any collision where
    two expected groups map to the same cluster (the smaller group is counted
    as fully misplaced).
    """
    predicted, truth = _as_lists(predicted, truth)
    group_of_label: Dict[Hashable, int] = {}
    for group_index, group in enumerate(expected_groups):
        for label in group:
            group_of_label[label] = group_index

    group_indices: Dict[int, List[int]] = {}
    for index, label in enumerate(truth):
        group = group_of_label.get(label)
        if group is None:
            continue
        group_indices.setdefault(group, []).append(index)

    # Majority cluster per expected group.
    majority_cluster: Dict[int, Hashable] = {}
    for group, indices in group_indices.items():
        votes = Counter(predicted[i] for i in indices)
        majority_cluster[group] = votes.most_common(1)[0][0]

    misplaced = 0
    claimed: Dict[Hashable, int] = {}
    for group, indices in sorted(group_indices.items(), key=lambda item: -len(item[1])):
        cluster = majority_cluster[group]
        if cluster in claimed:
            # Two expected groups collapsed onto one predicted cluster.
            misplaced += len(indices)
            continue
        claimed[cluster] = group
        misplaced += sum(1 for i in indices if predicted[i] != cluster)
    return misplaced


def clusters_exactly_match_partition(
    predicted: Sequence[Hashable],
    truth: Sequence[Hashable],
    expected_groups: Sequence[Sequence[Hashable]],
) -> bool:
    """Whether the predicted clustering equals the expected label partition.

    The paper's headline claim for the Kast kernel is exactly this predicate
    with ``expected_groups = [["A"], ["B"], ["C", "D"]]``: three clusters, one
    per group, with no misplaced examples.
    """
    predicted, truth = _as_lists(predicted, truth)
    group_of_label: Dict[Hashable, int] = {}
    for group_index, group in enumerate(expected_groups):
        for label in group:
            group_of_label[label] = group_index
    expected_assignment = [group_of_label.get(label) for label in truth]
    if any(value is None for value in expected_assignment):
        return False
    return adjusted_rand_index(predicted, expected_assignment) == 1.0


def silhouette_from_distances(distances: np.ndarray, assignments: Sequence[int]) -> float:
    """Mean silhouette coefficient computed from a precomputed distance matrix."""
    distances = np.asarray(distances, dtype=float)
    assignments = list(assignments)
    count = len(assignments)
    if count == 0 or distances.shape != (count, count):
        raise ValueError("distances must be an (n, n) matrix matching the assignments")
    clusters: Dict[int, List[int]] = {}
    for index, cluster in enumerate(assignments):
        clusters.setdefault(cluster, []).append(index)
    if len(clusters) < 2:
        return 0.0

    total = 0.0
    for index in range(count):
        own = clusters[assignments[index]]
        if len(own) == 1:
            continue  # silhouette of a singleton is defined as 0
        within = np.mean([distances[index, j] for j in own if j != index])
        nearest_other = min(
            np.mean([distances[index, j] for j in members])
            for cluster, members in clusters.items()
            if cluster != assignments[index]
        )
        denominator = max(within, nearest_other)
        if denominator > 0:
            total += (nearest_other - within) / denominator
    return total / count
