"""Learning algorithms consuming kernel matrices.

* :mod:`repro.learn.kpca` — Kernel PCA (Figures 6 and 8 of the paper);
* :mod:`repro.learn.hierarchical` — agglomerative clustering with single /
  complete / average / Ward linkage (Figures 7 and 9 use single linkage);
* :mod:`repro.learn.dendrogram` — merge trees and cuts;
* :mod:`repro.learn.kkmeans` — kernel k-means (extra reader of the matrices);
* :mod:`repro.learn.metrics` — purity, (A)RI, NMI, silhouette,
  misplacement counts;
* :mod:`repro.learn.classify` — kernel nearest-centroid / k-NN classifiers;
* :mod:`repro.learn.distance` — similarity/distance conversions.
"""

from repro.learn.classify import (
    ClassificationResult,
    KernelKNNClassifier,
    KernelNearestCentroid,
    leave_one_out_accuracy,
)
from repro.learn.dendrogram import Dendrogram, Merge
from repro.learn.distance import (
    check_distance_matrix,
    distance_to_kernel,
    kernel_to_distance,
    similarity_to_dissimilarity,
)
from repro.learn.hierarchical import ClusteringResult, HierarchicalClustering, cluster_kernel_matrix
from repro.learn.kkmeans import KernelKMeans, KernelKMeansResult
from repro.learn.kpca import KernelPCA, KernelPCAResult, kernel_pca_embedding
from repro.learn.metrics import (
    adjusted_rand_index,
    cluster_label_composition,
    clusters_exactly_match_partition,
    contingency_table,
    misplacement_count,
    normalized_mutual_information,
    purity,
    rand_index,
    silhouette_from_distances,
)

__all__ = [
    "ClassificationResult",
    "KernelKNNClassifier",
    "KernelNearestCentroid",
    "leave_one_out_accuracy",
    "Dendrogram",
    "Merge",
    "check_distance_matrix",
    "distance_to_kernel",
    "kernel_to_distance",
    "similarity_to_dissimilarity",
    "ClusteringResult",
    "HierarchicalClustering",
    "cluster_kernel_matrix",
    "KernelKMeans",
    "KernelKMeansResult",
    "KernelPCA",
    "KernelPCAResult",
    "kernel_pca_embedding",
    "adjusted_rand_index",
    "cluster_label_composition",
    "clusters_exactly_match_partition",
    "contingency_table",
    "misplacement_count",
    "normalized_mutual_information",
    "purity",
    "rand_index",
    "silhouette_from_distances",
]
