"""Category C — Normal I/O.

Sequential, fixed-transfer-size, write-only access in the style of a default
``IOR -w`` run: each file is streamed from start to end with a constant
transfer size and flushed at the end.  No explicit seeks are needed because
the file position advances implicitly.  The run is wrapped in the IOR harness
(configuration read, results log write) shared with categories B and D.

Together with category D (random access of the same fixed-size transfers)
this category forms the pair that the paper found "shared roughly the same
pattern" and therefore collapsed into one cluster — the string representation
deliberately ignores offsets, so the only differences left between C and D
are incidental.  Keeping both categories write-only also preserves the
paper's observation about the byte-free string variant: without byte values
the write streams of categories A, C and D become indistinguishable and only
the lseek-heavy category B still stands out (section 4.2).
"""

from __future__ import annotations

import random

from repro.workloads.base import OperationEmitter, WorkloadConfig, WorkloadGenerator
from repro.workloads.ior import emit_harness_epilogue, emit_harness_prologue

__all__ = ["NormalIOGenerator"]


class NormalIOGenerator(WorkloadGenerator):
    """Synthetic sequential fixed-size read/write workload (category C)."""

    label = "C"
    description = "Normal I/O: sequential fixed-size writes (IOR -w style)"

    def __init__(self, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(config or WorkloadConfig(files=2, operations_per_file=24, base_request_size=4096))

    def benchmark_name(self) -> str:
        return "IOR (POSIX, sequential)"

    def _generate_operations(self, emitter: OperationEmitter, rng: random.Random) -> None:
        transfer = self.config.base_request_size
        # Small run-to-run variation in phase length keeps originals distinct
        # without changing the structural signature.
        writes = self.config.operations_per_file + rng.randint(-2, 2)
        emit_harness_prologue(emitter)
        for file_index in range(self.config.files):
            handle = f"seq{file_index}"
            emitter.emit("open", handle)
            offset = 0
            for _ in range(writes):
                emitter.emit("write", handle, transfer, offset=offset)
                offset += transfer
            emitter.emit("fsync", handle)
            emitter.emit("close", handle)
        emit_harness_epilogue(emitter)
