"""Category E — mixed read/write phase I/O (beyond the paper's four).

The paper's corpus covers write-dominated patterns (A, C, D) and a
seek-heavy random pattern (B).  Real applications with checkpoint/restart
or out-of-core solvers interleave the two: they run *phases* that update a
working file in place — read a region, write it back — separated by flush
barriers.  This generator adds that fifth shape to the corpus:

* it shares the IOR harness phases with B/C/D (same benchmark binary
  story), so short-substring baselines see it as part of the IOR family;
* its data phase is a signature no other category produces: long runs of
  strictly alternating ``read[t] write[t]`` pairs at the *same* offset
  (read-modify-write), with the transfer size flipping between two values
  from phase to phase and an ``fsync`` barrier after every phase;
* category A is write-only, C writes then reads back in separate passes,
  D writes at random offsets — none of them contains the alternating
  read/write bigram, which is exactly the kind of shared-substring
  evidence the Kast kernel keys on.

Run-to-run variation comes from the number of phases and the per-phase
burst length; the two transfer sizes are fixed per category member so the
combined byte values stay characteristic (the same device the paper uses
for category A).
"""

from __future__ import annotations

import random

from repro.workloads.base import OperationEmitter, WorkloadConfig, WorkloadGenerator
from repro.workloads.ior import emit_harness_epilogue, emit_harness_prologue

__all__ = ["MixedPhaseGenerator"]

#: The two transfer sizes phases alternate between (update vs. merge phase).
_PHASE_TRANSFER_SIZES = (4096, 16384)


class MixedPhaseGenerator(WorkloadGenerator):
    """Synthetic mixed-phase (read-modify-write) workload — category E."""

    label = "E"
    description = "Mixed-phase I/O: alternating read/write bursts with flush barriers"

    def __init__(self, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(config or WorkloadConfig(files=1, operations_per_file=24, base_request_size=4096))

    def benchmark_name(self) -> str:
        return "MixedPhase"

    def _generate_operations(self, emitter: OperationEmitter, rng: random.Random) -> None:
        emit_harness_prologue(emitter)
        phases = max(2, 3 + rng.randint(-1, 2))
        for file_index in range(self.config.files):
            handle = f"work{file_index}"
            emitter.emit("open", handle)
            offset = 0
            for phase_index in range(phases):
                transfer = _PHASE_TRANSFER_SIZES[phase_index % len(_PHASE_TRANSFER_SIZES)]
                bursts = max(2, self.config.operations_per_file // (2 * phases) + rng.randint(-1, 2))
                for _ in range(bursts):
                    # Read-modify-write: the same region is read and then
                    # rewritten, producing the alternating bigram signature.
                    emitter.emit("read", handle, transfer, offset=offset)
                    emitter.emit("write", handle, transfer, offset=offset)
                    offset += transfer
                emitter.emit("fsync", handle)
            emitter.emit("close", handle)
        emit_harness_epilogue(emitter)
