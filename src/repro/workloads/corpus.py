"""Assembly of the paper's evaluation corpus.

Section 4.1: the patterns come from two parallel I/O benchmarks and four
forms of accessing storage — Flash I/O (A), Random POSIX I/O (B), Normal I/O
(C) and Random Access I/O (D).  For each original pattern four synthetic
mutated copies were created, growing 22 originals into 110 examples
distributed as A: 50, B: 20, C: 20, D: 20.

That distribution fixes the original counts: 10 A + 4 B + 4 C + 4 D = 22
originals, each expanded by 4 copies (x5) to 50/20/20/20 = 110.

:func:`build_corpus` reproduces this construction with the synthetic
generators; everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.traces.model import IOTrace
from repro.traces.mutation import MutationConfig, TraceMutator
from repro.workloads.base import WorkloadGenerator
from repro.workloads.flash_io import FlashIOGenerator
from repro.workloads.mixed_phase import MixedPhaseGenerator
from repro.workloads.normal_io import NormalIOGenerator
from repro.workloads.random_access import RandomAccessGenerator
from repro.workloads.random_posix import RandomPosixGenerator

__all__ = ["CorpusConfig", "CorpusSummary", "build_corpus", "PAPER_CLASS_SIZES", "PAPER_ORIGINAL_COUNTS"]

#: Final class sizes reported in section 4.1.
PAPER_CLASS_SIZES: Dict[str, int] = {"A": 50, "B": 20, "C": 20, "D": 20}

#: Number of original (un-mutated) patterns per class implied by the paper's
#: "22 examples ... 4 additional synthetic copies" construction.
PAPER_ORIGINAL_COUNTS: Dict[str, int] = {"A": 10, "B": 4, "C": 4, "D": 4}

#: Copies per original ("4 additional synthetic copies").
PAPER_COPIES_PER_ORIGINAL = 4


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of the corpus construction.

    Attributes
    ----------
    originals_per_class:
        Number of original traces per class label.  Defaults to the paper's
        implied counts (10/4/4/4).
    copies_per_original:
        Mutated copies added per original (the paper uses 4).
    seed:
        Master seed; originals and mutations derive their own seeds from it.
    mutation:
        Mutation configuration; defaults to :meth:`MutationConfig.paper_corpus`.
    """

    originals_per_class: Dict[str, int] = field(default_factory=lambda: dict(PAPER_ORIGINAL_COUNTS))
    copies_per_original: int = PAPER_COPIES_PER_ORIGINAL
    seed: int = 2017
    mutation: Optional[MutationConfig] = None

    def __post_init__(self) -> None:
        if self.copies_per_original < 0:
            raise ValueError("copies_per_original must be >= 0")
        for label, count in self.originals_per_class.items():
            if count < 1:
                raise ValueError(f"originals_per_class[{label!r}] must be >= 1, got {count}")

    @classmethod
    def paper(cls, seed: int = 2017) -> "CorpusConfig":
        """The paper's construction: 22 originals -> 110 examples."""
        return cls(seed=seed)

    @classmethod
    def small(cls, seed: int = 2017) -> "CorpusConfig":
        """A reduced corpus (2 originals per class, 1 copy each) for fast tests."""
        return cls(
            originals_per_class={"A": 2, "B": 2, "C": 2, "D": 2},
            copies_per_original=1,
            seed=seed,
        )

    @classmethod
    def extended(cls, seed: int = 2017) -> "CorpusConfig":
        """The paper corpus plus the mixed-phase category E (4 originals ×5)."""
        originals = dict(PAPER_ORIGINAL_COUNTS)
        originals["E"] = 4
        return cls(originals_per_class=originals, seed=seed)

    @classmethod
    def small_extended(cls, seed: int = 2017) -> "CorpusConfig":
        """The reduced test corpus plus category E (2 originals, 1 copy each)."""
        return cls(
            originals_per_class={"A": 2, "B": 2, "C": 2, "D": 2, "E": 2},
            copies_per_original=1,
            seed=seed,
        )

    def expected_total(self) -> int:
        """Total number of examples the corpus will contain."""
        return sum(self.originals_per_class.values()) * (1 + self.copies_per_original)


@dataclass(frozen=True)
class CorpusSummary:
    """Counts describing a built corpus."""

    total: int
    per_label: Dict[str, int]
    originals: int
    copies: int


def _generator_for(label: str) -> WorkloadGenerator:
    generators = {
        "A": FlashIOGenerator,
        "B": RandomPosixGenerator,
        "C": NormalIOGenerator,
        "D": RandomAccessGenerator,
        "E": MixedPhaseGenerator,
    }
    try:
        return generators[label]()
    except KeyError as exc:
        raise ValueError(f"unknown corpus class label: {label!r}") from exc


def build_corpus(config: Optional[CorpusConfig] = None) -> List[IOTrace]:
    """Build the labelled trace corpus described by *config*.

    Returns the traces ordered by class label (A block first, then B, C, D),
    originals followed immediately by their mutated copies — the same kind of
    layout the paper's similarity-matrix figures use.
    """
    config = config or CorpusConfig.paper()
    mutation_config = config.mutation or MutationConfig.paper_corpus()
    corpus: List[IOTrace] = []
    class_offset = 0
    for label in sorted(config.originals_per_class):
        generator = _generator_for(label)
        originals_count = config.originals_per_class[label]
        base_seed = config.seed + class_offset * 1000
        originals = generator.generate_many(originals_count, seed=base_seed)
        for original_index, original in enumerate(originals):
            named = original.with_name(f"{label}{original_index:02d}")
            corpus.append(named)
            mutator = TraceMutator(
                config=mutation_config,
                seed=config.seed + class_offset * 1000 + 100 + original_index,
            )
            for copy_index, copy in enumerate(mutator.mutate_many(named, config.copies_per_original)):
                corpus.append(copy.with_name(f"{label}{original_index:02d}_m{copy_index + 1}"))
        class_offset += 1
    return corpus


def summarise_corpus_counts(traces: Sequence[IOTrace]) -> CorpusSummary:
    """Count examples per label and originals vs mutated copies."""
    per_label: Dict[str, int] = {}
    copies = 0
    for trace in traces:
        label = trace.label or "?"
        per_label[label] = per_label.get(label, 0) + 1
        if "_m" in trace.name:
            copies += 1
    return CorpusSummary(
        total=len(traces),
        per_label=per_label,
        originals=len(traces) - copies,
        copies=copies,
    )


__all__.append("summarise_corpus_counts")
