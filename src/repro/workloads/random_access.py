"""Category D — Random Access I/O.

Fixed-transfer-size, write-only access like category C, but issued at random offsets
(the synthetic application computes the target position itself and the
tracing layer records plain ``read``/``write`` calls — no explicit ``lseek``
operations, which are category B's signature).  Because the string
representation ignores offsets entirely, the token streams of C and D are
nearly identical, which is precisely why the paper finds the two categories
merging into a single cluster (section 4.2): "(C) and (D) shared roughly the
same pattern."

The small differences that remain — slightly different phase lengths and the
randomised offsets recorded in the (ignored) offset field — keep the
categories distinguishable in the raw traces while being essentially
invisible to the kernel, exactly the situation the paper describes.  The run
is wrapped in the same IOR harness as categories B and C.
"""

from __future__ import annotations

import random

from repro.workloads.base import OperationEmitter, WorkloadConfig, WorkloadGenerator
from repro.workloads.ior import emit_harness_epilogue, emit_harness_prologue

__all__ = ["RandomAccessGenerator"]


class RandomAccessGenerator(WorkloadGenerator):
    """Synthetic random-offset fixed-size workload without explicit seeks (category D)."""

    label = "D"
    description = "Random Access I/O: fixed-size writes at random offsets (no explicit seeks)"

    def __init__(self, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(config or WorkloadConfig(files=2, operations_per_file=24, base_request_size=4096))

    def benchmark_name(self) -> str:
        return "IOR (POSIX, random access)"

    def _generate_operations(self, emitter: OperationEmitter, rng: random.Random) -> None:
        transfer = self.config.base_request_size
        file_span = transfer * self.config.operations_per_file * 4
        writes = self.config.operations_per_file + rng.randint(-2, 2)
        emit_harness_prologue(emitter)
        for file_index in range(self.config.files):
            handle = f"rand{file_index}"
            emitter.emit("open", handle)
            for _ in range(writes):
                offset = rng.randrange(0, file_span, transfer)
                emitter.emit("write", handle, transfer, offset=offset)
            emitter.emit("fsync", handle)
            emitter.emit("close", handle)
        emit_harness_epilogue(emitter)
