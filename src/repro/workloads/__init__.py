"""Synthetic workload generators replacing the paper's captured HPC traces.

* :mod:`repro.workloads.base` — generator framework;
* :mod:`repro.workloads.flash_io` — category A (FLASH-IO style writes);
* :mod:`repro.workloads.random_posix` — category B (lseek-heavy random POSIX);
* :mod:`repro.workloads.normal_io` — category C (sequential fixed-size IOR);
* :mod:`repro.workloads.random_access` — category D (random-offset fixed-size
  IOR without explicit seeks);
* :mod:`repro.workloads.mixed_phase` — category E (mixed read/write phases,
  an extension beyond the paper's four categories);
* :mod:`repro.workloads.ior` — general configurable IOR-like generator and
  the shared benchmark harness phases;
* :mod:`repro.workloads.corpus` — the 110-example evaluation corpus of
  section 4.1 (plus the ``extended`` A–E variants).
"""

from repro.workloads.base import OperationEmitter, WorkloadConfig, WorkloadGenerator
from repro.workloads.corpus import (
    PAPER_CLASS_SIZES,
    PAPER_COPIES_PER_ORIGINAL,
    PAPER_ORIGINAL_COUNTS,
    CorpusConfig,
    CorpusSummary,
    build_corpus,
    summarise_corpus_counts,
)
from repro.workloads.flash_io import FlashIOGenerator
from repro.workloads.ior import IORGenerator, IORParameters, emit_harness_epilogue, emit_harness_prologue
from repro.workloads.mixed_phase import MixedPhaseGenerator
from repro.workloads.normal_io import NormalIOGenerator
from repro.workloads.random_access import RandomAccessGenerator
from repro.workloads.random_posix import RandomPosixGenerator

__all__ = [
    "OperationEmitter",
    "WorkloadConfig",
    "WorkloadGenerator",
    "PAPER_CLASS_SIZES",
    "PAPER_COPIES_PER_ORIGINAL",
    "PAPER_ORIGINAL_COUNTS",
    "CorpusConfig",
    "CorpusSummary",
    "build_corpus",
    "summarise_corpus_counts",
    "FlashIOGenerator",
    "IORGenerator",
    "IORParameters",
    "emit_harness_epilogue",
    "emit_harness_prologue",
    "MixedPhaseGenerator",
    "NormalIOGenerator",
    "RandomAccessGenerator",
    "RandomPosixGenerator",
]
