"""Base machinery for synthetic I/O workload generators.

The paper's corpus comes from real traces of the IOR benchmark and the
FLASH-IO benchmark captured on an HPC system — data we do not have.  The
generators in this subpackage are the substitution documented in DESIGN.md:
they emit plain :class:`~repro.traces.model.IOTrace` objects whose operation
streams carry the structural signatures the paper attributes to each of its
four categories.  Because the kernel only ever sees operation names, handles,
byte counts and ordering, reproducing those signatures is sufficient to
reproduce the clustering behaviour.

Every generator:

* is deterministic given a seed;
* labels its traces with the paper's category letter (``A``/``B``/``C``/``D``);
* produces traces that pass :func:`repro.traces.model.validate_trace`
  (matched open/close pairs, no zero-byte data operations).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.traces.model import IOOperation, IOTrace, TraceMetadata

__all__ = ["WorkloadConfig", "WorkloadGenerator", "OperationEmitter"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters shared by all workload generators.

    Attributes
    ----------
    files:
        Number of files (handles) the traced program touches.
    operations_per_file:
        Approximate number of data operations issued per file.
    base_request_size:
        Typical payload size in bytes for one data operation.
    seed:
        Seed for the generator's random number generator.
    ranks:
        Number of MPI ranks the synthetic application pretends to have; it
        only affects metadata and the number of handles for rank-private
        file layouts.
    """

    files: int = 2
    operations_per_file: int = 24
    base_request_size: int = 4096
    seed: Optional[int] = None
    ranks: int = 1

    def __post_init__(self) -> None:
        if self.files < 1:
            raise ValueError(f"files must be >= 1, got {self.files}")
        if self.operations_per_file < 1:
            raise ValueError(f"operations_per_file must be >= 1, got {self.operations_per_file}")
        if self.base_request_size < 1:
            raise ValueError(f"base_request_size must be >= 1, got {self.base_request_size}")
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")


class OperationEmitter:
    """Small helper accumulating operations with automatic timestamps."""

    def __init__(self) -> None:
        self._operations: List[IOOperation] = []

    def emit(self, name: str, handle: str, nbytes: int = 0, offset: Optional[int] = None) -> None:
        """Append one operation."""
        self._operations.append(
            IOOperation(
                name=name,
                handle=handle,
                nbytes=nbytes,
                offset=offset,
                timestamp=len(self._operations),
            )
        )

    def operations(self) -> List[IOOperation]:
        """All operations emitted so far, in order."""
        return list(self._operations)

    def __len__(self) -> int:
        return len(self._operations)


class WorkloadGenerator(abc.ABC):
    """Abstract base class for the category generators.

    Subclasses implement :meth:`_generate_operations`; the base class takes
    care of naming, labelling, metadata and seeding.
    """

    #: Category label attached to generated traces (the paper's A/B/C/D).
    label: str = "?"
    #: Human-readable description used in trace metadata and reports.
    description: str = ""

    def __init__(self, config: Optional[WorkloadConfig] = None) -> None:
        self.config = config or WorkloadConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self, name: Optional[str] = None, seed: Optional[int] = None) -> IOTrace:
        """Generate one trace.

        Parameters
        ----------
        name:
            Trace name; defaults to ``"<label>_<seed>"``.
        seed:
            Override the config seed for this particular trace (used by the
            corpus builder to derive many distinct originals from one
            generator instance).
        """
        effective_seed = seed if seed is not None else self.config.seed
        rng = random.Random(effective_seed)
        emitter = OperationEmitter()
        self._generate_operations(emitter, rng)
        trace_name = name or f"{self.label}_{effective_seed if effective_seed is not None else 'x'}"
        metadata = TraceMetadata(
            application=self.__class__.__name__,
            benchmark=self.benchmark_name(),
            ranks=self.config.ranks,
            description=self.description,
        )
        return IOTrace.from_operations(emitter.operations(), name=trace_name, label=self.label, metadata=metadata)

    def generate_many(self, count: int, seed: Optional[int] = None) -> List[IOTrace]:
        """Generate *count* traces with distinct derived seeds."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        base_seed = seed if seed is not None else (self.config.seed or 0)
        return [
            self.generate(name=f"{self.label}_{base_seed + index}", seed=base_seed + index)
            for index in range(count)
        ]

    def benchmark_name(self) -> str:
        """Name of the benchmark this generator imitates (for metadata)."""
        return self.__class__.__name__

    # ------------------------------------------------------------------
    # To be provided by subclasses
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _generate_operations(self, emitter: OperationEmitter, rng: random.Random) -> None:
        """Emit the operation stream of one trace into *emitter*."""
