"""IOR-style workload generation.

Three of the paper's four categories (Random POSIX I/O, Normal I/O and
Random Access I/O) come from the IOR benchmark (Loewe, McLarty & Morrone)
run with different access options.  Real IOR runs share a common *harness*
around the measured data phase: the binary reads its configuration/script
file at start-up and appends a results log at the end.  That shared harness
matters for the reproduction: it is I/O that categories B, C and D have in
common (they are the same binary) and category A (FLASH-IO, a different
application) does not — which is what lets the short-substring baseline
kernels see B, C and D as one family while the Kast kernel still tells them
apart by their dominant data-phase structure.

This module provides

* :func:`emit_harness_prologue` / :func:`emit_harness_epilogue` — the shared
  harness phases, used by the category B/C/D generators;
* :class:`IORParameters` and :class:`IORGenerator` — a general configurable
  IOR-like generator (API selection, block/transfer sizes, sequential or
  random offsets, optional read-back) for users who want workloads beyond
  the four canned categories.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.workloads.base import OperationEmitter, WorkloadConfig, WorkloadGenerator

__all__ = ["emit_harness_prologue", "emit_harness_epilogue", "IORParameters", "IORGenerator"]

#: Size of one configuration-file read in the harness prologue.
_CONFIG_READ_SIZE = 512
#: Number of configuration reads.
_CONFIG_READ_COUNT = 4
#: Size of one results-log write in the harness epilogue.
_LOG_WRITE_SIZE = 256
#: Number of log writes.
_LOG_WRITE_COUNT = 3


def emit_harness_prologue(emitter: OperationEmitter, handle: str = "ior_config") -> None:
    """Emit the benchmark start-up phase: read the configuration/script file.

    Identical for every IOR-style category so that the corresponding token
    run is shared verbatim by categories B, C and D.
    """
    emitter.emit("open", handle)
    for _ in range(_CONFIG_READ_COUNT):
        emitter.emit("read", handle, _CONFIG_READ_SIZE)
    emitter.emit("close", handle)


def emit_harness_epilogue(emitter: OperationEmitter, handle: str = "ior_log") -> None:
    """Emit the benchmark shutdown phase: append the results log."""
    emitter.emit("open", handle)
    for _ in range(_LOG_WRITE_COUNT):
        emitter.emit("write", handle, _LOG_WRITE_SIZE)
    emitter.emit("close", handle)


@dataclass(frozen=True)
class IORParameters:
    """Options of one IOR-like run (a small subset of real IOR's flags).

    Attributes
    ----------
    api:
        ``"posix"`` or ``"mpiio"`` — selects the operation names emitted.
    transfer_size:
        Bytes moved per data operation (IOR ``-t``).
    transfers_per_block:
        Data operations per block (IOR block size / transfer size).
    segments:
        Number of blocks written per file (IOR ``-s``).
    random_offsets:
        Seek to a random block before each transfer (IOR ``-z``); under the
        POSIX API this emits explicit ``lseek`` operations.
    read_back:
        Re-read the data after writing (IOR ``-r`` following ``-w``).
    fsync:
        Issue ``fsync`` after the write phase (IOR ``-e``).
    include_harness:
        Emit the shared configuration-read / log-write phases.
    """

    api: str = "posix"
    transfer_size: int = 4096
    transfers_per_block: int = 8
    segments: int = 3
    random_offsets: bool = False
    read_back: bool = True
    fsync: bool = True
    include_harness: bool = True

    def __post_init__(self) -> None:
        if self.api not in ("posix", "mpiio"):
            raise ValueError(f"api must be 'posix' or 'mpiio', got {self.api!r}")
        if self.transfer_size < 1:
            raise ValueError("transfer_size must be >= 1")
        if self.transfers_per_block < 1:
            raise ValueError("transfers_per_block must be >= 1")
        if self.segments < 1:
            raise ValueError("segments must be >= 1")


class IORGenerator(WorkloadGenerator):
    """General IOR-like generator parameterised by :class:`IORParameters`."""

    label = "IOR"
    description = "Configurable IOR-like workload"

    def __init__(
        self,
        parameters: Optional[IORParameters] = None,
        config: Optional[WorkloadConfig] = None,
    ) -> None:
        super().__init__(config or WorkloadConfig(files=1))
        self.parameters = parameters or IORParameters()

    def benchmark_name(self) -> str:
        return f"IOR ({self.parameters.api})"

    def _operation_names(self) -> tuple:
        if self.parameters.api == "mpiio":
            return "mpi_write", "mpi_read"
        return "write", "read"

    def _generate_operations(self, emitter: OperationEmitter, rng: random.Random) -> None:
        parameters = self.parameters
        write_name, read_name = self._operation_names()
        if parameters.include_harness:
            emit_harness_prologue(emitter)
        transfer = parameters.transfer_size
        span = transfer * parameters.transfers_per_block * parameters.segments * 4
        for file_index in range(self.config.files):
            handle = f"ior{file_index}"
            emitter.emit("open", handle)
            offset = 0
            for _ in range(parameters.segments):
                for _ in range(parameters.transfers_per_block):
                    if parameters.random_offsets:
                        offset = rng.randrange(0, span, transfer)
                        if parameters.api == "posix":
                            emitter.emit("lseek", handle, 0, offset=offset)
                    emitter.emit(write_name, handle, transfer, offset=offset)
                    offset += transfer
            if parameters.fsync:
                emitter.emit("fsync", handle)
            if parameters.read_back:
                offset = 0
                for _ in range(parameters.segments * parameters.transfers_per_block // 2):
                    if parameters.random_offsets:
                        offset = rng.randrange(0, span, transfer)
                        if parameters.api == "posix":
                            emitter.emit("lseek", handle, 0, offset=offset)
                    emitter.emit(read_name, handle, transfer, offset=offset)
                    offset += transfer
            emitter.emit("close", handle)
        if parameters.include_harness:
            emit_harness_epilogue(emitter)
