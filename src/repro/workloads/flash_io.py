"""Category A — Flash I/O.

The FLASH-IO benchmark (Fryxell et al., 2000) extracts the I/O behaviour of
the FLASH adaptive-mesh hydrodynamics code: every rank writes a checkpoint
file plus smaller plot files, each consisting of a header followed by many
per-variable data records of *different* sizes.

The paper's description of why category A separates cleanly (section 4.2):
"(A) examples contained contiguous write operations with different byte
values that were not present in the other categories."  The generator below
reproduces exactly that signature:

* write-only access, no shared IOR harness (FLASH is a different binary);
* long runs of contiguous writes;
* byte sizes that vary from write to write following a fixed per-variable
  size schedule, so compaction rule 2 produces combined byte values that are
  characteristic of the category and consistent across its members.

Run-to-run variation comes from the number of mesh blocks written and from
the number of plot files, which change token weights and string length but
not the characteristic byte values — mirroring how different FLASH runs
differ in mesh size but not in variable layout.
"""

from __future__ import annotations

import random

from repro.workloads.base import OperationEmitter, WorkloadConfig, WorkloadGenerator

__all__ = ["FlashIOGenerator"]

#: Sizes of the mesh-variable records written per block.  The real FLASH-IO
#: benchmark writes 24 mesh variables per block; eight representative record
#: sizes are enough to produce the category's signature.
_VARIABLE_SIZES = (8192, 4096, 16384, 12288, 2048, 24576, 6144, 10240)

#: Fixed header/attribute writes preceding the data records of each file.
_HEADER_SIZES = (96, 128, 160, 224)


class FlashIOGenerator(WorkloadGenerator):
    """Synthetic FLASH-IO checkpoint/plot-file writer (category A)."""

    label = "A"
    description = "Flash I/O: contiguous writes of varying sizes (checkpoint + plot files)"

    def __init__(self, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(config or WorkloadConfig(files=3, operations_per_file=24, base_request_size=8192))

    def benchmark_name(self) -> str:
        return "FLASH-IO"

    def _generate_operations(self, emitter: OperationEmitter, rng: random.Random) -> None:
        # Checkpoint file plus a varying number of plot files.
        plot_files = max(1, self.config.files - 1 + rng.randint(-1, 1))
        self._emit_output_file(emitter, rng, handle="chk0", scale=1.0)
        for plot_index in range(plot_files):
            self._emit_output_file(emitter, rng, handle=f"plot{plot_index}", scale=0.5)

    def _emit_output_file(
        self,
        emitter: OperationEmitter,
        rng: random.Random,
        handle: str,
        scale: float,
    ) -> None:
        emitter.emit("open", handle)
        # Deterministic header: the variable/attribute catalogue of the file.
        for size in _HEADER_SIZES:
            emitter.emit("write", handle, size)
        # Per-block variable records; the block count varies run to run.
        base_blocks = max(2, int(self.config.operations_per_file * scale) // len(_VARIABLE_SIZES))
        blocks = max(1, base_blocks + rng.randint(-1, 2))
        offset = 0
        for _ in range(blocks):
            for size in _VARIABLE_SIZES:
                nbytes = max(64, int(size * scale))
                emitter.emit("write", handle, nbytes, offset=offset)
                offset += nbytes
        emitter.emit("fsync", handle)
        emitter.emit("close", handle)
