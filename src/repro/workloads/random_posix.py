"""Category B — Random POSIX I/O.

The paper's description of why category B separates cleanly (section 4.2):
"(B) examples contained lseek operations not seen elsewhere."  This generator
imitates an IOR run in POSIX API mode with a randomised access pattern: each
data transfer is preceded by an explicit ``lseek`` to a random offset, which
is the tell-tale operation of the category.  Reads and writes of a fixed
transfer size alternate between a write phase and a read-back phase, as IOR
does, and the run is wrapped in the IOR harness (configuration read, results
log write) shared with categories C and D.
"""

from __future__ import annotations

import random

from repro.workloads.base import OperationEmitter, WorkloadConfig, WorkloadGenerator
from repro.workloads.ior import emit_harness_epilogue, emit_harness_prologue

__all__ = ["RandomPosixGenerator"]


class RandomPosixGenerator(WorkloadGenerator):
    """Synthetic random-offset POSIX workload with explicit seeks (category B)."""

    label = "B"
    description = "Random POSIX I/O: lseek to random offsets before each fixed-size transfer"

    def __init__(self, config: WorkloadConfig = None) -> None:  # type: ignore[assignment]
        super().__init__(config or WorkloadConfig(files=2, operations_per_file=24, base_request_size=4096))

    def benchmark_name(self) -> str:
        return "IOR (POSIX, random)"

    def _generate_operations(self, emitter: OperationEmitter, rng: random.Random) -> None:
        transfer = self.config.base_request_size
        file_span = transfer * self.config.operations_per_file * 4
        writes = self.config.operations_per_file + rng.randint(-2, 2)
        reads = max(4, writes // 2 + rng.randint(-1, 1))
        emit_harness_prologue(emitter)
        for file_index in range(self.config.files):
            handle = f"data{file_index}"
            emitter.emit("open", handle)
            # Write phase: seek to a random aligned offset, then write.
            for _ in range(writes):
                offset = rng.randrange(0, file_span, transfer)
                emitter.emit("lseek", handle, 0, offset=offset)
                emitter.emit("write", handle, transfer, offset=offset)
            emitter.emit("fsync", handle)
            # Read-back phase: seek + read, again at random offsets.
            for _ in range(reads):
                offset = rng.randrange(0, file_span, transfer)
                emitter.emit("lseek", handle, 0, offset=offset)
                emitter.emit("read", handle, transfer, offset=offset)
            emitter.emit("close", handle)
        emit_harness_epilogue(emitter)
