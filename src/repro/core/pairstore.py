"""Persistent, content-addressed store of individual kernel pair values.

:class:`~repro.core.cachestore.MatrixCache` (PR 5) reuses *finished*
matrices — exact corpus matches and prefixes.  Any reordering, subset, or
interleaving of already-seen traces misses it and recomputes every kernel
value, which is exactly the overlap pattern a high-traffic service sees.
:class:`PairStore` closes that gap one level down: it persists *individual*
raw kernel values ``k(a, b)`` keyed by

    (kernel_signature, fingerprint(a), fingerprint(b))

with symmetric canonical ordering (``fp_a <= fp_b``), so any corpus that
overlaps previously computed traces — in any order, any subset, any
interleaving — pays only for its novel pairs.  Self values ``k(a, a)``
(the normalisation denominators) are stored as the degenerate pair
``(fp, fp)``, so a fully covered resubmission performs *zero* kernel
evaluations.  It lives under the service state dir beside ``matrix-cache/``
and is shared by sessions, servers and pull-loop workers alike.

Layout
------
A Gram matrix over ``n`` traces has O(n²) pairs, so one file per pair is a
non-starter.  Entries are sharded into append-friendly *segment files*
bucketed by key digest::

    root/
        <sig-digest>/            # one directory per kernel signature
            <bucket>/            # hex digit of the pair-key digest
                seg-<uuid>.json  # one batch of [fp_a, fp_b, value] rows

One :meth:`put_many` call appends at most one new segment per touched
bucket, and one :meth:`get_many` call reads each touched bucket's segments
once — lookup cost is one segment read per *bucket*, not per pair.  Rows
are JSON ``[fp_a, fp_b, value]`` triples mirroring the engine's
:func:`~repro.core.engine.encode_pair_values` codec: Python's JSON float
representation is the shortest round-tripping form, so values served from
the store are bit-identical to the floats the computing worker produced.

Durability and multi-process sharing
------------------------------------
Every segment is written atomically (unique temp file + ``os.replace``)
and carries a sha256 checksum over its canonical row serialization; a
torn, truncated or foreign segment fails validation on load and is removed
(self-healing) instead of served.  Racing writers produce distinct
segments; racing readers tolerate segments vanishing mid-scan.  Values are
deterministic, so duplicate rows across segments are byte-identical and
last-wins merging is safe.  Buckets accumulating more than
``compact_segments`` files are merged into one (background compaction,
wired into :meth:`sweep` and opportunistically into :meth:`put_many`).
Eviction is LRU at segment granularity (mtime, touched on read hits)
bounded by ``max_bytes``, plus an optional idle TTL.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.atomicio import write_text_atomic

__all__ = ["PairStore", "PairStoreError"]

#: Segment format version (bump on incompatible layout changes).
_SEGMENT_VERSION = 1

#: Default size bound on the store's segment bytes (~256 MB of pair values).
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Default segment-count-per-bucket threshold that triggers compaction.
_DEFAULT_COMPACT_SEGMENTS = 8

#: A pair key: canonically ordered content fingerprints (``fp_a <= fp_b``).
PairFingerprints = Tuple[str, str]


class PairStoreError(RuntimeError):
    """Raised for values or keys the pair store cannot persist."""


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical_pair(pair: Tuple[str, str]) -> PairFingerprints:
    a, b = str(pair[0]), str(pair[1])
    if not a or not b:
        raise PairStoreError(f"pair fingerprints must be non-empty, got {pair!r}")
    return (a, b) if a <= b else (b, a)


def _rows_text(rows: List[List[Any]]) -> str:
    """Canonical serialization the segment checksum covers.

    Floats round-trip exactly through ``json`` (shortest repr), so
    re-serialising parsed rows reproduces these bytes — which is what lets
    a load verify the checksum without a second copy of the payload.
    """
    return json.dumps(rows, separators=(",", ":"))


@dataclass
class _Counters:
    hits: int = 0
    misses: int = 0
    puts: int = 0
    stores: int = 0
    invalid: int = 0
    evicted_segments: int = 0
    compactions: int = 0


class PairStore:
    """Directory-backed, bounded store of raw symmetric kernel pair values.

    Parameters
    ----------
    root:
        Store directory (created if missing) — conventionally
        ``<state-dir>/pair-store`` beside the matrix cache.
    max_bytes:
        LRU bound on total segment bytes; the least-recently-read
        segments beyond it are evicted by :meth:`sweep`.
    ttl:
        Optional seconds of idleness (no write, no read hit) after which
        a segment is dropped by :meth:`sweep`.  ``None`` keeps segments
        until LRU eviction.
    compact_segments:
        Per-bucket segment-file count beyond which the bucket is merged
        into a single segment (on :meth:`put_many` and :meth:`sweep`).
    """

    def __init__(
        self,
        root: str,
        max_bytes: int = _DEFAULT_MAX_BYTES,
        ttl: Optional[float] = None,
        compact_segments: int = _DEFAULT_COMPACT_SEGMENTS,
    ) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if ttl is not None and ttl < 0:
            raise ValueError(f"ttl must be >= 0 or None, got {ttl}")
        if compact_segments < 2:
            raise ValueError(f"compact_segments must be >= 2, got {compact_segments}")
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.max_bytes = max_bytes
        self.ttl = ttl
        self.compact_segments = compact_segments
        self._counts = _Counters()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _signature_dir(self, signature: str) -> str:
        return os.path.join(self.root, _digest(signature)[:16])

    @staticmethod
    def _bucket_of(pair: PairFingerprints) -> str:
        # One hex digit → 16 buckets per signature: enough fan-out that a
        # bucket stays small, few enough that one put_many touches a
        # handful of files instead of hundreds.
        return _digest(f"{pair[0]}|{pair[1]}")[:1]

    def _bucket_dir(self, signature: str, bucket: str) -> str:
        return os.path.join(self._signature_dir(signature), bucket)

    @staticmethod
    def _segment_files(bucket_dir: str) -> List[str]:
        try:
            names = os.listdir(bucket_dir)
        except FileNotFoundError:
            return []
        return sorted(
            os.path.join(bucket_dir, name)
            for name in names
            if name.startswith("seg-") and name.endswith(".json")
        )

    # ------------------------------------------------------------------
    # Segment IO
    # ------------------------------------------------------------------
    def _load_segment(self, path: str, signature: Optional[str]) -> Optional[Dict[PairFingerprints, float]]:
        """The segment's checksum-verified values, or ``None`` (removing damage).

        A vanished file (compacted or evicted by a sibling process mid-scan)
        is *not* damage — it is skipped silently.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict) or payload.get("v") != _SEGMENT_VERSION:
                raise ValueError("unsupported segment version")
            rows = payload.get("pairs")
            if not isinstance(rows, list):
                raise ValueError("segment carries no pair rows")
            if signature is not None and payload.get("signature") != signature:
                raise ValueError("segment signature does not match its directory")
            if _digest(_rows_text(rows)) != payload.get("sha256"):
                raise ValueError("segment checksum mismatch")
            values: Dict[PairFingerprints, float] = {}
            for row in rows:
                if isinstance(row, (str, bytes)) or len(row) != 3:
                    raise ValueError(f"segment row must be [fp_a, fp_b, value], got {row!r}")
                fp_a, fp_b, value = row
                values[(str(fp_a), str(fp_b))] = float(value)
            return values
        except FileNotFoundError:
            return None
        except (OSError, ValueError, TypeError, json.JSONDecodeError):
            with self._lock:
                self._counts.invalid += 1
            with contextlib.suppress(OSError):
                os.remove(path)
            return None

    def _write_segment(self, bucket_dir: str, signature: str, values: Mapping[PairFingerprints, float]) -> str:
        os.makedirs(bucket_dir, exist_ok=True)
        rows = [[fp_a, fp_b, float(value)] for (fp_a, fp_b), value in sorted(values.items())]
        payload = {
            "v": _SEGMENT_VERSION,
            "signature": signature,
            "pairs": rows,
            "sha256": _digest(_rows_text(rows)),
        }
        path = os.path.join(bucket_dir, f"seg-{uuid.uuid4().hex}.json")
        write_text_atomic(path, json.dumps(payload, separators=(",", ":")))
        return path

    def _bucket_values(self, signature: str, bucket: str) -> Tuple[Dict[PairFingerprints, float], List[str]]:
        """All values of one bucket plus the segment paths that held them."""
        bucket_dir = self._bucket_dir(signature, bucket)
        merged: Dict[PairFingerprints, float] = {}
        read: List[str] = []
        for path in self._segment_files(bucket_dir):
            values = self._load_segment(path, signature)
            if values is None:
                continue
            merged.update(values)
            read.append(path)
        return merged, read

    # ------------------------------------------------------------------
    # Batched API
    # ------------------------------------------------------------------
    def get_many(
        self, signature: str, pairs: Iterable[Tuple[str, str]]
    ) -> Dict[PairFingerprints, float]:
        """Stored values for the requested fingerprint pairs under *signature*.

        Pairs are canonicalized (``fp_a <= fp_b``), so either orientation
        finds the value; the returned mapping is keyed by the canonical
        form.  Missing pairs are simply absent.  Segments that served at
        least one hit are touched (mtime), feeding the LRU sweep order.
        """
        wanted: Dict[str, List[PairFingerprints]] = {}
        for pair in pairs:
            canonical = _canonical_pair(pair)
            wanted.setdefault(self._bucket_of(canonical), []).append(canonical)
        found: Dict[PairFingerprints, float] = {}
        requested = 0
        for bucket, bucket_pairs in wanted.items():
            requested += len(bucket_pairs)
            available, segments = self._bucket_values(signature, bucket)
            served = False
            for canonical in bucket_pairs:
                value = available.get(canonical)
                if value is not None:
                    found[canonical] = value
                    served = True
            if served:
                for path in segments:
                    with contextlib.suppress(OSError):
                        os.utime(path)
        with self._lock:
            self._counts.hits += len(found)
            self._counts.misses += requested - len(found)
        return found

    def put_many(self, signature: str, values: Mapping[Tuple[str, str], float]) -> int:
        """Persist a batch of raw pair values; returns how many were written.

        Values are grouped by bucket — one new segment file per touched
        bucket, regardless of batch size.  Buckets exceeding the
        compaction threshold are merged immediately afterwards.  Keys are
        content fingerprints, so concurrent writers storing the same pair
        write byte-identical values (kernels are deterministic) and
        duplicates collapse at the next compaction.
        """
        grouped: Dict[str, Dict[PairFingerprints, float]] = {}
        for pair, value in values.items():
            canonical = _canonical_pair(pair)
            grouped.setdefault(self._bucket_of(canonical), {})[canonical] = float(value)
        written = 0
        for bucket, bucket_values in grouped.items():
            bucket_dir = self._bucket_dir(signature, bucket)
            self._write_segment(bucket_dir, signature, bucket_values)
            written += len(bucket_values)
            if len(self._segment_files(bucket_dir)) > self.compact_segments:
                self._compact_bucket(signature, bucket)
        with self._lock:
            self._counts.puts += written
            self._counts.stores += 1
        return written

    # ------------------------------------------------------------------
    # Compaction and eviction
    # ------------------------------------------------------------------
    def _compact_bucket(self, signature: str, bucket: str) -> bool:
        """Merge one bucket's segments into a single segment file.

        Safe against racing processes: only the segments actually read
        are removed (a concurrently appended segment survives), the merged
        segment is written *before* any removal, and duplicate values are
        byte-identical by construction.
        """
        merged, read = self._bucket_values(signature, bucket)
        if len(read) < 2:
            return False
        self._write_segment(self._bucket_dir(signature, bucket), signature, merged)
        for path in read:
            with contextlib.suppress(OSError):
                os.remove(path)
        with self._lock:
            self._counts.compactions += 1
        return True

    def compact(self) -> int:
        """Merge every over-threshold bucket; returns how many were merged."""
        compacted = 0
        for signature_dir, bucket in self._buckets():
            bucket_dir = os.path.join(signature_dir, bucket)
            if len(self._segment_files(bucket_dir)) <= self.compact_segments:
                continue
            # Compaction needs the directory's signature; segments carry it.
            signature = self._dir_signature(bucket_dir)
            if signature is not None and self._compact_bucket(signature, bucket):
                compacted += 1
        return compacted

    def _dir_signature(self, bucket_dir: str) -> Optional[str]:
        for path in self._segment_files(bucket_dir):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                signature = payload.get("signature") if isinstance(payload, dict) else None
                if isinstance(signature, str):
                    return signature
            except (OSError, json.JSONDecodeError):
                continue
        return None

    def _buckets(self) -> List[Tuple[str, str]]:
        found: List[Tuple[str, str]] = []
        try:
            signature_names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        for signature_name in signature_names:
            signature_dir = os.path.join(self.root, signature_name)
            if not os.path.isdir(signature_dir):
                continue
            with contextlib.suppress(OSError):
                for bucket in os.listdir(signature_dir):
                    if os.path.isdir(os.path.join(signature_dir, bucket)):
                        found.append((signature_dir, bucket))
        return found

    def _segments(self) -> List[Tuple[float, int, str]]:
        """Every segment as ``(mtime, size, path)``, oldest first."""
        found: List[Tuple[float, int, str]] = []
        for signature_dir, bucket in self._buckets():
            for path in self._segment_files(os.path.join(signature_dir, bucket)):
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                found.append((status.st_mtime, status.st_size, path))
        return sorted(found)

    def sweep(
        self,
        ttl: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> List[str]:
        """Drop idle segments past the TTL and LRU segments beyond the bound.

        *ttl*/*max_bytes* default to the store's configured values.  Also
        runs background compaction on over-threshold buckets and removes
        stale temp files.  Returns the removed segment paths.  Safe to run
        concurrently with reads and writes in other processes — eviction
        is per-file removal, and a re-stored pair simply reappears.
        """
        ttl = self.ttl if ttl is None else ttl
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        moment = time.time() if now is None else now  # repro: lint-ok[REP003] TTL eviction clock, not stored content
        self.compact()
        segments = self._segments()
        removed: List[str] = []
        if ttl is not None:
            fresh: List[Tuple[float, int, str]] = []
            for mtime, size, path in segments:
                if moment - mtime >= ttl:
                    with contextlib.suppress(OSError):
                        os.remove(path)
                    removed.append(path)
                else:
                    fresh.append((mtime, size, path))
            segments = fresh
        total = sum(size for _, size, _ in segments)
        for mtime, size, path in segments:
            if total <= max_bytes:
                break
            with contextlib.suppress(OSError):
                os.remove(path)
            removed.append(path)
            total -= size
        with self._lock:
            self._counts.evicted_segments += len(removed)
        self._drop_stale_temp_files(moment)
        return removed

    #: Age after which an orphaned ``.tmp.`` file (a crashed writer's) is removed.
    _TEMP_STALE_SECONDS = 3600.0

    def _drop_stale_temp_files(self, now: float) -> None:
        for signature_dir, bucket in self._buckets():
            bucket_dir = os.path.join(signature_dir, bucket)
            with contextlib.suppress(OSError):
                for name in os.listdir(bucket_dir):
                    if ".tmp." not in name:
                        continue
                    path = os.path.join(bucket_dir, name)
                    with contextlib.suppress(OSError):
                        if now - os.path.getmtime(path) >= self._TEMP_STALE_SECONDS:
                            os.remove(path)

    def clear(self) -> int:
        """Drop every segment; returns how many files were removed."""
        segments = self._segments()
        for _, _, path in segments:
            with contextlib.suppress(OSError):
                os.remove(path)
        with self._lock:
            self._counts.evicted_segments += len(segments)
        return len(segments)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """The in-memory hit/miss/put counters (cheap: no disk scan).

        This is what ``GET /healthz`` reports — a load-balancer probe must
        not pay for a full store walk.
        """
        with self._lock:
            return {
                "hits": self._counts.hits,
                "misses": self._counts.misses,
                "puts": self._counts.puts,
                "stores": self._counts.stores,
                "invalid": self._counts.invalid,
                "evicted_segments": self._counts.evicted_segments,
                "compactions": self._counts.compactions,
            }

    def stats(self) -> Dict[str, Any]:
        """Counters plus validated on-disk state (entries, segments, bytes).

        Walks and checksum-verifies every segment (healing damage as it
        goes), so ``invalid`` reflects torn segments discovered now too —
        the observability call behind ``repro-iokast remote cache-stats``.
        """
        entries: set = set()
        segment_count = 0
        total_bytes = 0
        for signature_dir, bucket in self._buckets():
            bucket_dir = os.path.join(signature_dir, bucket)
            for path in self._segment_files(bucket_dir):
                values = self._load_segment(path, None)
                if values is None:
                    continue
                segment_count += 1
                with contextlib.suppress(OSError):
                    total_bytes += os.path.getsize(path)
                entries.update((os.path.basename(signature_dir), pair) for pair in values)
        return {
            "root": self.root,
            "entries": len(entries),
            "segments": segment_count,
            "payload_bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "ttl": self.ttl,
            **self.counters(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"PairStore(root={self.root!r}, segments={len(self._segments())})"
