"""Feature objects produced by the Kast Spectrum Kernel.

The kernel embeds a *pair* of weighted strings into a finite feature space
whose dimensions are the shared maximal substrings (section 3.2).  These
dataclasses make that embedding inspectable: the pipeline, the examples and
several tests look at which substrings were selected and with what weights,
not only at the final scalar kernel value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["Occurrence", "KastFeature", "KastEmbedding"]


@dataclass(frozen=True)
class Occurrence:
    """One appearance of a shared substring inside a particular string.

    Attributes
    ----------
    start:
        Index of the first token of the occurrence.
    length:
        Number of tokens.
    weight:
        Weight of the occurrence: the sum of its token weights, subject to
        the kernel's token filtering rule (tokens below the cut weight may be
        excluded from the sum; see :class:`~repro.core.kast.KastSpectrumKernel`).
    """

    start: int
    length: int
    weight: int

    @property
    def end(self) -> int:
        """Index one past the last token of the occurrence."""
        return self.start + self.length

    def contains(self, other: "Occurrence") -> bool:
        """Whether *other* lies entirely within this occurrence."""
        return self.start <= other.start and other.end <= self.end


@dataclass(frozen=True)
class KastFeature:
    """One embedding dimension: a shared substring and its weights.

    Attributes
    ----------
    literals:
        The token literals of the shared substring (weights are not part of
        the feature identity — the paper allows the weight of a target
        substring to differ between the two strings).
    weight_in_a / weight_in_b:
        The feature values: sum of the qualifying occurrence weights in each
        string.
    occurrences_a / occurrences_b:
        The qualifying occurrences backing those sums.
    """

    literals: Tuple[str, ...]
    weight_in_a: int
    weight_in_b: int
    occurrences_a: Tuple[Occurrence, ...]
    occurrences_b: Tuple[Occurrence, ...]

    @property
    def length(self) -> int:
        """Number of tokens in the shared substring."""
        return len(self.literals)

    @property
    def product(self) -> int:
        """Contribution of this feature to the kernel value."""
        return self.weight_in_a * self.weight_in_b

    def describe(self) -> str:
        """One-line human readable description."""
        text = " ".join(self.literals)
        return f"<{text}> A={self.weight_in_a} B={self.weight_in_b}"


@dataclass(frozen=True)
class KastEmbedding:
    """The full pairwise embedding produced for two strings.

    Attributes
    ----------
    features:
        Selected features, in the order the greedy search accepted them
        (highest weight first).
    cut_weight:
        The cut weight the kernel used.
    kernel_value:
        The raw (unnormalised) kernel value: the inner product of the two
        feature vectors.
    """

    features: Tuple[KastFeature, ...]
    cut_weight: int
    kernel_value: float = field(default=0.0)

    @property
    def vector_a(self) -> List[int]:
        """Feature vector of the first string."""
        return [feature.weight_in_a for feature in self.features]

    @property
    def vector_b(self) -> List[int]:
        """Feature vector of the second string."""
        return [feature.weight_in_b for feature in self.features]

    def __len__(self) -> int:
        return len(self.features)

    def describe(self) -> str:
        """Multi-line human readable description of the embedding."""
        lines = [f"cut_weight={self.cut_weight} features={len(self.features)} kernel={self.kernel_value}"]
        lines.extend(f"  {feature.describe()}" for feature in self.features)
        return "\n".join(lines)
