"""Numeric utilities for kernel matrices: normalisation and PSD repair.

Kernel methods assume the kernel matrix is symmetric positive semidefinite.
The Kast Spectrum Kernel's maximality rule makes it an empirical similarity
rather than a provable Mercer kernel, so — exactly as the paper does in
section 4.1 — matrices with negative eigenvalues are repaired by clipping the
negative eigenvalues to zero and rebuilding the matrix from the remaining
spectrum.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "cosine_normalize",
    "clip_negative_eigenvalues",
    "is_positive_semidefinite",
    "center_kernel_matrix",
    "nearest_psd_projection",
]


def cosine_normalize(matrix: np.ndarray) -> np.ndarray:
    """Normalise a raw Gram matrix so every diagonal entry becomes 1.

    ``K'[i, j] = K[i, j] / sqrt(K[i, i] K[j, j])``; rows/columns whose
    self-similarity is zero are left as zeros.
    """
    matrix = np.asarray(matrix, dtype=float)
    diagonal = np.diag(matrix).copy()
    scale = np.sqrt(np.maximum(diagonal, 0.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        inverse = np.where(scale > 0.0, 1.0 / scale, 0.0)
    normalized = matrix * inverse[:, None] * inverse[None, :]
    # Keep exact ones on the diagonal where the self-similarity was positive.
    np.fill_diagonal(normalized, np.where(diagonal > 0.0, 1.0, 0.0))
    return normalized


def is_positive_semidefinite(matrix: np.ndarray, tolerance: float = 1e-8) -> bool:
    """Whether the symmetric matrix has no eigenvalue below ``-tolerance``."""
    matrix = np.asarray(matrix, dtype=float)
    symmetric = 0.5 * (matrix + matrix.T)
    eigenvalues = np.linalg.eigvalsh(symmetric)
    return bool(eigenvalues.min() >= -tolerance)


def clip_negative_eigenvalues(matrix: np.ndarray, tolerance: float = 0.0) -> np.ndarray:
    """Replace negative eigenvalues by zero and rebuild the matrix.

    This is the repair step named in the paper.  The result is the closest
    positive semidefinite matrix in Frobenius norm among those sharing the
    input's eigenvectors.
    """
    matrix = np.asarray(matrix, dtype=float)
    symmetric = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(symmetric)
    clipped = np.where(eigenvalues < tolerance, 0.0, eigenvalues)
    rebuilt = (eigenvectors * clipped) @ eigenvectors.T
    # Numerical noise can leave tiny asymmetries; symmetrise explicitly.
    return 0.5 * (rebuilt + rebuilt.T)


def nearest_psd_projection(matrix: np.ndarray, iterations: int = 100) -> np.ndarray:
    """Higham-style alternating projection onto the PSD cone with unit diagonal.

    Stronger than :func:`clip_negative_eigenvalues`: it also restores a unit
    diagonal, which is convenient when the repaired matrix should remain a
    normalised similarity.  Used by the ablation benchmark.
    """
    current = np.asarray(matrix, dtype=float).copy()
    for _ in range(max(1, iterations)):
        current = clip_negative_eigenvalues(current)
        np.fill_diagonal(current, 1.0)
        if is_positive_semidefinite(current, tolerance=1e-12):
            break
    return current


def center_kernel_matrix(matrix: np.ndarray) -> np.ndarray:
    """Double-centre a kernel matrix (required by Kernel PCA).

    ``K_c = K - 1_n K - K 1_n + 1_n K 1_n`` with ``1_n`` the constant
    ``1/n`` matrix (Schölkopf et al., 1997).
    """
    matrix = np.asarray(matrix, dtype=float)
    count = matrix.shape[0]
    if count == 0:
        return matrix.copy()
    ones = np.full((count, count), 1.0 / count)
    return matrix - ones @ matrix - matrix @ ones + ones @ matrix @ ones
