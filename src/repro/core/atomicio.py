"""The one blessed atomic text-file write shared by every persistent layer.

Every store in this codebase — job records and payloads
(:mod:`repro.service.jobstore`), matrix-cache entries
(:mod:`repro.core.cachestore`), pair-value segments
(:mod:`repro.core.pairstore`), landmark-model envelopes
(:mod:`repro.streaming.store`), worker metric snapshots
(:mod:`repro.service.worker`) and the CLI's operator-facing output files —
persists JSON text under the same contract:

* **atomic**: the bytes land in a temporary file that is ``os.replace``d
  over the destination, so a crash at any instant leaves either the old
  file or the new file, never a torn one;
* **unique-temp**: the temporary name embeds the pid *and* a fresh
  ``uuid4`` component, so two writers of the same destination — whether
  they are two processes sharing a state dir or two threads of one
  process — never open the same temporary file.  A pid-only suffix is not
  enough: two service jobs finishing the same matrix concurrently would
  share one temp file and the second ``os.replace`` would find it already
  consumed (the PR 5 temp-file collision bug);
* **durable**: the data is flushed and fsynced before the rename, so the
  rename never publishes a name whose bytes are still in flight.

Four independent copies of this function drifted apart once already (the
job store kept a pid-only temp name long after the caches grew the uuid
component).  Keeping the single implementation here — imported by every
layer, with the ``repro lint`` REP001 checker enforcing that no bare
write sneaks back in — is what makes the discipline auditable.
"""

from __future__ import annotations

import os
import uuid

__all__ = ["temp_name_for", "write_text_atomic"]


def temp_name_for(path: str) -> str:
    """A collision-free temporary sibling name for an atomic write to *path*.

    Unique per *call*, not per process: the pid isolates concurrent
    processes, the ``uuid4`` component isolates concurrent threads (and
    re-entrant writes) within one.  The ``.tmp.`` infix is part of the
    contract — recovery and sweep passes recognise orphaned temporaries
    (a crashed writer's leavings) by it and clean them up.
    """
    return f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"


def write_text_atomic(path: str, text: str) -> None:
    """Atomically replace *path* with *text* (UTF-8, fsynced, unique temp).

    On failure the temporary file is best-effort removed so a full disk
    or permission error does not litter the directory with orphans the
    next sweep has to age out.
    """
    temporary = temp_name_for(path)
    try:
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    except BaseException:
        try:
            os.remove(temporary)
        except OSError:
            pass
        raise
