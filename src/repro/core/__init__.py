"""Core contribution: the Kast Spectrum Kernel and kernel-matrix machinery.

* :mod:`repro.core.kast` — the kernel itself;
* :mod:`repro.core.features` — inspectable pairwise embeddings;
* :mod:`repro.core.matrix` — labelled kernel matrices over corpora;
* :mod:`repro.core.engine` — the Gram-matrix evaluation engine (pair
  caching, parallel workers, on-disk persistence);
* :mod:`repro.core.pairstore` — the persistent content-addressed store of
  individual kernel pair values shared across sessions and processes;
* :mod:`repro.core.normalization` — cosine normalisation, centring and the
  negative-eigenvalue repair used in section 4.1 of the paper.
"""

from repro.core.engine import GramEngine, load_matrix, save_matrix
from repro.core.features import KastEmbedding, KastFeature, Occurrence
from repro.core.kast import KAST_BACKENDS, KastSpectrumKernel, kast_kernel_value
from repro.core.matrix import KernelMatrix, compute_kernel_matrix
from repro.core.pairstore import PairStore
from repro.core.normalization import (
    center_kernel_matrix,
    clip_negative_eigenvalues,
    cosine_normalize,
    is_positive_semidefinite,
    nearest_psd_projection,
)

__all__ = [
    "GramEngine",
    "load_matrix",
    "save_matrix",
    "KastEmbedding",
    "KastFeature",
    "Occurrence",
    "KAST_BACKENDS",
    "KastSpectrumKernel",
    "kast_kernel_value",
    "KernelMatrix",
    "compute_kernel_matrix",
    "PairStore",
    "center_kernel_matrix",
    "clip_negative_eigenvalues",
    "cosine_normalize",
    "is_positive_semidefinite",
    "nearest_psd_projection",
]
