"""Persistent, signature-keyed Gram-matrix result cache.

The paper's whole pipeline consumes nothing but the pairwise Gram matrix,
and building it dominates runtime — so a *finished* matrix is the single
most valuable artefact the service can keep.  :class:`MatrixCache` stores
the engine's stamped matrix payloads
(:meth:`~repro.core.engine.GramEngine.matrix_payload`) on disk, keyed by
the value-relevant kernel signature and the corpus content, so that

* resubmitting the *same* ``(spec, corpus)`` matrix job — to a live
  server, a restarted one, or a sibling sharing the state dir — is served
  from the cache bit-identically, with zero kernel evaluations;
* submitting a corpus that *extends* a cached one reuses the cached
  prefix through the engine's incremental-extension path, computing only
  the appended rows/blocks.

Layout
------
One directory per kernel signature (a digest bucket), two files per
entry::

    root/
        <sig-digest>/
            <key>.meta.json      # identity: signature, fingerprints, names,
                                 # labels, normalized flag, payload checksum
            <key>.payload.json   # the stamped matrix payload (pre-repair)

``<key>`` digests the full entry identity, so distinct corpora under one
signature coexist.  Every write is an atomic temp-file + ``os.replace``;
payloads are sha256-stamped into their meta file and verified on load, so
a torn or foreign file is discarded (and removed) instead of served.
Several processes may share one cache directory: racing writers of the
same key write byte-identical content (payloads are deterministic), and
damaged pairs self-heal on the next lookup.

Entries store the **pre-repair** matrix.  PSD repair is deterministic and
cheap next to kernel evaluation, so callers re-apply it after a hit — and
the pre-repair form is exactly what the engine's incremental extension
needs, keeping extended matrices bit-identical to cold computations.

Eviction is LRU (meta-file mtime, touched on every hit) bounded by
``max_entries``, plus an optional TTL; :meth:`sweep` enforces both and is
wired into the server's maintenance loop and ``repro-iokast gc``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.atomicio import write_text_atomic

__all__ = ["CacheLookup", "MatrixCache", "MatrixCacheError", "payload_identity"]

#: Cache entry format version (bump on incompatible layout changes).
_ENTRY_VERSION = 1

#: Default bound on stored entries (one entry is an O(n^2) payload).
_DEFAULT_MAX_ENTRIES = 64


class MatrixCacheError(RuntimeError):
    """Raised for payloads that cannot be cached (missing stamps)."""


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def payload_identity(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The value-relevant identity of a stamped matrix payload.

    Extracts (and validates the presence of) everything a cache key needs:
    the spec-derived ``kernel_signature``, the per-example content
    ``fingerprints``, the example ``names``/``labels`` and the
    ``normalized`` flag.  Payloads written by :meth:`GramEngine.save` /
    :meth:`GramEngine.matrix_payload` always carry all of them; anything
    else is refused — an unstamped payload cannot prove what it describes.
    """
    missing = [key for key in ("kernel_signature", "fingerprints", "names", "labels") if key not in payload]
    if missing:
        raise MatrixCacheError(f"matrix payload is not cacheable: missing stamp(s) {missing}")
    fingerprints = [str(item) for item in payload["fingerprints"]]
    names = [str(item) for item in payload["names"]]
    labels = [item if item is None else str(item) for item in payload["labels"]]
    if not (len(fingerprints) == len(names) == len(labels)):
        raise MatrixCacheError(
            "matrix payload is not cacheable: fingerprints/names/labels lengths disagree"
        )
    return {
        "kernel_signature": str(payload["kernel_signature"]),
        "normalized": bool(payload.get("normalized", True)),
        "fingerprints": fingerprints,
        "names": names,
        "labels": labels,
    }


def _entry_key(identity: Dict[str, Any]) -> str:
    return _digest(json.dumps(identity, sort_keys=True, separators=(",", ":")))


@dataclass(frozen=True)
class CacheLookup:
    """Outcome of one :meth:`MatrixCache.lookup`.

    ``status`` is ``"hit"`` (exact corpus match; ``payload`` is the full
    stamped payload), ``"prefix"`` (``payload`` covers the longest cached
    strict prefix of the requested corpus) or ``"miss"`` (``payload`` is
    ``None``).
    """

    status: str
    payload: Optional[Dict[str, Any]] = None

    @property
    def covered(self) -> int:
        """How many leading examples of the request the entry covers."""
        return len(self.payload["fingerprints"]) if self.payload is not None else 0


_MISS = CacheLookup("miss")


@dataclass
class _Counters:
    hits: int = 0
    prefix_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalid: int = 0


class MatrixCache:
    """Directory-backed store of stamped Gram-matrix payloads.

    Parameters
    ----------
    root:
        Cache directory (created if missing).
    max_entries:
        LRU bound on stored entries; the least-recently-used entries
        beyond it are evicted on :meth:`store` and :meth:`sweep`.
    ttl:
        Optional seconds of idleness (no store, no hit) after which an
        entry is dropped by :meth:`sweep`.  ``None`` keeps entries until
        LRU eviction.
    """

    def __init__(self, root: str, max_entries: int = _DEFAULT_MAX_ENTRIES, ttl: Optional[float] = None) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if ttl is not None and ttl < 0:
            raise ValueError(f"ttl must be >= 0 or None, got {ttl}")
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.max_entries = max_entries
        self.ttl = ttl
        self._counts = _Counters()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _bucket_dir(self, signature: str) -> str:
        return os.path.join(self.root, _digest(signature)[:16])

    @staticmethod
    def _meta_path(bucket: str, key: str) -> str:
        return os.path.join(bucket, f"{key}.meta.json")

    @staticmethod
    def _payload_path(bucket: str, key: str) -> str:
        return os.path.join(bucket, f"{key}.payload.json")

    def _remove_entry(self, bucket: str, key: str) -> None:
        for path in (self._payload_path(bucket, key), self._meta_path(bucket, key)):
            with contextlib.suppress(OSError):
                os.remove(path)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _load_meta(self, bucket: str, key: str) -> Optional[Dict[str, Any]]:
        """The entry's validated meta, or ``None`` (removing damage)."""
        try:
            with open(self._meta_path(bucket, key), "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            if not isinstance(meta, dict) or meta.get("v") != _ENTRY_VERSION:
                raise ValueError(f"unsupported cache entry version {meta.get('v') if isinstance(meta, dict) else meta!r}")
            payload_identity(meta)  # same required stamps as a payload
            if not isinstance(meta.get("payload_sha256"), str):
                raise ValueError("meta carries no payload checksum")
            return meta
        except FileNotFoundError:
            return None
        except (OSError, ValueError, MatrixCacheError, json.JSONDecodeError):
            self._counts.invalid += 1
            self._remove_entry(bucket, key)
            return None

    def _load_payload(self, bucket: str, key: str, meta: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """The entry's checksum-verified payload, or ``None`` (removing damage)."""
        try:
            with open(self._payload_path(bucket, key), "r", encoding="utf-8") as handle:
                text = handle.read()
            if _digest(text) != meta["payload_sha256"]:
                raise ValueError("payload checksum mismatch")
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("payload is not a JSON object")
            return payload
        except (OSError, ValueError, json.JSONDecodeError):
            self._counts.invalid += 1
            self._remove_entry(bucket, key)
            return None

    @staticmethod
    def _prefix_length(meta: Dict[str, Any], fingerprints: Sequence[str], names: Sequence[str], labels: Sequence[Optional[str]]) -> int:
        """Entry size when the entry is a (non-strict) prefix of the request, else -1."""
        size = len(meta["fingerprints"])
        if size > len(fingerprints):
            return -1
        if (
            meta["fingerprints"] == list(fingerprints[:size])
            and meta["names"] == list(names[:size])
            and meta["labels"] == list(labels[:size])
        ):
            return size
        return -1

    def lookup(
        self,
        signature: str,
        normalized: bool,
        fingerprints: Sequence[str],
        names: Sequence[str],
        labels: Sequence[Optional[str]],
    ) -> CacheLookup:
        """Best cached entry for the requested corpus under *signature*.

        An entry whose corpus identity equals the request is an exact
        ``"hit"``; otherwise the *longest* cached strict prefix (matched
        by fingerprint, name and label, never by name alone) is returned
        as ``"prefix"``.  A served entry's meta file is touched, feeding
        the LRU order.
        """
        bucket = self._bucket_dir(signature)
        fingerprints = [str(item) for item in fingerprints]
        names = [str(item) for item in names]
        labels = [item if item is None else str(item) for item in labels]
        best_key: Optional[str] = None
        best_meta: Optional[Dict[str, Any]] = None
        best_size = -1
        try:
            entries = sorted(
                name[: -len(".meta.json")]
                for name in os.listdir(bucket)
                if name.endswith(".meta.json")
            )
        except FileNotFoundError:
            entries = []
        for key in entries:
            meta = self._load_meta(bucket, key)
            if meta is None or meta["kernel_signature"] != signature or meta["normalized"] != normalized:
                continue
            size = self._prefix_length(meta, fingerprints, names, labels)
            if size > best_size:
                best_key, best_meta, best_size = key, meta, size
                if size == len(fingerprints):
                    break
        if best_key is None or best_meta is None or best_size <= 0:
            self._counts.misses += 1
            return _MISS
        payload = self._load_payload(bucket, best_key, best_meta)
        if payload is None:
            self._counts.misses += 1
            return _MISS
        with contextlib.suppress(OSError):
            os.utime(self._meta_path(bucket, best_key))
        if best_size == len(fingerprints):
            self._counts.hits += 1
            return CacheLookup("hit", payload)
        self._counts.prefix_hits += 1
        return CacheLookup("prefix", payload)

    # ------------------------------------------------------------------
    # Store
    # ------------------------------------------------------------------
    def store(self, payload: Dict[str, Any]) -> str:
        """Persist a stamped matrix payload; returns its entry key.

        The payload must carry the engine stamps (see
        :func:`payload_identity`) and should be the *pre-repair* matrix —
        the form the engine's incremental extension consumes.  Writing the
        payload first and its meta second means a crash in between leaves
        an orphan payload no lookup will ever serve.
        """
        identity = payload_identity(payload)
        if not identity["fingerprints"]:
            raise MatrixCacheError("refusing to cache an empty-corpus matrix payload")
        key = _entry_key(identity)
        bucket = self._bucket_dir(identity["kernel_signature"])
        os.makedirs(bucket, exist_ok=True)
        text = json.dumps(payload, sort_keys=True)
        write_text_atomic(self._payload_path(bucket, key), text)
        # repro: lint-ok[REP003] created_at is sidecar meta for TTL sweeps; the hashed payload above is clock-free
        meta = {"v": _ENTRY_VERSION, "payload_sha256": _digest(text), "created_at": time.time(), **identity}
        write_text_atomic(self._meta_path(bucket, key), json.dumps(meta, sort_keys=True))
        self._counts.stores += 1
        self.sweep()
        return key

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _bucket_dirs(self) -> List[str]:
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return []
        return [
            path for name in names if os.path.isdir(path := os.path.join(self.root, name))
        ]

    def _entries(self) -> List[Tuple[float, str, str]]:
        """Every entry as ``(meta mtime, bucket, key)``."""
        found: List[Tuple[float, str, str]] = []
        for bucket in self._bucket_dirs():
            try:
                names = os.listdir(bucket)
            except FileNotFoundError:
                continue
            for name in names:
                if not name.endswith(".meta.json"):
                    continue
                key = name[: -len(".meta.json")]
                try:
                    mtime = os.path.getmtime(os.path.join(bucket, name))
                except OSError:
                    continue
                found.append((mtime, bucket, key))
        return sorted(found)

    def sweep(
        self,
        ttl: Optional[float] = None,
        max_entries: Optional[int] = None,
        now: Optional[float] = None,
    ) -> List[str]:
        """Drop idle entries past the TTL and LRU entries beyond the bound.

        *ttl*/*max_entries* default to the cache's configured values.
        Returns the evicted entry keys.  Safe to run concurrently with
        lookups and stores in other processes — eviction is per-file
        removal, and a concurrently re-stored entry simply reappears.
        """
        ttl = self.ttl if ttl is None else ttl
        max_entries = self.max_entries if max_entries is None else max_entries
        moment = time.time() if now is None else now  # repro: lint-ok[REP003] TTL eviction clock, not cached content
        entries = self._entries()
        evicted: List[str] = []
        if ttl is not None:
            fresh: List[Tuple[float, str, str]] = []
            for mtime, bucket, key in entries:
                if moment - mtime >= ttl:
                    self._remove_entry(bucket, key)
                    evicted.append(key)
                else:
                    fresh.append((mtime, bucket, key))
            entries = fresh
        excess = len(entries) - max_entries
        for mtime, bucket, key in entries[: max(0, excess)]:
            self._remove_entry(bucket, key)
            evicted.append(key)
        self._counts.evictions += len(evicted)
        self._drop_stale_temp_files(moment)
        return evicted

    #: Age after which an orphaned ``.tmp.`` file (a crashed writer's) is removed.
    _TEMP_STALE_SECONDS = 3600.0

    def _drop_stale_temp_files(self, now: float) -> None:
        for bucket in self._bucket_dirs():
            with contextlib.suppress(OSError):
                for name in os.listdir(bucket):
                    if ".tmp." not in name:
                        continue
                    path = os.path.join(bucket, name)
                    with contextlib.suppress(OSError):
                        if now - os.path.getmtime(path) >= self._TEMP_STALE_SECONDS:
                            os.remove(path)

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        entries = self._entries()
        for _, bucket, key in entries:
            self._remove_entry(bucket, key)
        self._counts.evictions += len(entries)
        return len(entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """In-memory counters only — safe on a hot path (no disk walk).

        The per-scrape mirror :mod:`repro.obs` metrics collectors use;
        :meth:`stats` adds the on-disk state at directory-walk cost.
        """
        return {
            "hits": self._counts.hits,
            "prefix_hits": self._counts.prefix_hits,
            "misses": self._counts.misses,
            "stores": self._counts.stores,
            "evictions": self._counts.evictions,
            "invalid": self._counts.invalid,
        }

    def stats(self) -> Dict[str, Any]:
        """Counters plus on-disk state (entry count, payload bytes)."""
        entries = self._entries()
        payload_bytes = 0
        for _, bucket, key in entries:
            with contextlib.suppress(OSError):
                payload_bytes += os.path.getsize(self._payload_path(bucket, key))
        return {
            "root": self.root,
            "entries": len(entries),
            "payload_bytes": payload_bytes,
            "max_entries": self.max_entries,
            "ttl": self.ttl,
            **self.counters(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"MatrixCache(root={self.root!r}, entries={len(self._entries())})"
