"""Kernel (similarity) matrices over corpora of weighted strings.

The learning algorithms of the paper (Kernel PCA and hierarchical
clustering) only ever see the pairwise kernel matrix, never the strings.
:class:`KernelMatrix` bundles that matrix with the string names and labels so
the downstream analysis and the reports can keep track of which row is which
example, and provides the positive-semidefinite repair step the paper
applies ("if the matrices presented negative eigenvalues, they were replaced
by zero and the matrices rebuilt", section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.normalization import clip_negative_eigenvalues, cosine_normalize, is_positive_semidefinite
from repro.kernels.base import StringKernel
from repro.strings.tokens import WeightedString

__all__ = ["KernelMatrix", "compute_kernel_matrix"]


@dataclass
class KernelMatrix:
    """A labelled kernel matrix.

    Attributes
    ----------
    values:
        The ``n x n`` similarity matrix.
    names:
        Name of the example backing each row/column.
    labels:
        Optional class label per example (the paper's A/B/C/D categories).
    kernel_name:
        Name of the kernel that produced the matrix.
    normalized:
        Whether the entries were cosine-normalised.
    """

    values: np.ndarray
    names: Tuple[str, ...]
    labels: Tuple[Optional[str], ...]
    kernel_name: str = "kernel"
    normalized: bool = True

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        if self.values.ndim != 2 or self.values.shape[0] != self.values.shape[1]:
            raise ValueError(f"kernel matrix must be square, got shape {self.values.shape}")
        if len(self.names) != self.values.shape[0]:
            raise ValueError("names length must match matrix size")
        if len(self.labels) != self.values.shape[0]:
            raise ValueError("labels length must match matrix size")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.values.shape[0]

    def similarity(self, i: int, j: int) -> float:
        """Similarity between examples *i* and *j*."""
        return float(self.values[i, j])

    def index_of(self, name: str) -> int:
        """Row index of the example called *name*."""
        try:
            return self.names.index(name)
        except ValueError as exc:
            raise KeyError(f"unknown example name: {name!r}") from exc

    def label_set(self) -> List[str]:
        """Sorted list of distinct labels (``None`` excluded)."""
        return sorted({label for label in self.labels if label is not None})

    def is_symmetric(self, tolerance: float = 1e-9) -> bool:
        """Whether the matrix is symmetric within *tolerance*."""
        return bool(np.allclose(self.values, self.values.T, atol=tolerance))

    def is_positive_semidefinite(self, tolerance: float = 1e-8) -> bool:
        """Whether all eigenvalues are >= -tolerance."""
        return is_positive_semidefinite(self.values, tolerance=tolerance)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def repaired(self, tolerance: float = 0.0) -> "KernelMatrix":
        """Clip negative eigenvalues to zero and rebuild (paper, section 4.1)."""
        repaired_values = clip_negative_eigenvalues(self.values, tolerance=tolerance)
        return KernelMatrix(
            values=repaired_values,
            names=self.names,
            labels=self.labels,
            kernel_name=self.kernel_name,
            normalized=self.normalized,
        )

    def renormalized(self) -> "KernelMatrix":
        """Apply cosine normalisation to the stored values."""
        return KernelMatrix(
            values=cosine_normalize(self.values),
            names=self.names,
            labels=self.labels,
            kernel_name=self.kernel_name,
            normalized=True,
        )

    def submatrix(self, indices: Sequence[int]) -> "KernelMatrix":
        """Restrict the matrix to the examples at *indices*."""
        index_array = np.asarray(list(indices), dtype=int)
        return KernelMatrix(
            values=self.values[np.ix_(index_array, index_array)],
            names=tuple(self.names[i] for i in index_array),
            labels=tuple(self.labels[i] for i in index_array),
            kernel_name=self.kernel_name,
            normalized=self.normalized,
        )

    def to_distance_matrix(self) -> np.ndarray:
        """Convert similarities to kernel-induced squared-root distances.

        Uses ``d(i, j) = sqrt(k(i,i) + k(j,j) - 2 k(i,j))``, the standard
        feature-space distance; for a cosine-normalised matrix this is
        ``sqrt(2 - 2 k(i,j))``.
        """
        diagonal = np.diag(self.values)
        squared = diagonal[:, None] + diagonal[None, :] - 2.0 * self.values
        np.fill_diagonal(squared, 0.0)
        squared = np.maximum(squared, 0.0)
        return np.sqrt(squared)

    # ------------------------------------------------------------------
    # Persistence / reporting helpers
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "kernel": self.kernel_name,
            "normalized": self.normalized,
            "names": list(self.names),
            "labels": list(self.labels),
            "values": self.values.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "KernelMatrix":
        """Rebuild a matrix from :meth:`as_dict` output."""
        return cls(
            values=np.asarray(payload["values"], dtype=float),
            names=tuple(payload["names"]),  # type: ignore[arg-type]
            labels=tuple(payload["labels"]),  # type: ignore[arg-type]
            kernel_name=str(payload.get("kernel", "kernel")),
            normalized=bool(payload.get("normalized", True)),
        )


def compute_kernel_matrix(
    strings: Sequence[WeightedString],
    kernel: StringKernel,
    normalized: bool = True,
    repair: bool = True,
    n_jobs: int = 1,
    engine: Optional["GramEngine"] = None,
    cache_path: Optional[str] = None,
) -> KernelMatrix:
    """Compute the kernel matrix of *strings* under *kernel*.

    The computation goes through a :class:`~repro.core.engine.GramEngine`,
    which provides symmetric pair caching, parallel evaluation and optional
    on-disk persistence.

    Parameters
    ----------
    strings:
        The corpus; names and labels are taken from the strings themselves.
    kernel:
        Any :class:`~repro.kernels.base.StringKernel`.
    normalized:
        Cosine-normalise entries (paper behaviour).
    repair:
        Clip negative eigenvalues to zero and rebuild the matrix, as the
        paper does before handing it to the learning algorithms.
    n_jobs:
        Worker threads for pair evaluation (ignored when *engine* is given).
    engine:
        Optional pre-built engine; passing one lets callers reuse its pair
        and self-value caches across several matrix computations.
    cache_path:
        Optional JSON file backing the matrix: loaded (and incrementally
        extended) when present, written after computation.
    """
    from repro.core.engine import GramEngine  # local import: engine depends on this module

    if engine is None:
        engine = GramEngine(kernel, n_jobs=n_jobs)
    return engine.compute(list(strings), normalized=normalized, repair=repair, cache_path=cache_path)
