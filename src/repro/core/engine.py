"""Fast Gram-matrix evaluation engine.

The paper's downstream analyses (Kernel PCA, hierarchical clustering) only
ever consume the pairwise kernel matrix, and building that matrix dominates
the pipeline cost.  :class:`GramEngine` concentrates everything the matrix
construction can exploit in one place:

* **symmetric pair-value cache** — ``k(a, b)`` is stored under a
  content-based symmetric key, so ``k(b, a)``, repeated strings in a corpus
  and repeated engine calls on overlapping corpora all hit the cache;
* **content-keyed self-value cache** — normalisation denominators are
  computed once per distinct string;
* **chunked parallel scheduling** — the unique pairs are chunked and spread
  over a ``concurrent.futures`` thread pool (``n_jobs`` workers).  The numpy
  kernel backend spends its time in ufunc sweeps that release the GIL, so
  threads give real speedup without any pickling cost;
* **on-disk persistence with incremental extension** — a computed matrix
  can be saved as JSON (via :meth:`KernelMatrix.as_dict`); when the engine
  is later asked for a corpus whose prefix matches a saved matrix, only the
  rows/columns of the newly appended strings are evaluated.

The engine is deterministic: the values it produces are identical for any
``n_jobs`` (workers only ever compute independent pairs; assembly order is
fixed).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.matrix import KernelMatrix
from repro.kernels.base import StringKernel, normalize_kernel_value
from repro.strings.interner import TokenInterner
from repro.strings.tokens import Token, WeightedString

__all__ = [
    "GramEngine",
    "save_matrix",
    "load_matrix",
    "string_fingerprint",
    "plan_index_blocks",
    "block_index_pairs",
    "encode_pair_values",
    "decode_pair_values",
    "ENGINE_EXECUTORS",
]

#: Symmetric content key of an unordered string pair (ordered small-int pair).
PairKey = Tuple[int, int]

#: Worker-pool implementations accepted by :class:`GramEngine`.
ENGINE_EXECUTORS = ("thread", "process")

#: Default number of unique pairs handed to one worker at a time.
_DEFAULT_CHUNK_SIZE = 32

#: Default bound on the symmetric pair-value cache.
_DEFAULT_PAIR_CACHE_SIZE = 262_144


# ----------------------------------------------------------------------
# Process-pool worker plumbing
# ----------------------------------------------------------------------
# The process executor cannot ship live kernels (they hold locks, caches and
# numpy scratch state); instead every worker process rebuilds its kernel
# exactly once from the engine's declarative KernelSpec, which is plain
# picklable data.  The corpus travels the same way: the full string list is
# pickled once per worker through the pool initializer, and work items are
# index-only chunks — without this an n-string corpus would re-pickle each
# string once per pending pair (O(n^2) IPC payload).  Both sides run the
# identical kernel code on the identical inputs, so the values are
# bit-identical to the serial/thread paths.
_WORKER_KERNEL: Optional[StringKernel] = None
_WORKER_STRINGS: Optional[List[WeightedString]] = None


def _process_worker_init(spec: Any, strings: List[WeightedString]) -> None:
    global _WORKER_KERNEL, _WORKER_STRINGS
    from repro.api.spec import kernel_from_spec

    _WORKER_KERNEL = kernel_from_spec(spec)
    _WORKER_STRINGS = strings


def _process_evaluate_chunk(
    chunk: List[Tuple[PairKey, Tuple[int, int]]]
) -> List[Tuple[PairKey, float]]:
    kernel, strings = _WORKER_KERNEL, _WORKER_STRINGS
    assert kernel is not None and strings is not None, "process worker used before initialisation"
    return [(key, float(kernel.value(strings[i], strings[j]))) for key, (i, j) in chunk]


#: id-keyed fingerprint memo (object pinned to keep ids stable), mirroring
#: the engine's object-key memo.  One service request fingerprints the same
#: decoded corpus several times (submission identity, cache lookup, payload
#: stamp); the memo collapses that to one hash pass per string object.
_FINGERPRINT_MEMO: Dict[int, Tuple[WeightedString, str]] = {}
_FINGERPRINT_MEMO_LIMIT = 65_536


def string_fingerprint(string: WeightedString) -> str:
    """Content digest of a weighted string (name and label excluded).

    Used by the on-disk matrix cache to detect corpora whose example
    *names* match a stored matrix but whose token content changed (e.g.
    the same trace corpus re-encoded with different options).
    """
    memo = _FINGERPRINT_MEMO.get(id(string))
    if memo is not None and memo[0] is string:
        return memo[1]
    digest = hashlib.sha1()
    for token in string:
        digest.update(token.literal.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(str(token.weight).encode("ascii"))
        digest.update(b"\x01")
    value = digest.hexdigest()
    if len(_FINGERPRINT_MEMO) > _FINGERPRINT_MEMO_LIMIT:
        _FINGERPRINT_MEMO.clear()
    _FINGERPRINT_MEMO[id(string)] = (string, value)
    return value


def _write_json_atomic(payload: Dict[str, Any], path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    temporary = f"{path}.tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(temporary, path)


def save_matrix(
    matrix: KernelMatrix,
    path: str,
    fingerprints: Optional[Sequence[str]] = None,
    kernel_signature: Optional[str] = None,
) -> None:
    """Persist *matrix* as JSON (atomically, via a temporary file).

    *fingerprints* (one per example, see :func:`string_fingerprint`) and
    *kernel_signature* are stored alongside :meth:`KernelMatrix.as_dict`
    so a later load can prove the cached values still describe the same
    corpus content and kernel configuration.  Prefer
    :meth:`GramEngine.save`, which cannot omit the stamps.
    """
    payload = matrix.as_dict()
    if fingerprints is not None:
        payload["fingerprints"] = list(fingerprints)
    if kernel_signature is not None:
        payload["kernel_signature"] = kernel_signature
    _write_json_atomic(payload, path)


def load_matrix(path: str) -> KernelMatrix:
    """Load a matrix previously written by :func:`save_matrix`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return KernelMatrix.from_dict(payload)


# ----------------------------------------------------------------------
# Block-sharding plan helpers
# ----------------------------------------------------------------------
def plan_index_blocks(count: int, shards: int) -> List[Tuple[int, int]]:
    """Partition ``range(count)`` into at most *shards* contiguous blocks.

    The blocks are as even as possible (sizes differ by at most one) and
    cover the index range exactly once.  They are the unit of the service
    layer's sharded Gram jobs: each unordered block pair becomes one
    independent evaluation task (see :func:`block_index_pairs`), and the
    per-block results merge through :meth:`GramEngine.assemble_gram` into
    the same matrix a monolithic evaluation produces.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, count) or 1
    base, remainder = divmod(count, shards)
    blocks: List[Tuple[int, int]] = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < remainder else 0)
        if stop > start:
            blocks.append((start, stop))
        start = stop
    return blocks


def block_index_pairs(first: Tuple[int, int], second: Tuple[int, int]) -> List[Tuple[int, int]]:
    """The unique ``i < j`` index pairs of one symmetric block pair.

    For a diagonal block (*first* == *second*) these are the strictly
    upper-triangular pairs within the block; for an off-diagonal pair every
    cross pair.  The union over all unordered block pairs of a
    :func:`plan_index_blocks` plan is exactly the strict upper triangle of
    the full matrix — each pair appears in exactly one task.
    """
    if first == second:
        return [(i, j) for i in range(*first) for j in range(i + 1, first[1])]
    (a_start, a_stop), (b_start, b_stop) = sorted((tuple(first), tuple(second)))
    if a_stop > b_start:
        raise ValueError(f"blocks {first} and {second} overlap")
    return [(i, j) for i in range(a_start, a_stop) for j in range(b_start, b_stop)]


def encode_pair_values(raw_by_pair: Dict[Tuple[int, int], float]) -> List[List[float]]:
    """Serialise raw pair values as sorted ``[i, j, value]`` JSON rows.

    The wire/persistence form of one block task's result: Python's JSON
    float representation is the shortest round-tripping one, so values
    decoded by :func:`decode_pair_values` are bit-identical to the floats
    the evaluating worker computed — the property the sharded Gram
    assembly relies on.
    """
    return [
        [int(i), int(j), float(value)]
        for (i, j), value in sorted(raw_by_pair.items())
    ]


def decode_pair_values(rows: Sequence[Sequence[Any]]) -> Dict[Tuple[int, int], float]:
    """Rebuild the ``{(i, j): value}`` mapping of :func:`encode_pair_values`."""
    decoded: Dict[Tuple[int, int], float] = {}
    for position, row in enumerate(rows):
        if isinstance(row, (str, bytes)) or len(row) != 3:
            raise ValueError(f"pair-value row {position} must be [i, j, value], got {row!r}")
        i, j, value = row
        decoded[(int(i), int(j))] = float(value)
    return decoded


class GramEngine:
    """Kernel-matrix evaluation engine wrapping one :class:`StringKernel`.

    Parameters
    ----------
    kernel:
        The kernel to evaluate.  If the kernel exposes an ``interner``
        attribute (the Kast kernel's numpy backend does) and *interner* is
        given, the engine installs it so several engines/kernels can share
        one literal → id space.
    n_jobs:
        Number of worker threads for pair evaluation (1 = serial).
    chunk_size:
        Unique pairs per scheduled work item; chunking amortises the
        executor overhead for cheap pairs.
    pair_cache_size:
        Bound on the symmetric pair-value LRU cache.
    interner:
        Optional shared :class:`~repro.strings.interner.TokenInterner`.
    spec:
        Optional declarative :class:`~repro.api.spec.KernelSpec`.  When
        *kernel* is omitted the spec is instantiated through the registry;
        when both are given the spec is trusted as the kernel's description.
        If neither is given explicitly the engine derives the spec from the
        live kernel (``spec_from_kernel``) when the kernel's class is
        registered.  The spec powers the persistence signature and the
        process executor.
    executor:
        ``"thread"`` (default) — pair chunks are spread over a
        ``ThreadPoolExecutor``; the numpy kernel backend releases the GIL in
        its ufunc sweeps, so this is the right default on single-package
        hosts and in CI.  ``"process"`` — chunks go to a
        ``ProcessPoolExecutor`` whose workers rebuild the kernel from the
        (picklable) spec, sidestepping the GIL for the Python scoring tail
        on multi-core hosts.  Requires a derivable spec.  Values are
        bit-identical across executors and ``n_jobs``.
    """

    def __init__(
        self,
        kernel: Optional[StringKernel] = None,
        n_jobs: int = 1,
        chunk_size: int = _DEFAULT_CHUNK_SIZE,
        pair_cache_size: int = _DEFAULT_PAIR_CACHE_SIZE,
        interner: Optional[TokenInterner] = None,
        spec: Optional[Any] = None,
        executor: str = "thread",
        pair_store: Optional[Any] = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if executor not in ENGINE_EXECUTORS:
            raise ValueError(f"executor must be one of {ENGINE_EXECUTORS}, got {executor!r}")
        if spec is not None:
            # Accept every spec shorthand (KernelSpec, dict, JSON text, kind
            # name) and canonicalize it, whether or not a live kernel is
            # also given — the signature/persistence/process paths all rely
            # on spec being a canonical KernelSpec.
            from repro.api.spec import coerce_spec

            spec = coerce_spec(spec)
        if kernel is None:
            if spec is None:
                raise ValueError("GramEngine requires a kernel or a spec")
            from repro.api.spec import kernel_from_spec

            kernel = kernel_from_spec(spec, interner=interner)
        elif spec is None:
            # Best effort: unregistered kernel classes fall back to the
            # legacy name/cache_signature identity (and cannot use the
            # process executor, which needs a picklable description).  For
            # the process executor the derivation must be exact — mapping a
            # value-overriding subclass to its base kind would make workers
            # silently compute with the base kernel.
            try:
                from repro.api.spec import spec_from_kernel

                spec = spec_from_kernel(kernel, exact=(executor == "process"))
            except Exception:
                spec = None
        if executor == "process" and spec is None:
            raise ValueError(
                "executor='process' requires a faithful kernel spec (the workers rebuild the "
                "kernel from it); pass spec=... explicitly or register the kernel's exact class "
                "with repro.api.register_kernel"
            )
        self.kernel = kernel
        self.spec = spec
        self.executor = executor
        self.n_jobs = n_jobs
        self.chunk_size = chunk_size
        self.pair_cache_size = pair_cache_size
        if interner is not None and hasattr(kernel, "interner"):
            kernel.interner = interner
        self._pair_cache: "OrderedDict[PairKey, float]" = OrderedDict()
        self._self_cache: Dict[int, float] = {}
        # Content → small-int key registry.  Hashing a token tuple touches
        # every token, so it is done once per distinct string *object* (the
        # id-keyed memo pins the object to keep ids stable) and once per
        # distinct *content* (the registry); pair keys are then int pairs.
        self._key_registry: "OrderedDict[Tuple[Token, ...], int]" = OrderedDict()
        self._object_keys: Dict[int, Tuple[WeightedString, int]] = {}
        self._next_key = 0
        self._lock = threading.Lock()
        #: Optional persistent pair-value store
        #: (:class:`~repro.core.pairstore.PairStore`): values missing from
        #: the in-memory caches are fetched by content fingerprint before
        #: any kernel evaluation, and freshly computed values are written
        #: back — the cross-session / cross-process reuse layer.
        self.pair_store = pair_store
        #: Cache observability (used by tests and benchmarks).
        #: ``pair_hits``/``pair_misses`` count the in-memory layer;
        #: ``store_hits``/``store_misses`` the persistent pair store;
        #: ``kernel_evals`` the values actually computed by the kernel —
        #: the number that must stay flat on a fully covered resubmission.
        self.pair_hits = 0
        self.pair_misses = 0
        self.store_hits = 0
        self.store_misses = 0
        self.kernel_evals = 0

    # ------------------------------------------------------------------
    # Single-value entry points (cached)
    # ------------------------------------------------------------------
    #: Bound on the id-keyed object memo (a pure shortcut, safe to drop).
    _OBJECT_MEMO_LIMIT = 65_536

    def _string_key(self, string: WeightedString) -> int:
        memo = self._object_keys.get(id(string))
        if memo is not None and memo[0] is string:
            return memo[1]
        with self._lock:
            tokens = string.tokens
            key = self._key_registry.get(tokens)
            if key is not None:
                self._key_registry.move_to_end(tokens)
            else:
                # Keys are drawn from a monotonic counter and NEVER reused:
                # an in-flight computation may still hold keys handed out
                # before an eviction, and reusing their ints would alias
                # different-content pairs in the caches.
                key = self._next_key
                self._next_key += 1
                self._key_registry[tokens] = key
                # The registry is an LRU bounded by evicting only its
                # oldest entry (plus that key's self value).  Pair-cache
                # entries under a retired key stay valid for objects that
                # still memoise it and are unreachable for new lookups, so
                # they age out of the pair-cache LRU on their own — one
                # string past the bound must not wipe every warm cache.
                while len(self._key_registry) > self.pair_cache_size:
                    _, retired = self._key_registry.popitem(last=False)
                    self._self_cache.pop(retired, None)
            if len(self._object_keys) > self._OBJECT_MEMO_LIMIT:
                self._object_keys.clear()
            self._object_keys[id(string)] = (string, key)
        return key

    def _pair_key(self, a: WeightedString, b: WeightedString) -> PairKey:
        first, second = self._string_key(a), self._string_key(b)
        return (first, second) if first <= second else (second, first)

    @staticmethod
    def _fingerprint_pair(a: WeightedString, b: WeightedString) -> Tuple[str, str]:
        """The canonical (sorted) content-fingerprint pair — the store key."""
        first, second = string_fingerprint(a), string_fingerprint(b)
        return (first, second) if first <= second else (second, first)

    def pair_value(self, a: WeightedString, b: WeightedString) -> float:
        """Raw ``k(a, b)`` through the symmetric content-keyed cache.

        Misses consult the persistent pair store (when attached) before
        falling back to a kernel evaluation; either way the value lands in
        the in-memory cache, and computed values are written back to the
        store.
        """
        key = self._pair_key(a, b)
        with self._lock:
            cached = self._pair_cache.get(key)
            if cached is not None:
                self._pair_cache.move_to_end(key)
                self.pair_hits += 1
                return cached
            self.pair_misses += 1
        fingerprints: Optional[Tuple[str, str]] = None
        if self.pair_store is not None:
            fingerprints = self._fingerprint_pair(a, b)
            found = self.pair_store.get_many(self.kernel_signature(), [fingerprints])
            stored = found.get(fingerprints)
            if stored is not None:
                with self._lock:
                    self.store_hits += 1
                    self._fill_pair_cache({key: stored})
                return stored
            with self._lock:
                self.store_misses += 1
        value = float(self.kernel.value(a, b))
        with self._lock:
            self.kernel_evals += 1
            self._fill_pair_cache({key: value})
        if fingerprints is not None:
            self.pair_store.put_many(self.kernel_signature(), {fingerprints: value})
        return value

    def _fill_pair_cache(self, values: Dict[PairKey, float]) -> None:
        """Insert values into the bounded in-memory LRU (lock held by caller)."""
        for key, value in values.items():
            self._pair_cache[key] = value
            self._pair_cache.move_to_end(key)
        while len(self._pair_cache) > self.pair_cache_size:
            self._pair_cache.popitem(last=False)

    def self_value(self, string: WeightedString) -> float:
        """Cached ``k(a, a)``."""
        return self.self_values([string])[0]

    def prime_self_values(self, strings: Sequence[WeightedString], values: Sequence[float]) -> int:
        """Seed known raw self values into the caches; how many were new.

        The streaming scorer calls this with the landmark self values a
        :class:`~repro.streaming.model.LandmarkModel` carries, so serving
        never re-evaluates ``k(l, l)``.  Values the persistent pair store
        is missing are written through (one batched ``put_many``); values
        it already holds are left alone so priming an unchanged model does
        not grow the store.  Counters are untouched — priming is cache
        *construction*, not traffic.
        """
        string_list = list(strings)
        if len(string_list) != len(values):
            raise ValueError(
                f"got {len(string_list)} strings but {len(values)} self values"
            )
        keys = [self._string_key(string) for string in string_list]
        primed: Dict[int, float] = {}
        with self._lock:
            for key, value in zip(keys, values):
                if key not in self._self_cache:
                    primed[key] = float(value)
            self._self_cache.update(primed)
        if self.pair_store is not None and string_list:
            signature = self.kernel_signature()
            store_keys = {
                string_fingerprint(string): float(value)
                for string, value in zip(string_list, values)
            }
            found = self.pair_store.get_many(
                signature, [(fp, fp) for fp in store_keys]
            )
            missing = {
                (fp, fp): value
                for fp, value in store_keys.items()
                if (fp, fp) not in found
            }
            if missing:
                self.pair_store.put_many(signature, missing)
        return len(primed)

    def evaluate_row(
        self, query: WeightedString, references: Sequence[WeightedString]
    ) -> List[float]:
        """Raw ``k(query, ref)`` for every reference — one batched row.

        The landmark-row seam of the streaming serving path: all cross
        pairs of one query go through :meth:`evaluate_pairs` as a single
        task, so they share its content dedup, both cache layers, and the
        kernel's ``value_row`` batch evaluation (one work item covers the
        whole row).  A cold row against ``m`` novel references costs
        exactly ``m`` kernel evaluations; a covered row costs zero.
        """
        reference_list = list(references)
        strings = [query, *reference_list]
        pairs = [(0, index + 1) for index in range(len(reference_list))]
        values = self.evaluate_pairs(strings, pairs)
        return [values[pair] for pair in pairs]

    def self_values(self, strings: Sequence[WeightedString]) -> List[float]:
        """Cached ``k(a, a)`` for every string, in order (batched).

        Self values flow through the same two cache layers as pair values:
        the in-memory content-keyed cache first, then the persistent pair
        store under the degenerate key ``(fp, fp)`` — so normalisation
        denominators of previously seen traces cost zero kernel
        evaluations, which is what lets a fully covered resubmission skip
        the kernel entirely.  Store misses are batched into one
        ``get_many``/``put_many`` round trip.
        """
        string_list = list(strings)
        keys = [self._string_key(string) for string in string_list]
        sample: Dict[int, WeightedString] = {}
        for key, string in zip(keys, string_list):
            sample.setdefault(key, string)
        values: Dict[int, float] = {}
        with self._lock:
            for key in sample:
                cached = self._self_cache.get(key)
                if cached is not None:
                    values[key] = cached
        missing = [key for key in sample if key not in values]
        fingerprints: Dict[int, str] = {}
        if missing and self.pair_store is not None:
            signature = self.kernel_signature()
            fingerprints = {key: string_fingerprint(sample[key]) for key in missing}
            found = self.pair_store.get_many(
                signature, [(fingerprints[key], fingerprints[key]) for key in missing]
            )
            still: List[int] = []
            with self._lock:
                for key in missing:
                    stored = found.get((fingerprints[key], fingerprints[key]))
                    if stored is None:
                        still.append(key)
                        self.store_misses += 1
                    else:
                        values[key] = stored
                        self._self_cache[key] = stored
                        self.store_hits += 1
            missing = still
        if missing:
            computed = {key: float(self.kernel.self_value(sample[key])) for key in missing}
            with self._lock:
                self.kernel_evals += len(computed)
                self._self_cache.update(computed)
            values.update(computed)
            if self.pair_store is not None:
                self.pair_store.put_many(
                    self.kernel_signature(),
                    {(fingerprints[key], fingerprints[key]): value for key, value in computed.items()},
                )
        return [values[key] for key in keys]

    def normalized_pair_value(self, a: WeightedString, b: WeightedString) -> float:
        """Cosine-normalised ``k(a, b)`` through the caches."""
        return normalize_kernel_value(self.pair_value(a, b), self.self_value(a), self.self_value(b))

    # ------------------------------------------------------------------
    # Gram matrix
    # ------------------------------------------------------------------
    def gram(self, strings: Sequence[WeightedString], normalized: bool = True) -> np.ndarray:
        """The (square, symmetric) Gram matrix over *strings* as an array."""
        string_list = list(strings)
        count = len(string_list)
        pairs = [(i, j) for i in range(count) for j in range(i + 1, count)]
        raw_by_pair = self.evaluate_pairs(string_list, pairs)
        return self.assemble_gram(string_list, raw_by_pair, normalized=normalized)

    def assemble_gram(
        self,
        strings: Sequence[WeightedString],
        raw_by_pair: Dict[Tuple[int, int], float],
        normalized: bool = True,
        base: Optional[KernelMatrix] = None,
    ) -> np.ndarray:
        """Assemble a full Gram array from raw off-diagonal pair values.

        *raw_by_pair* must cover every unordered ``i != j`` index pair once
        (either orientation) — e.g. the union of per-block results from a
        sharded evaluation (:func:`plan_index_blocks` /
        :func:`block_index_pairs`).  Diagonal entries and normalisation
        denominators come from the engine's cached self values, so merging
        separately computed blocks yields bit-identical values to a
        monolithic :meth:`gram` call.

        When *base* is a previously assembled matrix covering a leading
        prefix of *strings* (the caller vouches for the content match —
        e.g. a result-cache entry verified by corpus fingerprints), its
        block is copied verbatim and *raw_by_pair* only needs to cover
        pairs involving an appended index — the assembly arithmetic of the
        engine's incremental extension, so an extended matrix stays
        bit-identical to a cold full computation.
        """
        string_list = list(strings)
        count = len(string_list)
        gram = np.zeros((count, count), dtype=float)
        filled = np.zeros((count, count), dtype=bool)
        covered = 0
        if base is not None:
            if base.normalized != normalized:
                raise ValueError(
                    f"base matrix normalized={base.normalized} does not match normalized={normalized}"
                )
            covered = len(base)
            if covered > count:
                raise ValueError(f"base matrix ({covered}) is larger than the corpus ({count})")
            gram[:covered, :covered] = base.values
            filled[:covered, :covered] = True
        self_values = self.self_values(string_list)
        for (i, j), raw in raw_by_pair.items():
            entry = normalize_kernel_value(raw, self_values[i], self_values[j]) if normalized else raw
            gram[i, j] = entry
            gram[j, i] = entry
            filled[i, j] = True
            filled[j, i] = True
        np.fill_diagonal(filled, True)
        if not filled.all():
            missing = int(np.argwhere(~filled)[0][0]), int(np.argwhere(~filled)[0][1])
            raise ValueError(f"raw_by_pair does not cover pair {missing} of a {count}-string corpus")
        for i in range(covered, count):
            gram[i, i] = 1.0 if normalized and self_values[i] > 0 else self_values[i]
        return gram

    def evaluate_pairs(
        self,
        strings: List[WeightedString],
        index_pairs: Sequence[Tuple[int, int]],
    ) -> Dict[Tuple[int, int], float]:
        """Evaluate the raw kernel for every index pair, deduplicated by content.

        This is the engine's scheduling seam: one call is one *task* — the
        service layer's sharded Gram jobs issue one call per index block and
        merge through :meth:`assemble_gram`.  Content-identical pairs
        (including ``(i, j)`` vs ``(j, i)`` requests and duplicate strings
        in the corpus) map onto one unique evaluation; cached values are
        served first, and the remainder is scheduled over the worker pool.  Kernels exposing a ``value_row`` batch method (the
        Kast kernel's numpy backend does) are driven row by row — one work
        item evaluates one string against all of its pending partners, which
        amortises the per-pair setup cost; other kernels fall back to fixed
        size chunks of single pair evaluations.
        """
        tasks: "OrderedDict[PairKey, List[Tuple[int, int]]]" = OrderedDict()
        for i, j in index_pairs:
            key = self._pair_key(strings[i], strings[j])
            tasks.setdefault(key, []).append((i, j))

        raw_by_key: Dict[PairKey, float] = {}
        pending: List[Tuple[PairKey, Tuple[int, int]]] = []
        with self._lock:
            for key, positions in tasks.items():
                cached = self._pair_cache.get(key)
                if cached is not None:
                    raw_by_key[key] = cached
                    self.pair_hits += 1
                else:
                    pending.append((key, positions[0]))
                    self.pair_misses += 1

        # Second cache layer: fetch in-memory misses from the persistent
        # pair store by content fingerprint (one batched round trip), then
        # compute only what neither layer holds.
        store_keys: Dict[PairKey, Tuple[str, str]] = {}
        if pending and self.pair_store is not None:
            signature = self.kernel_signature()
            for key, (i, j) in pending:
                store_keys[key] = self._fingerprint_pair(strings[i], strings[j])
            found = self.pair_store.get_many(signature, store_keys.values())
            still: List[Tuple[PairKey, Tuple[int, int]]] = []
            fetched: Dict[PairKey, float] = {}
            with self._lock:
                for key, position in pending:
                    stored = found.get(store_keys[key])
                    if stored is None:
                        still.append((key, position))
                        self.store_misses += 1
                    else:
                        raw_by_key[key] = stored
                        fetched[key] = stored
                        self.store_hits += 1
                self._fill_pair_cache(fetched)
            pending = still

        if pending:
            if self.executor == "process" and self.n_jobs > 1 and len(pending) > 1:
                computed = self._evaluate_pending_in_processes(strings, pending)
            else:
                computed = self._evaluate_pending_in_threads(strings, pending)
            with self._lock:
                self.kernel_evals += len(computed)
                self._fill_pair_cache(dict(computed))
                for key, value in computed:
                    raw_by_key[key] = value
            if self.pair_store is not None:
                self.pair_store.put_many(
                    self.kernel_signature(),
                    {store_keys[key]: value for key, value in computed},
                )

        results: Dict[Tuple[int, int], float] = {}
        for key, positions in tasks.items():
            value = raw_by_key[key]
            for position in positions:
                results[position] = value
        return results

    def _evaluate_pending_in_threads(
        self,
        strings: List[WeightedString],
        pending: List[Tuple[PairKey, Tuple[int, int]]],
    ) -> List[Tuple[PairKey, float]]:
        """Serial / thread-pool evaluation (also the ``n_jobs=1`` fast path)."""
        if hasattr(self.kernel, "value_row"):
            work_items: List[List[Tuple[PairKey, Tuple[int, int]]]] = [
                group for _, group in self._group_by_row(pending)
            ]
            evaluate = self._evaluate_row
        else:
            work_items = [
                pending[start : start + self.chunk_size]
                for start in range(0, len(pending), self.chunk_size)
            ]
            evaluate = self._evaluate_chunk
        computed: List[Tuple[PairKey, float]] = []
        if self.n_jobs > 1 and len(work_items) > 1:
            with ThreadPoolExecutor(max_workers=self.n_jobs) as executor:
                for result in executor.map(lambda item: evaluate(strings, item), work_items):
                    computed.extend(result)
        else:
            for item in work_items:
                computed.extend(evaluate(strings, item))
        return computed

    def _evaluate_pending_in_processes(
        self,
        strings: List[WeightedString],
        pending: List[Tuple[PairKey, Tuple[int, int]]],
    ) -> List[Tuple[PairKey, float]]:
        """Process-pool evaluation: workers rebuild the kernel from the spec.

        Workers share nothing with the parent but what the pool initialiser
        hands them: the picklable spec and the string list (pickled once per
        worker); work items are index-only chunks.  The pool is per-call —
        its lifetime matches the string list shipped at initialisation, and
        on this library's workloads the fork cost is dwarfed by the pair
        evaluations the pool exists for.  Values are accumulated in
        submission order, keeping assembly deterministic.
        """
        chunks = [
            pending[start : start + self.chunk_size]
            for start in range(0, len(pending), self.chunk_size)
        ]
        computed: List[Tuple[PairKey, float]] = []
        with ProcessPoolExecutor(
            max_workers=self.n_jobs,
            initializer=_process_worker_init,
            initargs=(self.spec, strings),
        ) as executor:
            for result in executor.map(_process_evaluate_chunk, chunks):
                computed.extend(result)
        return computed

    @staticmethod
    def _group_by_row(
        pending: List[Tuple[PairKey, Tuple[int, int]]]
    ) -> List[Tuple[int, List[Tuple[PairKey, Tuple[int, int]]]]]:
        rows: "OrderedDict[int, List[Tuple[PairKey, Tuple[int, int]]]]" = OrderedDict()
        for key, (i, j) in pending:
            rows.setdefault(i, []).append((key, (i, j)))
        return list(rows.items())

    def _evaluate_row(
        self, strings: List[WeightedString], group: List[Tuple[PairKey, Tuple[int, int]]]
    ) -> List[Tuple[PairKey, float]]:
        row_index = group[0][1][0]
        targets = [strings[j] for _, (_, j) in group]
        values = self.kernel.value_row(strings[row_index], targets)
        return [(key, float(value)) for (key, _), value in zip(group, values)]

    def _evaluate_chunk(
        self, strings: List[WeightedString], chunk: List[Tuple[PairKey, Tuple[int, int]]]
    ) -> List[Tuple[PairKey, float]]:
        return [(key, float(self.kernel.value(strings[i], strings[j]))) for key, (i, j) in chunk]

    # ------------------------------------------------------------------
    # Labelled matrices, persistence and incremental extension
    # ------------------------------------------------------------------
    def kernel_signature(self) -> str:
        """String identifying every kernel option that affects values.

        Derived from the canonical serialization of the engine's declarative
        :class:`~repro.api.spec.KernelSpec` (minus parameters the registry
        marks value-irrelevant, e.g. the Kast backend whose implementations
        are equivalent) — the same description that reconstructs the kernel
        in process workers.  Kernels whose class is not registered fall back
        to the legacy ``cache_signature()`` / name identity.
        """
        if self.spec is not None:
            return self.spec.signature()
        signature = getattr(self.kernel, "cache_signature", None)
        if callable(signature):
            return str(signature())
        return self.kernel.name

    def matrix_payload(self, matrix: KernelMatrix, strings: Sequence[WeightedString]) -> Dict[str, Any]:
        """The stamped JSON-ready persistence payload for *matrix*.

        Single source of truth for the stamped-matrix format: the matrix
        fields (:meth:`KernelMatrix.as_dict`) plus the content fingerprints
        of *strings*, the spec-derived kernel signature and — when the
        engine has a declarative spec — the spec itself, so a payload is
        self-describing.  Used by :meth:`save` and the CLI ``matrix``
        command.
        """
        string_list = list(strings)
        if len(string_list) != len(matrix):
            raise ValueError(
                f"strings/matrix size mismatch: {len(string_list)} strings vs {len(matrix)} rows"
            )
        payload = matrix.as_dict()
        payload["fingerprints"] = [string_fingerprint(string) for string in string_list]
        payload["kernel_signature"] = self.kernel_signature()
        if self.spec is not None:
            payload["kernel_spec"] = self.spec.to_dict()
        return payload

    def save(self, matrix: KernelMatrix, path: str, strings: Sequence[WeightedString]) -> None:
        """Persist *matrix*, always stamping fingerprints and kernel signature.

        Unlike the module-level :func:`save_matrix` (whose metadata arguments
        are optional), the engine method cannot produce an unstamped file:
        every matrix it writes carries the full :meth:`matrix_payload`
        metadata, so stale-cache detection can never be silently skipped.
        """
        _write_json_atomic(self.matrix_payload(matrix, strings), path)

    def matrix(
        self,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        base: Optional[KernelMatrix] = None,
        base_fingerprints: Optional[Sequence[str]] = None,
        base_signature: Optional[str] = None,
    ) -> KernelMatrix:
        """Labelled (pre-repair) kernel matrix over *strings*.

        When *base* is a previously computed matrix whose examples form a
        prefix of *strings* (matched by name, kernel and normalisation
        mode — and, when *base_fingerprints*/*base_signature* are given,
        by string content and full kernel configuration), its block is
        reused verbatim and only pairs involving the appended strings are
        evaluated.
        """
        string_list = list(strings)
        names = tuple(string.name for string in string_list)
        labels = tuple(string.label for string in string_list)
        values: Optional[np.ndarray] = None
        if base is not None and self._base_is_prefix(
            base, string_list, names, normalized, base_fingerprints, base_signature
        ):
            values = self._extend_values(base, string_list, normalized)
        if values is None:
            values = self.gram(string_list, normalized=normalized)
        return KernelMatrix(
            values=values,
            names=names,
            labels=labels,
            kernel_name=self.kernel.name,
            normalized=normalized,
        )

    def _base_is_prefix(
        self,
        base: KernelMatrix,
        strings: List[WeightedString],
        names: Tuple[str, ...],
        normalized: bool,
        base_fingerprints: Optional[Sequence[str]] = None,
        base_signature: Optional[str] = None,
    ) -> bool:
        if not (
            base.kernel_name == self.kernel.name
            and base.normalized == normalized
            and len(base) <= len(names)
            and tuple(base.names) == names[: len(base)]
        ):
            return False
        if base_signature is not None and base_signature != self.kernel_signature():
            return False
        if base_fingerprints is not None:
            if len(base_fingerprints) != len(base):
                return False
            current = [string_fingerprint(string) for string in strings[: len(base)]]
            if list(base_fingerprints) != current:
                return False
        return True

    def _extend_values(
        self,
        base: KernelMatrix,
        strings: List[WeightedString],
        normalized: bool,
    ) -> np.ndarray:
        existing = len(base)
        count = len(strings)
        values = np.zeros((count, count), dtype=float)
        values[:existing, :existing] = base.values
        if existing == count:
            return values
        self_values = self.self_values(strings)
        pairs = [(i, j) for j in range(existing, count) for i in range(j)]
        raw_by_pair = self.evaluate_pairs(strings, pairs)
        for (i, j), raw in raw_by_pair.items():
            entry = normalize_kernel_value(raw, self_values[i], self_values[j]) if normalized else raw
            values[i, j] = entry
            values[j, i] = entry
        for i in range(existing, count):
            values[i, i] = 1.0 if normalized and self_values[i] > 0 else self_values[i]
        return values

    def extend(self, base: KernelMatrix, strings: Sequence[WeightedString], normalized: bool = True) -> KernelMatrix:
        """Extend *base* to cover *strings* (which must start with base's examples)."""
        string_list = list(strings)
        names = tuple(string.name for string in string_list)
        if not self._base_is_prefix(base, string_list, names, normalized):
            raise ValueError(
                "base matrix does not match the corpus prefix "
                f"(kernel {base.kernel_name!r} vs {self.kernel.name!r}, {len(base)} vs {len(names)} examples)"
            )
        return self.matrix(string_list, normalized=normalized, base=base)

    def compute(
        self,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        repair: bool = True,
        cache_path: Optional[str] = None,
    ) -> KernelMatrix:
        """One-call matrix computation with optional on-disk persistence.

        When *cache_path* exists and its stored corpus fingerprints and
        kernel signature match, its matrix seeds the computation (full
        reuse if the corpus is unchanged, incremental extension if strings
        were appended); any mismatch — including same-named strings whose
        content changed — triggers a full recomputation.  The *pre-repair*
        matrix is written back, so later extensions stay exact.
        """
        string_list = list(strings)
        base: Optional[KernelMatrix] = None
        base_fingerprints: Optional[List[str]] = None
        base_signature: Optional[str] = None
        if cache_path is not None and os.path.exists(cache_path):
            try:
                with open(cache_path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                base = KernelMatrix.from_dict(payload)
                stored_fingerprints = payload.get("fingerprints")
                base_fingerprints = (
                    [str(item) for item in stored_fingerprints]
                    if isinstance(stored_fingerprints, list)
                    # Files without fingerprints cannot prove content
                    # identity: an empty list always mismatches a
                    # non-empty corpus prefix, forcing recomputation.
                    else []
                )
                base_signature = str(payload.get("kernel_signature", ""))
            # Any malformed file — wrong JSON shape included — falls back
            # to recomputation, as documented.
            except (ValueError, KeyError, TypeError, AttributeError, OSError, json.JSONDecodeError):
                base = None
                base_fingerprints = None
                base_signature = None

        names = tuple(string.name for string in string_list)
        full_hit = (
            base is not None
            and len(base) == len(string_list)
            and tuple(base.labels) == tuple(string.label for string in string_list)
            and self._base_is_prefix(
                base, string_list, names, normalized, base_fingerprints, base_signature
            )
        )
        if full_hit:
            # Nothing changed: reuse the stored matrix verbatim and skip the
            # rewrite (no point re-serialising an identical O(n^2) file).
            matrix = base
        else:
            matrix = self.matrix(
                string_list,
                normalized=normalized,
                base=base,
                base_fingerprints=base_fingerprints,
                base_signature=base_signature,
            )
            if cache_path is not None:
                self.save(matrix, cache_path, string_list)
        if repair and not matrix.is_positive_semidefinite():
            matrix = matrix.repaired()
        return matrix

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Sizes and hit counters of the engine caches.

        ``pair_hits``/``pair_misses`` describe the in-memory layer,
        ``store_hits``/``store_misses`` the persistent pair store, and
        ``kernel_evals`` counts values the kernel actually computed (pair
        and self values alike) — zero on a fully store-covered corpus.
        """
        with self._lock:
            return {
                "pair_entries": len(self._pair_cache),
                "self_entries": len(self._self_cache),
                "pair_hits": self.pair_hits,
                "pair_misses": self.pair_misses,
                "store_hits": self.store_hits,
                "store_misses": self.store_misses,
                "kernel_evals": self.kernel_evals,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"GramEngine(kernel={self.kernel!r}, n_jobs={self.n_jobs})"
