"""The Kast Spectrum Kernel (the paper's primary contribution).

Given two weighted strings ``A`` and ``B`` and a *cut weight* ``n``, the
kernel (section 3.2):

1. searches for substrings (contiguous runs of tokens, matched by literal —
   weights may differ between the two strings) that are **shared** by ``A``
   and ``B`` and whose weight is **at least the cut weight**;
2. requires each shared substring to be *independent*: "a target substring
   must not be a substring of another matching substring in at least one of
   the original strings" — i.e. at least one of its occurrences must lie
   outside the occurrences of a larger already-selected shared substring;
3. turns every surviving shared substring into one embedding feature whose
   value, per string, is the sum of the weights of **all** its qualifying
   appearances in that string;
4. returns the inner product of the two feature vectors.

Normalisation (Eq. 12 of the paper) divides by
``sqrt(k(A, A) * k(B, B))``.  For a self comparison the single maximal shared
substring is the whole string, so ``k(A, A) = weight_{w>=n}(A)^2`` and the
normalised kernel coincides with the worked example's
``k(A, B) / (weight_{w>=n}(A) * weight_{w>=n}(B))`` form.  Both forms are
available through ``normalization``.

Interpretation choices (documented because the paper under-specifies them;
each is controlled by a constructor flag and exercised by the ablation
benchmark):

* **Occurrence weight** — ``filter_tokens_below_cut=True`` (default) sums
  only the tokens whose individual weight is ``>= cut_weight`` inside an
  occurrence, matching the paper's :math:`weight_{w \\ge n}` notation in the
  worked example.  With ``False`` every token of the occurrence counts.
* **Occurrence qualification** — an occurrence contributes to a feature only
  if its (possibly filtered) weight is ``>= cut_weight``.
* **Search order** — candidates are ranked by their largest per-string
  weight, ties broken by token length then lexicographically; this matches
  the paper's remark that "the algorithm always starts searching from the
  substrings with the highest weight".
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.features import KastEmbedding, KastFeature, Occurrence
from repro.kernels.base import StringKernel
from repro.strings.tokens import WeightedString

__all__ = ["KastSpectrumKernel", "kast_kernel_value"]

_Literals = Tuple[str, ...]


class _PreparedString:
    """Cached per-string data reused across kernel evaluations."""

    __slots__ = (
        "string",
        "literals",
        "weights",
        "occurrence_prefix",
        "raw_prefix",
        "occurrence_total",
        "cut_filtered_total",
    )

    def __init__(self, string: WeightedString, cut_weight: int, filter_tokens: bool) -> None:
        self.string = string
        self.literals: _Literals = tuple(token.literal for token in string)
        self.weights: Tuple[int, ...] = tuple(token.weight for token in string)
        # Prefix sums allow O(1) occurrence-weight queries.
        filtered = [weight if weight >= cut_weight else 0 for weight in self.weights]
        raw = list(self.weights)
        self.occurrence_prefix = self._prefix(filtered if filter_tokens else raw)
        self.raw_prefix = self._prefix(raw)
        #: Total weight under the occurrence-weight rule (used for self-similarity).
        self.occurrence_total = self.occurrence_prefix[-1]
        #: The paper's ``weight_{w>=cut}``: sum of token weights >= cut weight.
        self.cut_filtered_total = sum(filtered)

    @staticmethod
    def _prefix(values: Sequence[int]) -> List[int]:
        prefix = [0]
        for value in values:
            prefix.append(prefix[-1] + value)
        return prefix

    def occurrence_weight(self, start: int, length: int) -> int:
        """Weight of the occurrence ``[start, start+length)`` under the occurrence-weight rule."""
        return self.occurrence_prefix[start + length] - self.occurrence_prefix[start]

    def find_occurrences(self, pattern: _Literals) -> List[int]:
        """Start indices of the non-overlapping appearances of *pattern*.

        Occurrences are counted greedily left to right without overlaps, so a
        self-repetitive pattern (e.g. ``a a a`` against the pattern ``a a``)
        contributes each token to at most one appearance.  This keeps the
        self-similarity equal to the squared string weight, which the
        normalisation relies on.
        """
        length = len(pattern)
        if length == 0 or length > len(self.literals):
            return []
        first = pattern[0]
        starts: List[int] = []
        limit = len(self.literals) - length
        start = 0
        while start <= limit:
            if self.literals[start] == first and self.literals[start : start + length] == pattern:
                starts.append(start)
                start += length
            else:
                start += 1
        return starts


class KastSpectrumKernel(StringKernel):
    """Kernel over weighted strings based on shared maximal weighted substrings.

    Parameters
    ----------
    cut_weight:
        Minimum weight a shared substring (and each counted occurrence) must
        reach.  The paper sweeps ``{2, 4, ..., 1024}`` and recommends small
        values.
    normalization:
        ``"gram"`` (default) — Eq. 12, divide by ``sqrt(k(A,A) k(B,B))``;
        ``"weight"`` — the worked example's
        ``weight_{w>=cut}(A) * weight_{w>=cut}(B)`` form; ``None`` — raw
        values.  This only affects :meth:`normalized_value`;
        :meth:`value` is always raw.
    filter_tokens_below_cut:
        When true, occurrence weights count only tokens with weight >= cut
        weight.  The default (false) follows the paper's definition "the
        weight of a string is the summation of the weights of its tokens":
        an occurrence's weight is the plain sum over its span, and the cut
        weight only decides which substrings/occurrences qualify.  With the
        default the worked example of section 3.2 is reproduced exactly
        (see ``experiment_worked_example``).
    require_independent_occurrence:
        Enforce the maximality condition (default).  Disabling it turns the
        kernel into an "all shared substrings" variant used by the ablation
        benchmark.
    """

    def __init__(
        self,
        cut_weight: int = 2,
        normalization: Optional[str] = "gram",
        filter_tokens_below_cut: bool = False,
        require_independent_occurrence: bool = True,
    ) -> None:
        if cut_weight < 1:
            raise ValueError(f"cut_weight must be >= 1, got {cut_weight}")
        if normalization not in (None, "gram", "weight"):
            raise ValueError(f"normalization must be None, 'gram' or 'weight', got {normalization!r}")
        self.cut_weight = cut_weight
        self.normalization = normalization
        self.filter_tokens_below_cut = filter_tokens_below_cut
        self.require_independent_occurrence = require_independent_occurrence
        self.name = f"kast(cut={cut_weight})"
        self._cache: Dict[int, _PreparedString] = {}

    # ------------------------------------------------------------------
    # StringKernel interface
    # ------------------------------------------------------------------
    def value(self, a: WeightedString, b: WeightedString) -> float:
        """Raw kernel value: inner product of the pairwise feature vectors."""
        return float(self.embed(a, b).kernel_value)

    def self_value(self, a: WeightedString) -> float:
        """``k(a, a)``.

        For a self comparison the maximal shared substring is the whole
        string and it covers every other candidate, so the value reduces to
        the squared string weight (under the occurrence-weight rule).  When
        every token weight reaches the cut weight this coincides with
        ``weight_{w>=cut}(a) ** 2``, which is what makes Eq. 12 and the
        worked example's weight-product normalisation agree in the paper.
        """
        prepared = self._prepare(a)
        return float(prepared.occurrence_total**2)

    def normalized_value(self, a: WeightedString, b: WeightedString) -> float:
        """Normalised kernel value according to ``self.normalization``."""
        raw = self.value(a, b)
        if self.normalization is None:
            return raw
        if self.normalization == "weight":
            denominator = float(self.string_weight(a) * self.string_weight(b))
        else:
            denominator = math.sqrt(self.self_value(a) * self.self_value(b))
        if denominator <= 0.0:
            return 0.0
        return raw / denominator

    # ------------------------------------------------------------------
    # Embedding construction
    # ------------------------------------------------------------------
    def embed(self, a: WeightedString, b: WeightedString) -> KastEmbedding:
        """Build the full pairwise embedding (features, vectors, kernel value)."""
        prepared_a = self._prepare(a)
        prepared_b = self._prepare(b)
        candidates = self._candidate_substrings(prepared_a, prepared_b)
        features = self._select_features(prepared_a, prepared_b, candidates)
        kernel_value = float(sum(feature.product for feature in features))
        return KastEmbedding(features=tuple(features), cut_weight=self.cut_weight, kernel_value=kernel_value)

    def string_weight(self, string: WeightedString) -> int:
        """The paper's ``weight_{w>=cut}(string)``: sum of token weights >= the cut weight."""
        return self._prepare(string).cut_filtered_total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prepare(self, string: WeightedString) -> _PreparedString:
        key = id(string)
        prepared = self._cache.get(key)
        if prepared is None or prepared.string is not string:
            prepared = _PreparedString(string, self.cut_weight, self.filter_tokens_below_cut)
            self._cache[key] = prepared
            # Bound the cache so long-running sweeps do not grow without limit.
            if len(self._cache) > 4096:
                self._cache.clear()
                self._cache[key] = prepared
        return prepared

    def _candidate_substrings(self, a: _PreparedString, b: _PreparedString) -> List[_Literals]:
        """Distinct literal sequences appearing as maximal matches between *a* and *b*.

        A maximal match is a pair of positions ``(i, j)`` with
        ``a.literals[i:i+L] == b.literals[j:j+L]`` that cannot be extended to
        the left or to the right.  Every feature the kernel can select occurs
        somewhere as (a prefix of) such a match; shorter shared substrings
        that only ever appear inside longer ones are excluded by the
        independence rule anyway.
        """
        la, lb = a.literals, b.literals
        m, n = len(la), len(lb)
        if m == 0 or n == 0:
            return []
        # extension[j] = length of the common extension starting at (i, j),
        # computed row by row from the bottom to keep memory at O(n).
        next_row = [0] * (n + 1)
        candidates: Dict[_Literals, None] = {}
        rows: List[List[int]] = [[0] * (n + 1) for _ in range(m + 1)]
        for i in range(m - 1, -1, -1):
            row = rows[i]
            next_row = rows[i + 1]
            for j in range(n - 1, -1, -1):
                if la[i] == lb[j]:
                    row[j] = next_row[j + 1] + 1
        for i in range(m):
            row = rows[i]
            for j in range(n):
                length = row[j]
                if length == 0:
                    continue
                # Left-maximality: no identical predecessor pair.
                if i > 0 and j > 0 and la[i - 1] == lb[j - 1]:
                    continue
                candidates[la[i : i + length]] = None
        return list(candidates)

    def _qualifying_occurrences(self, prepared: _PreparedString, pattern: _Literals) -> List[Occurrence]:
        occurrences: List[Occurrence] = []
        for start in prepared.find_occurrences(pattern):
            weight = prepared.occurrence_weight(start, len(pattern))
            if weight >= self.cut_weight:
                occurrences.append(Occurrence(start=start, length=len(pattern), weight=weight))
        return occurrences

    def _select_features(
        self,
        a: _PreparedString,
        b: _PreparedString,
        candidates: List[_Literals],
    ) -> List[KastFeature]:
        scored: List[Tuple[int, int, _Literals, List[Occurrence], List[Occurrence]]] = []
        for pattern in candidates:
            occurrences_a = self._qualifying_occurrences(a, pattern)
            if not occurrences_a:
                continue
            occurrences_b = self._qualifying_occurrences(b, pattern)
            if not occurrences_b:
                continue
            weight_a = sum(occurrence.weight for occurrence in occurrences_a)
            weight_b = sum(occurrence.weight for occurrence in occurrences_b)
            scored.append((max(weight_a, weight_b), len(pattern), pattern, occurrences_a, occurrences_b))
        # Highest weight first, longer first on ties, then lexicographic for determinism.
        scored.sort(key=lambda item: (-item[0], -item[1], item[2]))

        features: List[KastFeature] = []
        covered_a: List[Occurrence] = []
        covered_b: List[Occurrence] = []
        for _, _, pattern, occurrences_a, occurrences_b in scored:
            if self.require_independent_occurrence and features:
                independent = any(
                    not self._is_covered(occurrence, covered_a) for occurrence in occurrences_a
                ) or any(not self._is_covered(occurrence, covered_b) for occurrence in occurrences_b)
                if not independent:
                    continue
            features.append(
                KastFeature(
                    literals=pattern,
                    weight_in_a=sum(occurrence.weight for occurrence in occurrences_a),
                    weight_in_b=sum(occurrence.weight for occurrence in occurrences_b),
                    occurrences_a=tuple(occurrences_a),
                    occurrences_b=tuple(occurrences_b),
                )
            )
            covered_a.extend(occurrences_a)
            covered_b.extend(occurrences_b)
        return features

    @staticmethod
    def _is_covered(occurrence: Occurrence, covered: List[Occurrence]) -> bool:
        return any(region.contains(occurrence) for region in covered)


def kast_kernel_value(
    a: WeightedString,
    b: WeightedString,
    cut_weight: int = 2,
    normalized: bool = True,
) -> float:
    """One-call evaluation of the Kast Spectrum Kernel on two strings."""
    kernel = KastSpectrumKernel(cut_weight=cut_weight)
    if normalized:
        return kernel.normalized_value(a, b)
    return kernel.value(a, b)
