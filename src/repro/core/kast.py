"""The Kast Spectrum Kernel (the paper's primary contribution).

Given two weighted strings ``A`` and ``B`` and a *cut weight* ``n``, the
kernel (section 3.2):

1. searches for substrings (contiguous runs of tokens, matched by literal —
   weights may differ between the two strings) that are **shared** by ``A``
   and ``B`` and whose weight is **at least the cut weight**;
2. requires each shared substring to be *independent*: "a target substring
   must not be a substring of another matching substring in at least one of
   the original strings" — i.e. at least one of its occurrences must lie
   outside the occurrences of a larger already-selected shared substring;
3. turns every surviving shared substring into one embedding feature whose
   value, per string, is the sum of the weights of **all** its qualifying
   appearances in that string;
4. returns the inner product of the two feature vectors.

Normalisation (Eq. 12 of the paper) divides by
``sqrt(k(A, A) * k(B, B))``.  For a self comparison the single maximal shared
substring is the whole string, so ``k(A, A) = weight_{w>=n}(A)^2`` and the
normalised kernel coincides with the worked example's
``k(A, B) / (weight_{w>=n}(A) * weight_{w>=n}(B))`` form.  Both forms are
available through ``normalization``.

Interpretation choices (documented because the paper under-specifies them;
each is controlled by a constructor flag and exercised by the ablation
benchmark):

* **Occurrence weight** — ``filter_tokens_below_cut=True`` (default) sums
  only the tokens whose individual weight is ``>= cut_weight`` inside an
  occurrence, matching the paper's :math:`weight_{w \\ge n}` notation in the
  worked example.  With ``False`` every token of the occurrence counts.
* **Occurrence qualification** — an occurrence contributes to a feature only
  if its (possibly filtered) weight is ``>= cut_weight``.
* **Search order** — candidates are ranked by their largest per-string
  weight, ties broken by token length then lexicographically; this matches
  the paper's remark that "the algorithm always starts searching from the
  substrings with the highest weight".

Backends
--------
The candidate search (all maximal literal matches between two strings) and
the occurrence scan dominate the kernel cost.  Two interchangeable
implementations exist, selected with ``backend``:

* ``"numpy"`` (default) — token literals are interned to small integers
  through a shared :class:`~repro.strings.interner.TokenInterner`; the
  match-length dynamic programme becomes a vectorised row-pair accumulation
  over the integer equality matrix and the occurrence search becomes an
  array scan.
* ``"python"`` — the original pure-Python loops, kept as a dependency-free
  reference; the equivalence of the two backends over randomised corpora is
  asserted by the test suite.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import KastEmbedding, KastFeature, Occurrence
from repro.kernels.base import StringKernel, normalize_kernel_value
from repro.strings.interner import TokenInterner
from repro.strings.tokens import Token, WeightedString

__all__ = ["KastSpectrumKernel", "kast_kernel_value", "KAST_BACKENDS"]

_Literals = Tuple[str, ...]

#: One occurrence as a plain ``(start, end, weight)`` triple (the search uses
#: these instead of :class:`Occurrence` objects; dataclasses are only built
#: for the inspectable embedding).
_OccTriple = Tuple[int, int, int]

#: (max per-string weight, pattern length, pattern, occurrences in A,
#:  occurrences in B, summed weight in A, summed weight in B)
_ScoredCandidate = Tuple[int, int, _Literals, List[_OccTriple], List[_OccTriple], int, int]

#: Candidate-search implementations accepted by :class:`KastSpectrumKernel`.
KAST_BACKENDS = ("numpy", "python")

#: Default bound on the per-kernel prepared-string LRU cache.
_DEFAULT_PREPARED_CACHE_SIZE = 4096


class _PreparedString:
    """Cached per-string data reused across kernel evaluations."""

    __slots__ = (
        "string",
        "literals",
        "weights",
        "ids",
        "interner",
        "occurrence_prefix",
        "raw_prefix",
        "occurrence_total",
        "cut_filtered_total",
    )

    def __init__(
        self,
        string: WeightedString,
        cut_weight: int,
        filter_tokens: bool,
        interner: Optional[TokenInterner] = None,
    ) -> None:
        self.string = string
        self.literals: _Literals = tuple(token.literal for token in string)
        self.weights: Tuple[int, ...] = tuple(token.weight for token in string)
        #: Integer-encoded literals (numpy backend); ``None`` for the python backend.
        self.interner = interner
        self.ids: Optional[np.ndarray] = interner.encode(self.literals) if interner is not None else None
        # Prefix sums allow O(1) occurrence-weight queries.
        filtered = [weight if weight >= cut_weight else 0 for weight in self.weights]
        raw = list(self.weights)
        self.occurrence_prefix = self._prefix(filtered if filter_tokens else raw)
        self.raw_prefix = self._prefix(raw)
        #: Total weight under the occurrence-weight rule (used for self-similarity).
        self.occurrence_total = self.occurrence_prefix[-1]
        #: The paper's ``weight_{w>=cut}``: sum of token weights >= cut weight.
        self.cut_filtered_total = sum(filtered)

    @staticmethod
    def _prefix(values: Sequence[int]) -> List[int]:
        prefix = [0]
        for value in values:
            prefix.append(prefix[-1] + value)
        return prefix

    def occurrence_weight(self, start: int, length: int) -> int:
        """Weight of the occurrence ``[start, start+length)`` under the occurrence-weight rule."""
        return self.occurrence_prefix[start + length] - self.occurrence_prefix[start]

    def find_occurrences(self, pattern: _Literals) -> List[int]:
        """Start indices of the non-overlapping appearances of *pattern*.

        Occurrences are counted greedily left to right without overlaps, so a
        self-repetitive pattern (e.g. ``a a a`` against the pattern ``a a``)
        contributes each token to at most one appearance.  This keeps the
        self-similarity equal to the squared string weight, which the
        normalisation relies on.
        """
        if self.ids is not None:
            return self._find_occurrences_numpy(pattern)
        return self._find_occurrences_python(pattern)

    def _find_occurrences_python(self, pattern: _Literals) -> List[int]:
        length = len(pattern)
        if length == 0 or length > len(self.literals):
            return []
        first = pattern[0]
        starts: List[int] = []
        limit = len(self.literals) - length
        start = 0
        while start <= limit:
            if self.literals[start] == first and self.literals[start : start + length] == pattern:
                starts.append(start)
                start += length
            else:
                start += 1
        return starts

    def _find_occurrences_numpy(self, pattern: _Literals) -> List[int]:
        length = len(pattern)
        text = self.ids
        if length == 0 or length > text.shape[0]:
            return []
        pattern_ids = self.interner.encode(pattern)
        window = text.shape[0] - length + 1
        valid = text[:window] == pattern_ids[0]
        for offset in range(1, length):
            if not valid.any():
                return []
            valid &= text[offset : offset + window] == pattern_ids[offset]
        return _greedy_non_overlapping(np.flatnonzero(valid).tolist(), length)


def _greedy_non_overlapping(positions: List[int], length: int) -> List[int]:
    """Left-to-right greedy selection of non-overlapping match positions."""
    starts: List[int] = []
    next_free = 0
    for position in positions:
        if position >= next_free:
            starts.append(position)
            next_free = position + length
    return starts


class KastSpectrumKernel(StringKernel):
    """Kernel over weighted strings based on shared maximal weighted substrings.

    Parameters
    ----------
    cut_weight:
        Minimum weight a shared substring (and each counted occurrence) must
        reach.  The paper sweeps ``{2, 4, ..., 1024}`` and recommends small
        values.
    normalization:
        ``"gram"`` (default) — Eq. 12, divide by ``sqrt(k(A,A) k(B,B))``;
        ``"weight"`` — the worked example's
        ``weight_{w>=cut}(A) * weight_{w>=cut}(B)`` form; ``None`` — raw
        values.  This only affects :meth:`normalized_value`;
        :meth:`value` is always raw.
    filter_tokens_below_cut:
        When true, occurrence weights count only tokens with weight >= cut
        weight.  The default (false) follows the paper's definition "the
        weight of a string is the summation of the weights of its tokens":
        an occurrence's weight is the plain sum over its span, and the cut
        weight only decides which substrings/occurrences qualify.  With the
        default the worked example of section 3.2 is reproduced exactly
        (see ``experiment_worked_example``).
    require_independent_occurrence:
        Enforce the maximality condition (default).  Disabling it turns the
        kernel into an "all shared substrings" variant used by the ablation
        benchmark.
    backend:
        ``"numpy"`` (default) for the vectorised integer match search,
        ``"python"`` for the pure-Python reference implementation.  Both
        produce identical values.
    interner:
        Optional shared :class:`~repro.strings.interner.TokenInterner`
        (numpy backend only).  Sharing one interner across kernels — e.g.
        across the cut-weight sweep — reuses the literal → id space so
        prepared encodings stay comparable and cheap.
    max_cache_size:
        Bound on the prepared-string LRU cache (least recently used entries
        are evicted one at a time; the working set of a long sweep survives).
    """

    def __init__(
        self,
        cut_weight: int = 2,
        normalization: Optional[str] = "gram",
        filter_tokens_below_cut: bool = False,
        require_independent_occurrence: bool = True,
        backend: str = "numpy",
        interner: Optional[TokenInterner] = None,
        max_cache_size: int = _DEFAULT_PREPARED_CACHE_SIZE,
    ) -> None:
        if cut_weight < 1:
            raise ValueError(f"cut_weight must be >= 1, got {cut_weight}")
        if normalization not in (None, "gram", "weight"):
            raise ValueError(f"normalization must be None, 'gram' or 'weight', got {normalization!r}")
        if backend not in KAST_BACKENDS:
            raise ValueError(f"backend must be one of {KAST_BACKENDS}, got {backend!r}")
        if max_cache_size < 1:
            raise ValueError(f"max_cache_size must be >= 1, got {max_cache_size}")
        self.cut_weight = cut_weight
        self.normalization = normalization
        self.filter_tokens_below_cut = filter_tokens_below_cut
        self.require_independent_occurrence = require_independent_occurrence
        self.backend = backend
        self.max_cache_size = max_cache_size
        self.name = f"kast(cut={cut_weight})"
        self._interner: Optional[TokenInterner] = None
        self._cache: "OrderedDict[Tuple[Token, ...], _PreparedString]" = OrderedDict()
        self._cache_lock = threading.Lock()
        if backend == "numpy":
            self._interner = interner if interner is not None else TokenInterner()

    # ------------------------------------------------------------------
    # Shared-state accessors
    # ------------------------------------------------------------------
    @property
    def interner(self) -> Optional[TokenInterner]:
        """The token interner backing the numpy backend (``None`` for python)."""
        return self._interner

    @interner.setter
    def interner(self, interner: Optional[TokenInterner]) -> None:
        if self.backend != "numpy":
            # The python backend never uses integer encodings; installing an
            # interner here would silently flip it onto the numpy search
            # path (prepared strings dispatch on `ids is not None`).
            return
        if interner is self._interner:
            return
        with self._cache_lock:
            # Cached encodings belong to the old id space; drop them.
            self._cache.clear()
            self._interner = interner

    def cache_signature(self) -> str:
        """Identity of every option that affects kernel *values*.

        Used by the engine's on-disk matrix cache.  The backend is
        deliberately excluded: both implementations produce identical
        values, so matrices cached by one are valid for the other.
        """
        return (
            f"kast(cut={self.cut_weight},filter={self.filter_tokens_below_cut},"
            f"independent={self.require_independent_occurrence})"
        )

    # ------------------------------------------------------------------
    # StringKernel interface
    # ------------------------------------------------------------------
    def value(self, a: WeightedString, b: WeightedString) -> float:
        """Raw kernel value: inner product of the pairwise feature vectors.

        Fast path: the full embedding (with ``Occurrence``/``KastFeature``
        objects) is only materialised by :meth:`embed`; the scalar value is
        accumulated directly from the selected candidates.
        """
        selected = self._selected_candidates(self._prepare(a), self._prepare(b))
        return float(sum(entry[5] * entry[6] for entry in selected))

    def value_row(self, a: WeightedString, others: Sequence[WeightedString]) -> List[float]:
        """Raw kernel values ``[k(a, b) for b in others]``, batched.

        The numpy backend concatenates every target (separated by a sentinel
        id no real token can take) and computes *one* match-length table of
        *a* against the whole corpus row, so the per-pair cost reduces to a
        handful of small slices and gathers.  The sentinel breaks every
        diagonal run at segment boundaries, which makes the per-segment view
        of the table exactly equal to the pairwise table — the
        :class:`~repro.core.engine.GramEngine` uses this as its fast path and
        the backend-equivalence tests pin it against :meth:`value`.
        """
        others = list(others)
        if not others:
            return []
        prepared_a = self._prepare(a)
        prepared_others = [self._prepare(b) for b in others]
        if prepared_a.ids is None or prepared_a.ids.shape[0] == 0:
            return [self.value(a, b) for b in others]
        separator = np.asarray([-1], dtype=np.int32)
        chunks: List[np.ndarray] = []
        starts: List[int] = []
        cursor = 0
        for prepared in prepared_others:
            ids = prepared.ids if prepared.ids is not None else np.zeros(0, dtype=np.int32)
            chunks.append(separator)
            chunks.append(ids)
            cursor += 1
            starts.append(cursor)
            cursor += ids.shape[0]
        corpus = np.concatenate(chunks)
        lengths = self._match_lengths(prepared_a.ids, corpus)
        span_rows, span_cols, span_lengths = self._maximal_span_arrays(lengths)
        order = np.argsort(span_cols, kind="stable")
        span_rows = span_rows[order]
        span_cols = span_cols[order]
        span_lengths = span_lengths[order]
        lower = np.searchsorted(span_cols, np.asarray(starts)).tolist()
        ends = [start + (p.ids.shape[0] if p.ids is not None else 0) for start, p in zip(starts, prepared_others)]
        upper = np.searchsorted(span_cols, np.asarray(ends)).tolist()
        occurrences_a_for = self._occurrences_a_provider(prepared_a, lengths)

        values: List[float] = []
        for index, prepared_b in enumerate(prepared_others):
            if prepared_b.ids is None:
                values.append(self.value(a, others[index]))
                continue
            size = prepared_b.ids.shape[0]
            low, high = lower[index], upper[index]
            if size == 0 or low == high:
                values.append(0.0)
                continue
            start = starts[index]
            segment = lengths[:, start : start + size]
            scored = self._score_spans(
                prepared_a,
                prepared_b,
                segment,
                span_rows[low:high],
                span_cols[low:high] - start,
                span_lengths[low:high],
                occurrences_a_for,
                column_offset=start,
            )
            selected = self._greedy_select(prepared_a, prepared_b, scored)
            values.append(float(sum(entry[5] * entry[6] for entry in selected)))
        return values

    def self_value(self, a: WeightedString) -> float:
        """``k(a, a)``.

        For a self comparison the maximal shared substring is the whole
        string and it covers every other candidate, so the value reduces to
        the squared string weight (under the occurrence-weight rule).  When
        every token weight reaches the cut weight this coincides with
        ``weight_{w>=cut}(a) ** 2``, which is what makes Eq. 12 and the
        worked example's weight-product normalisation agree in the paper.
        """
        prepared = self._prepare(a)
        return float(prepared.occurrence_total**2)

    def normalized_value(self, a: WeightedString, b: WeightedString) -> float:
        """Normalised kernel value according to ``self.normalization``."""
        raw = self.value(a, b)
        if self.normalization is None:
            return raw
        if self.normalization == "weight":
            denominator = float(self.string_weight(a) * self.string_weight(b))
            if denominator <= 0.0:
                return 0.0
            return raw / denominator
        return normalize_kernel_value(raw, self.self_value(a), self.self_value(b))

    # ------------------------------------------------------------------
    # Embedding construction
    # ------------------------------------------------------------------
    def embed(self, a: WeightedString, b: WeightedString) -> KastEmbedding:
        """Build the full pairwise embedding (features, vectors, kernel value)."""
        prepared_a = self._prepare(a)
        prepared_b = self._prepare(b)
        selected = self._selected_candidates(prepared_a, prepared_b)
        features: List[KastFeature] = []
        for _, _, pattern, occurrences_a, occurrences_b, weight_a, weight_b in selected:
            features.append(
                KastFeature(
                    literals=pattern,
                    weight_in_a=weight_a,
                    weight_in_b=weight_b,
                    occurrences_a=tuple(
                        Occurrence(start=start, length=end - start, weight=weight)
                        for start, end, weight in occurrences_a
                    ),
                    occurrences_b=tuple(
                        Occurrence(start=start, length=end - start, weight=weight)
                        for start, end, weight in occurrences_b
                    ),
                )
            )
        kernel_value = float(sum(feature.product for feature in features))
        return KastEmbedding(features=tuple(features), cut_weight=self.cut_weight, kernel_value=kernel_value)

    def _selected_candidates(self, prepared_a: _PreparedString, prepared_b: _PreparedString) -> List["_ScoredCandidate"]:
        """Scored candidates surviving the greedy independence selection."""
        if prepared_a.ids is not None and prepared_b.ids is not None:
            scored = self._scored_candidates_numpy(prepared_a, prepared_b)
        else:
            candidates = self._candidate_substrings_python(prepared_a, prepared_b)
            scored = self._scored_candidates(prepared_a, prepared_b, candidates)
        return self._greedy_select(prepared_a, prepared_b, scored)

    def string_weight(self, string: WeightedString) -> int:
        """The paper's ``weight_{w>=cut}(string)``: sum of token weights >= the cut weight."""
        return self._prepare(string).cut_filtered_total

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _prepare(self, string: WeightedString) -> _PreparedString:
        """Prepared-string lookup with a bounded, content-keyed LRU cache.

        The key is the token tuple, so equal-content strings (however they
        were constructed) share one preparation, and a string rebuilt from a
        file round-trips to a cache hit — unlike the previous ``id()`` keying
        which broke both properties.
        """
        key = string.tokens
        with self._cache_lock:
            prepared = self._cache.get(key)
            if prepared is not None:
                self._cache.move_to_end(key)
                return prepared
        # Build outside the lock: preparation is the expensive part.
        prepared = _PreparedString(string, self.cut_weight, self.filter_tokens_below_cut, self._interner)
        with self._cache_lock:
            existing = self._cache.get(key)
            if existing is not None:
                self._cache.move_to_end(key)
                return existing
            self._cache[key] = prepared
            while len(self._cache) > self.max_cache_size:
                self._cache.popitem(last=False)
        return prepared

    # ------------------------------------------------------------------
    # numpy backend
    # ------------------------------------------------------------------
    @staticmethod
    def _match_lengths(ids_a: np.ndarray, ids_b: np.ndarray) -> np.ndarray:
        """Match-length table between two id arrays, fully vectorised.

        ``lengths[i, j]`` is the length of the common extension starting at
        ``(i, j)`` — the run of True cells down the diagonal of the equality
        matrix.  Diagonals are mapped to columns of a skewed buffer
        (``column = j + m - 1 - i``), where the run lengths of consecutive
        True cells fall out of the classic cumsum/accumulated-reset identity
        in a constant number of whole-array NumPy passes (no Python loop over
        rows or diagonals).
        """
        m, n = ids_a.shape[0], ids_b.shape[0]
        eq = np.equal.outer(ids_a, ids_b)
        width = n + m
        # Cell (i, j) lives at skew[i, j + m - 1 - i]: flat offset
        # i*(width-1) + (m-1) + j, i.e. a strided view with row stride
        # width-1 — no index arrays needed for the scatter.
        skew = np.zeros(m * width, dtype=bool)
        scatter = np.lib.stride_tricks.as_strided(
            skew[m - 1 :], shape=(m, n), strides=(width - 1, 1)
        )
        scatter[:] = eq
        reversed_rows = skew.reshape(m, width)[::-1]
        # Run lengths are bounded by m, so 16-bit arithmetic is safe for any
        # realistic string and halves the memory traffic of the three
        # full-array passes.
        run_dtype = np.int16 if m < np.iinfo(np.int16).max else np.int32
        cumulative = np.cumsum(reversed_rows, axis=0, dtype=run_dtype)
        resets = np.where(reversed_rows, 0, cumulative)
        np.maximum.accumulate(resets, axis=0, out=resets)
        runs_ending = cumulative - resets
        # runs_ending[r] holds runs *ending* at row r of the reversed buffer,
        # i.e. runs *starting* at row m-1-r of the original orientation:
        # lengths[i, j] = runs_ending[m-1-i, j + m-1-i], again a (negative
        # row stride) strided view.
        itemsize = runs_ending.itemsize
        flat = runs_ending.reshape(-1)
        gather = np.lib.stride_tricks.as_strided(
            flat[(m - 1) * (width + 1) :],
            shape=(m, n),
            strides=(-(width + 1) * itemsize, itemsize),
        )
        return np.ascontiguousarray(gather)

    @staticmethod
    def _maximal_span_arrays(lengths: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Left-maximal match spans as ``(rows, cols, lengths)`` arrays.

        A span is left-maximal when its diagonal predecessor pair is
        unequal (``lengths[i-1, j-1] == 0``); right-maximality is implied
        by taking the full match length.
        """
        mask = lengths > 0
        maximal = mask.copy()
        maximal[1:, 1:] &= ~mask[:-1, :-1]
        rows, cols = np.nonzero(maximal)
        return rows, cols, lengths[rows, cols]

    def _scored_candidates_numpy(self, a: _PreparedString, b: _PreparedString) -> List["_ScoredCandidate"]:
        """Score every candidate using only the pairwise match-length table.

        For a span ``(i, j, L)`` the occurrences of the pattern in *b* are
        the columns ``{q : lengths[i, q] >= L}`` and — because ``j`` is one
        of them, so ``b[j:j+L]`` *is* the pattern — the occurrences in *a*
        are the rows ``{p : lengths[p, j] >= L}``.  No string is ever
        rescanned, and the (overlapping) match positions of *all* candidates
        are extracted with two matrix comparisons and two ``nonzero`` calls.
        """
        if a.ids.shape[0] == 0 or b.ids.shape[0] == 0:
            return []
        lengths = self._match_lengths(a.ids, b.ids)
        span_rows, span_cols, span_lengths = self._maximal_span_arrays(lengths)
        if span_rows.shape[0] == 0:
            return []
        occurrences_a_for = self._occurrences_a_provider(a, lengths)
        return self._score_spans(a, b, lengths, span_rows, span_cols, span_lengths, occurrences_a_for)

    def _occurrences_a_provider(self, a: _PreparedString, lengths: np.ndarray):
        """Memoised qualifying-occurrence lookup for patterns of *a*.

        ``lengths[p, column] >= length`` marks every (overlapping) occurrence
        start of the pattern in *a* — ``target[column:column+length]`` *is*
        the pattern — and the result only depends on ``(row, length)``, so in
        the batched row path one cache entry serves every target segment the
        span appears in.
        """
        cache: Dict[Tuple[int, int], Tuple[List[_OccTriple], int]] = {}
        prefix = a.occurrence_prefix
        cut = self.cut_weight

        def get(row: int, length: int, column: int) -> Tuple[List[_OccTriple], int]:
            key = (row, length)
            got = cache.get(key)
            if got is None:
                occurrences: List[_OccTriple] = []
                total = 0
                next_free = 0
                for start in np.flatnonzero(lengths[:, column] >= length).tolist():
                    if start < next_free:
                        continue
                    next_free = start + length
                    weight = prefix[next_free] - prefix[start]
                    if weight >= cut:
                        occurrences.append((start, next_free, weight))
                        total += weight
                got = (occurrences, total)
                cache[key] = got
            return got

        return get

    def _score_spans(
        self,
        a: _PreparedString,
        b: _PreparedString,
        lengths_b: np.ndarray,
        span_rows: np.ndarray,
        span_cols: np.ndarray,
        span_lengths: np.ndarray,
        occurrences_a_for,
        column_offset: int = 0,
    ) -> List["_ScoredCandidate"]:
        """Score maximal spans against one target string.

        ``lengths_b[p, q]`` is the match length of ``a`` at row ``p`` against
        ``b`` at column ``q`` (a view into a larger corpus table in the
        batched row path, with ``column_offset`` mapping local columns back
        to the full table).  For a span ``(i, j, L)`` the occurrences of its
        pattern in *b* are ``{q : lengths_b[i, q] >= L}`` and the occurrences
        in *a* come from *occurrences_a_for* — because ``b[j:j+L]`` *is* the
        pattern.  Neither string is ever rescanned.
        """
        # Content deduplication.  Most spans are single tokens, whose pattern
        # is fully determined by the token id — dedupe those with one
        # np.unique and no match scan.  A longer span's pattern is fully
        # determined by (first occurrence in b, length) — b[q:q+L] is one
        # fixed token sequence — so the (argmax, length) pair deduplicates
        # the rest without materialising literal tuples.
        singles = span_lengths == 1
        single_idx = np.flatnonzero(singles)
        multi_idx = np.flatnonzero(~singles)
        keep: List[int] = []
        if single_idx.shape[0]:
            _, first = np.unique(a.ids[span_rows[single_idx]], return_index=True)
            keep.extend(single_idx[first].tolist())
        if multi_idx.shape[0]:
            multi_rows = span_rows[multi_idx]
            multi_lengths = span_lengths[multi_idx]
            first_b = (lengths_b[multi_rows] >= multi_lengths[:, None]).argmax(axis=1).tolist()
            multi_list = multi_idx.tolist()
            seen = set()
            for position, key in enumerate(zip(first_b, multi_lengths.tolist())):
                if key not in seen:
                    seen.add(key)
                    keep.append(multi_list[position])
        keep_arr = np.asarray(keep, dtype=np.int64)
        kept_rows = span_rows[keep_arr]
        kept_lengths = span_lengths[keep_arr]
        kept_b = lengths_b[kept_rows] >= kept_lengths[:, None]
        candidate_b, position_b = np.nonzero(kept_b)
        bounds_b = np.searchsorted(candidate_b, np.arange(keep_arr.shape[0] + 1)).tolist()
        position_b = position_b.tolist()

        la = a.literals
        prefix_b = b.occurrence_prefix
        cut = self.cut_weight
        rows_list = kept_rows.tolist()
        cols_list = span_cols[keep_arr].tolist()
        length_list = kept_lengths.tolist()
        scored: List[_ScoredCandidate] = []
        # Per candidate: greedy left-to-right non-overlap selection over the
        # (overlapping) match starts, then the occurrence-weight filter —
        # identical semantics to find_occurrences + the cut-weight check.
        for index, length in enumerate(length_list):
            occurrences_b: List[_OccTriple] = []
            weight_b = 0
            next_free = 0
            for start in position_b[bounds_b[index] : bounds_b[index + 1]]:
                if start < next_free:
                    continue
                next_free = start + length
                weight = prefix_b[next_free] - prefix_b[start]
                if weight >= cut:
                    occurrences_b.append((start, next_free, weight))
                    weight_b += weight
            if not occurrences_b:
                continue
            row = rows_list[index]
            occurrences_a, weight_a = occurrences_a_for(row, length, cols_list[index] + column_offset)
            if not occurrences_a:
                continue
            pattern = la[row : row + length]
            scored.append(
                (max(weight_a, weight_b), length, pattern, occurrences_a, occurrences_b, weight_a, weight_b)
            )
        return scored

    @staticmethod
    def _candidate_substrings_python(a: _PreparedString, b: _PreparedString) -> List[_Literals]:
        """Pure-Python reference: match-length DP over two rolling rows.

        ``row[j]`` is the length of the common extension starting at
        ``(i, j)``; rows are computed bottom-up and only the current and next
        row are retained, so memory stays at O(n).  Left-maximality is
        checked directly on the literals, which is what lets the full table
        be dropped.
        """
        la, lb = a.literals, b.literals
        m, n = len(la), len(lb)
        if m == 0 or n == 0:
            return []
        candidates: Dict[_Literals, None] = {}
        next_row = [0] * (n + 1)
        for i in range(m - 1, -1, -1):
            row = [0] * (n + 1)
            first = la[i]
            for j in range(n - 1, -1, -1):
                if first == lb[j]:
                    length = next_row[j + 1] + 1
                    row[j] = length
                    # Left-maximality: no identical predecessor pair.
                    if i == 0 or j == 0 or la[i - 1] != lb[j - 1]:
                        candidates[la[i : i + length]] = None
            next_row = row
        return list(candidates)

    def _qualifying_occurrences(self, prepared: _PreparedString, pattern: _Literals) -> List[_OccTriple]:
        length = len(pattern)
        occurrences: List[_OccTriple] = []
        for start in prepared.find_occurrences(pattern):
            weight = prepared.occurrence_weight(start, length)
            if weight >= self.cut_weight:
                occurrences.append((start, start + length, weight))
        return occurrences

    def _scored_candidates(
        self,
        a: _PreparedString,
        b: _PreparedString,
        candidates: List[_Literals],
    ) -> List["_ScoredCandidate"]:
        """Score candidates by rescanning both strings (python backend)."""
        scored: List[_ScoredCandidate] = []
        for pattern in candidates:
            occurrences_a = self._qualifying_occurrences(a, pattern)
            if not occurrences_a:
                continue
            occurrences_b = self._qualifying_occurrences(b, pattern)
            if not occurrences_b:
                continue
            weight_a = sum(occurrence[2] for occurrence in occurrences_a)
            weight_b = sum(occurrence[2] for occurrence in occurrences_b)
            scored.append(
                (max(weight_a, weight_b), len(pattern), pattern, occurrences_a, occurrences_b, weight_a, weight_b)
            )
        return scored

    def _greedy_select(
        self,
        a: _PreparedString,
        b: _PreparedString,
        scored: List["_ScoredCandidate"],
    ) -> List["_ScoredCandidate"]:
        """Greedy acceptance under the independence rule; returns kept entries.

        Highest weight first, longer first on ties, then lexicographic for
        determinism (this also makes the result independent of the candidate
        enumeration order, so both backends agree exactly).
        """
        scored.sort(key=lambda item: (-item[0], -item[1], item[2]))
        kept: List[_ScoredCandidate] = []
        require = self.require_independent_occurrence
        # Coverage index per string: reach[p] = max end over accepted
        # occurrence intervals starting at or before p.  reach is
        # non-decreasing in p, so an occurrence [s, e) lies inside an
        # accepted interval iff reach[s] >= e, and updates can stop as soon
        # as the stored value dominates the new end.
        reach_a = [-1] * (len(a.literals) + 1)
        reach_b = [-1] * (len(b.literals) + 1)
        size_a = len(reach_a)
        size_b = len(reach_b)
        for entry in scored:
            occurrences_a, occurrences_b = entry[3], entry[4]
            if require and kept:
                independent = False
                for start, end, _ in occurrences_a:
                    if reach_a[start] < end:
                        independent = True
                        break
                if not independent:
                    for start, end, _ in occurrences_b:
                        if reach_b[start] < end:
                            independent = True
                            break
                    if not independent:
                        continue
            kept.append(entry)
            for start, end, _ in occurrences_a:
                position = start
                while position < size_a and reach_a[position] < end:
                    reach_a[position] = end
                    position += 1
            for start, end, _ in occurrences_b:
                position = start
                while position < size_b and reach_b[position] < end:
                    reach_b[position] = end
                    position += 1
        return kept


def kast_kernel_value(
    a: WeightedString,
    b: WeightedString,
    cut_weight: int = 2,
    normalized: bool = True,
) -> float:
    """One-call evaluation of the Kast Spectrum Kernel on two strings."""
    kernel = KastSpectrumKernel(cut_weight=cut_weight)
    if normalized:
        return kernel.normalized_value(a, b)
    return kernel.value(a, b)
