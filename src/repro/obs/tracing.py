"""Trace/span identifiers and the ambient trace context.

A *trace* follows one logical request (e.g. a distributed matrix job) across
every process that touches it: the client mints a ``trace_id`` (or the server
does on its behalf), the server stamps it into the job record and every
derived block record, and workers restore it around task execution.  Each
unit of work gets its own ``span_id`` under the shared trace, so JSON log
lines from server and N workers can be joined back into one request story.

The context is a ``contextvars.ContextVar`` so it is safe under both the
session thread pool and the ``ThreadingHTTPServer`` request threads.
"""

from __future__ import annotations

import contextlib
import contextvars
import re
import uuid
from typing import Iterator, Optional, Tuple

__all__ = [
    "TRACE_ID_PATTERN",
    "current_span_id",
    "current_trace_id",
    "new_span_id",
    "new_trace_id",
    "trace_context",
    "valid_trace_id",
]

# Conservative charset: ids appear in log lines, JSON, and Prometheus label
# values, so reject anything that could smuggle structure into those sinks.
TRACE_ID_PATTERN = r"^[A-Za-z0-9._-]{1,64}$"
_TRACE_ID_RE = re.compile(TRACE_ID_PATTERN)

_context: contextvars.ContextVar[Optional[Tuple[str, Optional[str]]]] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def new_trace_id() -> str:
    """A fresh 32-hex-char trace identifier."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span identifier."""
    return uuid.uuid4().hex[:16]


def valid_trace_id(value: str) -> bool:
    """True when *value* is safe to carry as a trace or span id."""
    return isinstance(value, str) and bool(_TRACE_ID_RE.match(value))


def current_trace_id() -> Optional[str]:
    state = _context.get()
    return state[0] if state else None


def current_span_id() -> Optional[str]:
    state = _context.get()
    return state[1] if state else None


@contextlib.contextmanager
def trace_context(trace_id: Optional[str], span_id: Optional[str] = None) -> Iterator[None]:
    """Bind the ambient trace for the duration of the block.

    A ``None`` *trace_id* leaves the surrounding context untouched, so call
    sites can wrap unconditionally and pre-tracing records stay unaffected.
    """
    if trace_id is None:
        yield
        return
    token = _context.set((trace_id, span_id))
    try:
        yield
    finally:
        _context.reset(token)
