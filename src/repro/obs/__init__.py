"""Observability primitives: metrics, tracing, and structured logging.

The package is deliberately dependency-free (stdlib only) so every layer of
the stack — engine, caches, service, workers, benchmarks — can instrument
itself without pulling in a metrics client.  The three modules are:

``repro.obs.metrics``
    A process-local, thread-safe :class:`MetricsRegistry` with counters,
    gauges, and fixed-bucket histograms, a Prometheus text-exposition
    renderer, and JSON-able snapshots that can be merged across processes
    (the server aggregates worker snapshots under an ``origin`` label).

``repro.obs.tracing``
    ``trace_id``/``span_id`` generation and a ``contextvars``-based
    ambient trace context that survives thread-pool hops within a task.

``repro.obs.logging``
    A structured JSON log formatter that stamps the ambient trace context
    onto every record, plus :func:`configure_logging` honouring the
    ``REPRO_LOG_JSON`` / ``REPRO_LOG_LEVEL`` environment toggles.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    render_fleet,
)
from repro.obs.tracing import (
    TRACE_ID_PATTERN,
    current_span_id,
    current_trace_id,
    new_span_id,
    new_trace_id,
    trace_context,
    valid_trace_id,
)
from repro.obs.logging import JSONLogFormatter, configure_logging

__all__ = [
    "DEFAULT_BUCKETS",
    "JSONLogFormatter",
    "MetricsRegistry",
    "TRACE_ID_PATTERN",
    "configure_logging",
    "current_span_id",
    "current_trace_id",
    "new_span_id",
    "new_trace_id",
    "render_fleet",
    "trace_context",
    "valid_trace_id",
]
