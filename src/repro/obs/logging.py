"""Structured JSON logging with ambient trace propagation.

:class:`JSONLogFormatter` renders every record as one JSON object per line
carrying the timestamp, level, logger, message, and — when present — the
``trace_id``/``span_id`` from either the record itself (``extra=``) or the
ambient :mod:`repro.obs.tracing` context.  One distributed job can then be
reconstructed by grepping its trace id across the server's and every
worker's log stream.

:func:`configure_logging` is the single entry point used by the ``serve``
and ``worker`` CLI commands.  It honours two environment toggles:

- ``REPRO_LOG_JSON`` — truthy values (``1``/``true``/``yes``/``on``) switch
  the handler to JSON lines; anything else keeps the human format.
- ``REPRO_LOG_LEVEL`` — standard level name, default ``INFO``.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Any, Optional, TextIO

from repro.obs.tracing import current_span_id, current_trace_id

__all__ = ["JSONLogFormatter", "configure_logging"]

_TRUTHY = {"1", "true", "yes", "on"}

# Extra record attributes worth forwarding into the JSON document when a
# call site supplies them via ``extra=``.
_FORWARDED_ATTRS = ("job_id", "worker_id", "method", "kind", "event", "model")


class JSONLogFormatter(logging.Formatter):
    """One JSON object per log line, trace-aware."""

    def format(self, record: logging.LogRecord) -> str:
        entry: dict = {
            "ts": round(record.created, 6),
            "time": time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(record.created))
            + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = getattr(record, "trace_id", None) or current_trace_id()
        span_id = getattr(record, "span_id", None) or current_span_id()
        if trace_id:
            entry["trace_id"] = trace_id
        if span_id:
            entry["span_id"] = span_id
        for attr in _FORWARDED_ATTRS:
            value = getattr(record, attr, None)
            if value is not None:
                entry[attr] = value
        if record.exc_info:
            entry["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True, default=str)


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _TRUTHY


def configure_logging(
    *,
    json_lines: Optional[bool] = None,
    level: Optional[Any] = None,
    stream: Optional[TextIO] = None,
) -> logging.Handler:
    """Install (or replace) the repro log handler on the root logger.

    Defaults come from the environment: ``REPRO_LOG_JSON`` selects the JSON
    formatter, ``REPRO_LOG_LEVEL`` the threshold.  Re-invocation replaces
    the previously installed handler instead of stacking duplicates, so the
    function is safe to call from tests and long-lived CLIs alike.
    """
    if json_lines is None:
        json_lines = _env_truthy("REPRO_LOG_JSON")
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "INFO").upper()

    root = logging.getLogger()
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)

    handler = logging.StreamHandler(stream or sys.stderr)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    if json_lines:
        handler.setFormatter(JSONLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    root.addHandler(handler)
    try:
        root.setLevel(level)
    except (ValueError, TypeError):
        root.setLevel(logging.INFO)
    return handler
