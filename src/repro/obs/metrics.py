"""A process-local, thread-safe metrics registry with Prometheus output.

Three metric kinds are supported, mirroring the Prometheus data model:

- **counter** — monotonically increasing float (``.inc()``); rendered with
  the conventional ``_total`` suffix expected in the metric name itself.
- **gauge** — a value that can go up and down (``.set()`` / ``.inc()``).
- **histogram** — fixed cumulative buckets plus ``_sum``/``_count``
  (``.observe()``); bucket boundaries are frozen at first registration.

Handles are cheap: ``registry.counter("repro_requests_total", method="x")``
returns a bound child for that label set, and repeated calls with the same
labels return the same underlying cell.  All mutation happens under a
single registry lock — the hot-path cost is one lock acquire plus a dict
update, which is far below the cost of the kernel evaluations being timed.

Cross-process aggregation works through JSON snapshots: a worker persists
``registry.snapshot()`` into the shared state dir and the server renders
its own registry plus every worker snapshot through :func:`render_fleet`,
labelling each sample with its ``origin`` process.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["DEFAULT_BUCKETS", "MetricsRegistry", "render_fleet"]

# Latency buckets (seconds) spanning sub-millisecond cache hits up to
# multi-minute distributed Gram jobs.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name: {name!r}")
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(items: Iterable[Tuple[str, str]]) -> str:
    rendered = ",".join(f'{key}="{_escape_label_value(value)}"' for key, value in items)
    return f"{{{rendered}}}" if rendered else ""


class _Counter:
    """A bound counter child for one label set."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "_Family", key: LabelKey) -> None:
        self._family = family
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self._family.add(self._key, amount)

    def set_total(self, value: float) -> None:
        """Overwrite the running total (mirroring an external counter)."""
        self._family.set(self._key, float(value))

    @property
    def value(self) -> float:
        return self._family.get(self._key)


class _Gauge:
    """A bound gauge child for one label set."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "_Family", key: LabelKey) -> None:
        self._family = family
        self._key = key

    def set(self, value: float) -> None:
        self._family.set(self._key, float(value))

    def inc(self, amount: float = 1.0) -> None:
        self._family.add(self._key, amount)

    def dec(self, amount: float = 1.0) -> None:
        self._family.add(self._key, -amount)

    @property
    def value(self) -> float:
        return self._family.get(self._key)


class _HistogramState:
    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class _Histogram:
    """A bound histogram child for one label set."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "_Family", key: LabelKey) -> None:
        self._family = family
        self._key = key

    def observe(self, value: float) -> None:
        self._family.observe(self._key, float(value))

    def time(self) -> "_Timer":
        return _Timer(self)

    @property
    def sum(self) -> float:
        state = self._family.histogram_state(self._key)
        return state.total

    @property
    def count(self) -> int:
        state = self._family.histogram_state(self._key)
        return state.count


class _Timer:
    """Context manager observing elapsed wall-clock into a histogram."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: _Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class _Family:
    """One metric family: name, type, help, and per-label-set samples."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        lock: threading.RLock,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self._lock = lock
        self.buckets: Optional[Tuple[float, ...]] = None
        if kind == "histogram":
            bounds = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
            if list(bounds) != sorted(set(bounds)):
                raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
            self.buckets = bounds
        self._samples: Dict[LabelKey, Any] = {}

    def _cell(self, key: LabelKey) -> Any:
        sample = self._samples.get(key)
        if sample is None:
            if self.kind == "histogram":
                sample = _HistogramState(len(self.buckets or ()))
            else:
                sample = 0.0
            self._samples[key] = sample
        return sample

    def add(self, key: LabelKey, amount: float) -> None:
        with self._lock:
            self._samples[key] = self._cell(key) + amount

    def set(self, key: LabelKey, value: float) -> None:
        with self._lock:
            self._cell(key)
            self._samples[key] = value

    def get(self, key: LabelKey) -> float:
        with self._lock:
            return float(self._samples.get(key, 0.0))

    def observe(self, key: LabelKey, value: float) -> None:
        with self._lock:
            state = self._cell(key)
            assert self.buckets is not None
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state.counts[index] += 1
                    break
            state.total += value
            state.count += 1

    def histogram_state(self, key: LabelKey) -> _HistogramState:
        with self._lock:
            return self._cell(key)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            family: Dict[str, Any] = {
                "name": self.name,
                "type": self.kind,
                "help": self.help,
            }
            samples: List[Dict[str, Any]] = []
            if self.kind == "histogram":
                family["buckets"] = list(self.buckets or ())
                for key, state in self._samples.items():
                    cumulative: List[int] = []
                    running = 0
                    for count in state.counts:
                        running += count
                        cumulative.append(running)
                    samples.append(
                        {
                            "labels": dict(key),
                            "bucket_counts": cumulative,
                            "sum": state.total,
                            "count": state.count,
                        }
                    )
            else:
                for key, value in self._samples.items():
                    samples.append({"labels": dict(key), "value": float(value)})
            family["samples"] = samples
            return family


class MetricsRegistry:
    """Thread-safe registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, self._lock, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, not {kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "", **labels: str) -> _Counter:
        family = self._family(name, "counter", help_text)
        return _Counter(family, _label_key(labels))

    def gauge(self, name: str, help_text: str = "", **labels: str) -> _Gauge:
        family = self._family(name, "gauge", help_text)
        return _Gauge(family, _label_key(labels))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> _Histogram:
        family = self._family(name, "histogram", help_text, buckets)
        return _Histogram(family, _label_key(labels))

    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run before every snapshot/render.

        Collectors pull point-in-time values (queue depth, cache counters)
        into gauges/counters so the registry reflects live state without
        instrumenting every read path.
        """
        with self._lock:
            self._collectors.append(collector)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector(self)
            except Exception:  # noqa: BLE001 - scrapes must never take the service down
                pass

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-able list of metric families (collectors included)."""
        self._run_collectors()
        with self._lock:
            families = list(self._families.values())
        return [family.snapshot() for family in sorted(families, key=lambda f: f.name)]

    def render(self) -> str:
        """This process's metrics in Prometheus text exposition format."""
        return render_fleet([{"origin": None, "families": self.snapshot()}])


def _merge_family(target: Dict[str, Any], family: Dict[str, Any], origin: Optional[str]) -> None:
    for sample in family.get("samples", ()):
        labels = dict(sample.get("labels", {}))
        if origin is not None:
            labels["origin"] = origin
        entry = dict(sample)
        entry["labels"] = labels
        target.setdefault("samples", []).append(entry)


def render_fleet(sources: Sequence[Dict[str, Any]]) -> str:
    """Render snapshots from several processes as one Prometheus page.

    Each *source* is ``{"origin": str | None, "families": snapshot()}``.
    When ``origin`` is set, every sample from that source gains an
    ``origin`` label so fleet-wide sums stay per-process attributable.
    Families with the same name are merged; the first source's type/help
    metadata wins (all processes run the same code, so they agree).
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for source in sources:
        origin = source.get("origin")
        for family in source.get("families", ()):
            # Worker snapshots arrive from disk; ignore anything malformed
            # rather than letting one damaged file break the whole scrape.
            if not isinstance(family, dict):
                continue
            name = family.get("name")
            if not isinstance(name, str) or not _NAME_RE.match(name):
                continue
            target = merged.get(name)
            if target is None:
                target = {
                    "name": name,
                    "type": family.get("type", "gauge"),
                    "help": family.get("help", ""),
                    "buckets": family.get("buckets"),
                    "samples": [],
                }
                merged[name] = target
            _merge_family(target, family, origin)

    lines: List[str] = []
    for name in sorted(merged):
        family = merged[name]
        kind = family["type"]
        help_text = family["help"]
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind == "histogram":
                buckets = family.get("buckets") or []
                counts = sample.get("bucket_counts", [])
                below = 0
                for bound, cumulative in zip(buckets, counts):
                    below = cumulative
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_render_labels(sorted(bucket_labels.items()))}"
                        f" {cumulative}"
                    )
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                count = int(sample.get("count", below))
                lines.append(
                    f"{name}_bucket{_render_labels(sorted(inf_labels.items()))} {count}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(sorted(labels.items()))}"
                    f" {_format_value(float(sample.get('sum', 0.0)))}"
                )
                lines.append(
                    f"{name}_count{_render_labels(sorted(labels.items()))} {count}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(sorted(labels.items()))}"
                    f" {_format_value(float(sample.get('value', 0.0)))}"
                )
    return "\n".join(lines) + "\n" if lines else ""
