"""REP005 — typed-error discipline in the service tier.

Every failure a handler can produce crosses the wire as a typed
``ServiceError`` with a stable ``code`` that round-trips through
``_ERROR_CODES`` back into the same exception class on the client.  A
``raise RuntimeError(...)`` in a handler short-circuits all of that into
an opaque ``internal-error``, and an error class missing from
``_ERROR_CODES`` deserialises into the wrong type.  Two checks:

* **file-level** (service-layer modules): ``raise`` of bare
  ``Exception`` / ``RuntimeError`` / ``BaseException`` — handlers must
  raise a ``ServiceError`` subclass (suppress with a reason for
  process-lifecycle errors that never reach the protocol encoder);
* **project-level** (``protocol.py``): every ``ServiceError`` subclass
  appears in the ``_ERROR_CODES`` round-trip table, and no two error
  classes claim the same ``code`` literal.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.devtools.lint.checkers._helpers import call_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Checker, register_checker
from repro.devtools.lint.source import Project, SourceFile

#: The request-path modules where every raise is answerable over the wire.
SCOPE = (
    "repro/service/server.py",
    "repro/service/middleware.py",
    "repro/service/router.py",
    "repro/service/auth.py",
    "repro/service/tenancy.py",
)

_PROTOCOL = "repro/service/protocol.py"
_BANNED = {"Exception", "RuntimeError", "BaseException"}


def _service_error_classes(tree: ast.Module) -> Dict[str, ast.ClassDef]:
    """ServiceError subclasses (transitively, within the module)."""
    classes: Dict[str, ast.ClassDef] = {}
    bases: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            classes[node.name] = node
            bases[node.name] = {
                base.id for base in node.bases if isinstance(base, ast.Name)
            }

    def derives(name: str, seen: Set[str]) -> bool:
        if name in seen:
            return False
        seen.add(name)
        parents = bases.get(name, set())
        return "ServiceError" in parents or any(derives(parent, seen) for parent in parents)

    return {
        name: node
        for name, node in classes.items()
        if name != "ServiceError" and derives(name, set())
    }


def _code_literal(class_node: ast.ClassDef) -> Optional[str]:
    for statement in class_node.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "code":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value
    return None


@register_checker
class TypedErrorChecker(Checker):
    rule = "REP005"
    summary = (
        "service handlers raise ServiceError subclasses (never bare "
        "Exception/RuntimeError); every error code round-trips via _ERROR_CODES"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not source.matches(*SCOPE):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            raised = node.exc
            name: Optional[str] = None
            if isinstance(raised, ast.Call):
                name = call_name(raised)
            elif isinstance(raised, ast.Name):
                name = raised.id
            if name in _BANNED:
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset,
                    f"raise {name} in the service tier becomes an opaque "
                    "internal-error on the wire: raise a ServiceError subclass "
                    "(or suppress with a reason for process-lifecycle failures)",
                )

    def check_project(self, project: Project) -> Iterator[Finding]:
        protocol = project.first(_PROTOCOL)
        if protocol is None:
            return
        error_classes = _service_error_classes(protocol.tree)
        if not error_classes:
            return
        table: Optional[ast.AST] = None
        for node in ast.walk(protocol.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == "_ERROR_CODES":
                        table = node.value
        table_names: Set[str] = set()
        if table is not None:
            table_names = {
                child.id for child in ast.walk(table) if isinstance(child, ast.Name)
            }
        codes: Dict[str, str] = {}
        for name, class_node in sorted(error_classes.items()):
            if table is not None and name not in table_names:
                yield self.finding(
                    protocol.path,
                    class_node.lineno,
                    class_node.col_offset,
                    f"{name} is missing from _ERROR_CODES: its code cannot "
                    "round-trip back into the typed class on the client",
                )
            code = _code_literal(class_node)
            if code is None:
                continue
            if code in codes:
                yield self.finding(
                    protocol.path,
                    class_node.lineno,
                    class_node.col_offset,
                    f"{name} reuses error code {code!r} already claimed by "
                    f"{codes[code]}: codes must be distinct to round-trip",
                )
            else:
                codes[code] = name
