"""REP006 — metric naming and label-set consistency.

The ``/metrics`` endpoint aggregates families from the server, the
middleware pipeline and every worker snapshot, so naming is a cross-file
contract: all families carry the ``repro_`` prefix (lowercase,
underscores), counters end in ``_total`` (and only counters do), and one
metric name always means one label schema.  A site that adds a label the
other sites lack *forks the family* — dashboards summing over it
silently drop the divergent series.

Checks, over every ``.counter(...)`` / ``.gauge(...)`` /
``.histogram(...)`` call site outside the registry implementation:

* the name (string literal, or f-string *template*) matches
  ``repro_[a-z0-9_]+``;
* counters end in ``_total``; gauges and histograms do not;
* across all sites sharing one name/template, label keyword sets are
  compatible — one site may use a *subset* of another's labels (a worker
  has no ``tenant``), but two sites with mutually exclusive labels are
  a forked family and both are flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Checker, register_checker
from repro.devtools.lint.source import Project, SourceFile

#: The registry implementation itself constructs families generically.
EXEMPT = ("repro/obs/metrics.py",)

_METHODS = ("counter", "gauge", "histogram")
_NAME_PATTERN = re.compile(r"^repro_[a-z0-9_]+$")
#: f-string placeholders are normalised to this token before validation.
_PLACEHOLDER = "x"


def _metric_name_template(node: ast.AST) -> Optional[str]:
    """The metric name with f-string placeholders normalised, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append(_PLACEHOLDER)
        return "".join(parts)
    return None


@register_checker
class MetricNamingChecker(Checker):
    rule = "REP006"
    summary = (
        "metric families are repro_-prefixed (counters end _total) and every "
        "site of one name agrees on a compatible label set"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if source.matches(*EXEMPT):
            return
        for method, name, labels, node in self._sites(source):
            if name is None:
                continue  # computed name: out of static reach
            if not _NAME_PATTERN.match(name):
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset,
                    f"metric name {name!r} must match repro_[a-z0-9_]+ "
                    "(repro_ prefix, lowercase, underscores)",
                )
                continue
            if method == "counter" and not name.endswith("_total"):
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset,
                    f"counter {name!r} must end in _total",
                )
            elif method != "counter" and name.endswith("_total"):
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset,
                    f"{method} {name!r} must not end in _total (counters only)",
                )

    def check_project(self, project: Project) -> Iterator[Finding]:
        sites: Dict[str, List[Tuple[SourceFile, ast.Call, Set[str]]]] = {}
        for source in project.files:
            if source.matches(*EXEMPT):
                continue
            for _method, name, labels, node in self._sites(source):
                if name is not None and _NAME_PATTERN.match(name):
                    sites.setdefault(name, []).append((source, node, labels))
        for name, uses in sorted(sites.items()):
            for index, (source, node, labels) in enumerate(uses):
                for other_source, other_node, other_labels in uses[index + 1 :]:
                    if labels <= other_labels or other_labels <= labels:
                        continue  # subset schemas aggregate cleanly
                    yield self.finding(
                        other_source.path,
                        other_node.lineno,
                        other_node.col_offset,
                        f"metric {name!r} is used with labels "
                        f"{sorted(other_labels)} here but {sorted(labels)} at "
                        f"{source.path}:{node.lineno}: one family, one schema",
                    )

    @staticmethod
    def _sites(source: SourceFile) -> Iterator[Tuple[str, Optional[str], Set[str], ast.Call]]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in _METHODS or not node.args:
                continue
            labels = {keyword.arg for keyword in node.keywords if keyword.arg}
            yield node.func.attr, _metric_name_template(node.args[0]), labels, node
