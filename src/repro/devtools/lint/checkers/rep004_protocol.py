"""REP004 — protocol completeness across parser, router, and client.

Adding a request type to the wire protocol takes four coordinated edits:
the ``Request`` subclass in ``protocol.py``, its entry in the
``_REQUEST_TYPES`` parse table, a ``Router`` registration in the
server's ``_register_routes``, and a client-facing call on
``ServiceClient``.  Forgetting any one of them compiles fine and fails
only at runtime ("unknown request type", a 404 from the router, or a
feature no client can reach).  This rule cross-references the three
files and reports every ``Request`` subclass missing from any leg.

The checks are name-based over the AST — a class name appearing in the
``_REQUEST_TYPES`` assignment, in the ``_register_routes`` method body,
and anywhere in ``client.py`` — which is exactly the level the bug
happens at: the forgotten edit is a forgotten *name*.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Checker, register_checker
from repro.devtools.lint.source import Project, SourceFile

_PROTOCOL = "repro/service/protocol.py"
_SERVER = "repro/service/server.py"
_CLIENT = "repro/service/client.py"


def _names_in(node: ast.AST) -> Set[str]:
    return {child.id for child in ast.walk(node) if isinstance(child, ast.Name)}


def _request_subclasses(tree: ast.Module) -> Dict[str, ast.ClassDef]:
    """Concrete Request subclasses (transitively, within the module)."""
    classes: Dict[str, ast.ClassDef] = {}
    bases: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            classes[node.name] = node
            bases[node.name] = {
                base.id for base in node.bases if isinstance(base, ast.Name)
            }

    def derives_from_request(name: str, seen: Set[str]) -> bool:
        if name in seen:
            return False
        seen.add(name)
        parents = bases.get(name, set())
        if "Request" in parents:
            return True
        return any(derives_from_request(parent, seen) for parent in parents)

    subclasses: Dict[str, ast.ClassDef] = {}
    for name, node in classes.items():
        if name == "Request" or not derives_from_request(name, set()):
            continue
        if _type_literal(node):
            subclasses[name] = node
    return subclasses


def _type_literal(class_node: ast.ClassDef) -> Optional[str]:
    """The class's ``TYPE = "..."`` literal, when concrete and non-empty."""
    for statement in class_node.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "TYPE":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value or None
    return None


def _assignment_value(tree: ast.Module, name: str) -> Optional[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
    return None


def _register_routes_names(tree: ast.Module) -> Optional[Set[str]]:
    """Names referenced inside ``_register_routes``; None when absent."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == "_register_routes":
                return _names_in(node)
    return None


@register_checker
class ProtocolCompletenessChecker(Checker):
    rule = "REP004"
    summary = (
        "every Request subclass must be in _REQUEST_TYPES, registered in the "
        "server's Router dispatch table, and reachable from ServiceClient"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        protocol = project.first(_PROTOCOL)
        if protocol is None:
            return
        subclasses = _request_subclasses(protocol.tree)
        if not subclasses:
            return

        parse_table = _assignment_value(protocol.tree, "_REQUEST_TYPES")
        parse_names = _names_in(parse_table) if parse_table is not None else set()

        server = project.first(_SERVER)
        route_names: Optional[Set[str]] = None
        if server is not None:
            route_names = _register_routes_names(server.tree)
            if route_names is None:  # no _register_routes: scan the whole file
                route_names = _names_in(server.tree)

        client = project.first(_CLIENT)
        client_names = _names_in(client.tree) if client is not None else None

        for name, class_node in sorted(subclasses.items()):
            if parse_table is not None and name not in parse_names:
                yield self.finding(
                    protocol.path,
                    class_node.lineno,
                    class_node.col_offset,
                    f"{name} is not in _REQUEST_TYPES: the middleware cannot "
                    "parse it off the wire",
                )
            if route_names is not None and name not in route_names:
                yield self.finding(
                    protocol.path,
                    class_node.lineno,
                    class_node.col_offset,
                    f"{name} is not registered in the server's _register_routes "
                    "dispatch table: requests of this type answer 'unknown request'",
                )
            if client_names is not None and name not in client_names:
                yield self.finding(
                    protocol.path,
                    class_node.lineno,
                    class_node.col_offset,
                    f"{name} is never constructed by ServiceClient: the feature "
                    "is unreachable from the client API",
                )
