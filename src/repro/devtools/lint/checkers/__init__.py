"""The built-in rule set.

Importing this package registers every checker (each module ends in a
``@register_checker`` class) — the registry idiom shared with the
kernel factories in :mod:`repro.api.spec`.  Adding a rule is one new
module here plus an import line below.
"""

from repro.devtools.lint.checkers import (  # noqa: F401  (imported for registration)
    rep000_hygiene,
    rep001_atomic_writes,
    rep002_lock_discipline,
    rep003_determinism,
    rep004_protocol,
    rep005_typed_errors,
    rep006_metrics,
)

__all__ = [
    "rep000_hygiene",
    "rep001_atomic_writes",
    "rep002_lock_discipline",
    "rep003_determinism",
    "rep004_protocol",
    "rep005_typed_errors",
    "rep006_metrics",
]
