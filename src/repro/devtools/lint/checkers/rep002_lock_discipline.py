"""REP002 — lock discipline: a lightweight per-class race heuristic.

The codebase's thread-safety convention is *attribute ownership by
lock*: once a class protects an attribute with ``with self._lock:``
anywhere, **every** mutation of that attribute outside ``__init__`` must
happen under a lock-guarded ``with``.  PR 4's cross-process lost-update
was precisely a read-modify-write that skipped the guard, so this rule
automates the review question "is every assignment to that field inside
a ``with self._lock``?".

Per class definition:

1. find the lock attributes — ``self.X = threading.Lock()`` (or
   ``RLock``/``Condition``) in any method;
2. find the guarded attributes — every ``self.Y`` target of an
   assignment / augmented assignment / subscript store inside a
   ``with self.X:`` block;
3. flag mutations of a guarded attribute *outside* any such block in
   methods other than ``__init__`` (construction happens-before any
   other thread can hold a reference).

Separately, :class:`~repro.service.jobstore.JobStore` record writes have
exactly two blessed read-modify-write doors — ``mutate()`` and
``claim_job()`` — so touching its ``_write_record``/``_record_lock``
internals from any *other* module is flagged unconditionally.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.devtools.lint.checkers._helpers import call_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Checker, register_checker
from repro.devtools.lint.source import Project, SourceFile

#: Constructors whose result is a mutual-exclusion guard.
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "Lock",
    "RLock",
    "Condition",
}

#: JobStore internals no other module may reach into.
_JOBSTORE_INTERNALS = ("_write_record", "_record_lock")
_JOBSTORE_PATH = "repro/service/jobstore.py"


def _self_attr(node: ast.AST) -> str:
    """``Y`` when *node* is ``self.Y`` (possibly subscripted), else ``''``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _mutation_targets(statement: ast.AST) -> List[Tuple[str, ast.AST]]:
    """``self.Y`` attributes a single statement mutates."""
    targets: List[Tuple[str, ast.AST]] = []
    if isinstance(statement, ast.Assign):
        nodes = statement.targets
    elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
        nodes = [statement.target]
    else:
        return targets
    for node in nodes:
        if isinstance(node, ast.Tuple):
            elements: List[ast.AST] = list(node.elts)
        else:
            elements = [node]
        for element in elements:
            attr = _self_attr(element)
            if attr:
                targets.append((attr, element))
    return targets


class _ClassAnalysis(ast.NodeVisitor):
    """One pass over a class body, tracking lock-held context."""

    def __init__(self, lock_attrs: Set[str]) -> None:
        self.lock_attrs = lock_attrs
        self.guarded: Set[str] = set()
        self.unguarded: List[Tuple[str, ast.AST]] = []
        self._depth = 0
        self._method = ""

    def _is_lock_with(self, node: ast.With) -> bool:
        for item in node.items:
            expression = item.context_expr
            # `with self._lock:` and `with self._lock, other:` both count;
            # so does `with tenant.lock:` — any attribute chain ending in
            # a known lock name or literally called "lock".
            if isinstance(expression, ast.Attribute) and (
                expression.attr in self.lock_attrs or expression.attr == "lock"
            ):
                return True
        return False

    def visit_With(self, node: ast.With) -> None:
        held = self._is_lock_with(node)
        if held:
            self._depth += 1
        self.generic_visit(node)
        if held:
            self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        previous = self._method
        self._method = node.name
        self.generic_visit(node)
        self._method = previous

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def generic_visit(self, node: ast.AST) -> None:
        for attr, element in _mutation_targets(node):
            if attr in self.lock_attrs:
                continue
            if self._depth > 0:
                self.guarded.add(attr)
            elif self._method and self._method != "__init__":
                self.unguarded.append((attr, element))
        super().generic_visit(node)


@register_checker
class LockDisciplineChecker(Checker):
    rule = "REP002"
    summary = (
        "attributes mutated under a threading.Lock-guarded `with` must never be "
        "mutated outside one; JobStore records only change via mutate()/claim_job()"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        yield from self._check_classes(source)
        yield from self._check_jobstore_reach(source)

    def _check_classes(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attrs = self._lock_attrs(node)
            if not lock_attrs:
                continue
            analysis = _ClassAnalysis(lock_attrs)
            analysis.visit(node)
            for attr, element in analysis.unguarded:
                if attr not in analysis.guarded:
                    continue
                yield self.finding(
                    source.path,
                    element.lineno,
                    element.col_offset,
                    f"self.{attr} is mutated under a lock elsewhere in "
                    f"{node.name} but written here without one (possible race)",
                )

    @staticmethod
    def _lock_attrs(class_node: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            if call_name(node.value) not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr:
                    locks.add(attr)
        return locks

    def _check_jobstore_reach(self, source: SourceFile) -> Iterator[Finding]:
        if source.matches(_JOBSTORE_PATH):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute) and node.attr in _JOBSTORE_INTERNALS:
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset,
                    f"JobStore.{node.attr} is internal: record mutations must go "
                    "through JobStore.mutate() or claim_job()",
                )
