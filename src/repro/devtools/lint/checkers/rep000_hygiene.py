"""REP000 — lint hygiene: the linter's own inputs must be sound.

Two failure modes would silently rot the whole tool: a file that does
not parse is a file no rule sees, and a mistyped or reason-less
``lint-ok`` comment suppresses nothing (or the wrong thing) while its
author believes the finding is handled.  Both are surfaced as findings
in their own right.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Checker, register_checker
from repro.devtools.lint.source import Project, SourceFile


@register_checker
class LintHygieneChecker(Checker):
    rule = "REP000"
    summary = "files must parse; lint-ok suppressions must be well-formed and justified"

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for line, message in source.malformed:
            yield self.finding(source.path, line, 0, message)

    def check_project(self, project: Project) -> Iterator[Finding]:
        for failure in project.failures:
            yield self.finding(failure.path, failure.line, 0, failure.message)
