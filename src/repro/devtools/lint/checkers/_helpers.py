"""Small AST utilities shared by the built-in checkers."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

__all__ = ["call_name", "dotted_name", "iter_functions", "string_constant"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The dotted name a call invokes, else ``None`` for computed callees."""
    return dotted_name(call.func)


def iter_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every (possibly nested) function definition under *tree*."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def string_constant(node: ast.AST) -> Optional[str]:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
