"""REP001 — atomic-write discipline in persistent state-dir layers.

Every store layer persists JSON under the unique-temp + ``os.replace``
contract (see :mod:`repro.core.atomicio`): a bare ``open(path, "w")`` or
``Path.write_text`` in one of those modules is a torn-file bug waiting
for a crash, and a pid-only temp name is a collision waiting for two
threads (the PR 5 temp-file collision).  This rule flags, inside the
scoped modules:

* write-mode builtin ``open(...)`` calls, **unless** the enclosing
  function itself implements the full idiom — an ``os.replace`` call
  plus a per-write-unique ``.tmp.`` temp name (a ``uuid`` component or
  :func:`~repro.core.atomicio.temp_name_for`);
* ``.write_text(...)`` / ``.write_bytes(...)`` attribute calls, which
  are never atomic.

Calling :func:`repro.core.atomicio.write_text_atomic` is the blessed
path and trivially passes (it is not an ``open`` call).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.checkers._helpers import call_name, iter_functions, string_constant
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Checker, register_checker
from repro.devtools.lint.source import Project, SourceFile

#: Modules whose on-disk writes are durable state (or operator contracts)
#: and must therefore be atomic.
SCOPE = (
    "repro/service/jobstore.py",
    "repro/service/worker.py",
    "repro/core/cachestore.py",
    "repro/core/pairstore.py",
    "repro/streaming/store.py",
    "repro/cli.py",
)

#: The one module allowed to open temp files bare: it *is* the idiom.
EXEMPT = ("repro/core/atomicio.py",)


def _write_mode(call: ast.Call) -> Optional[str]:
    """The mode string when *call* is a write-mode builtin ``open``."""
    if call_name(call) != "open":
        return None
    mode_node: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    mode = string_constant(mode_node) if mode_node is not None else "r"
    if mode is not None and any(flag in mode for flag in ("w", "a", "x", "+")):
        return mode
    return None


def _implements_idiom(function: ast.AST) -> bool:
    """Whether *function* contains the unique-temp + os.replace pattern."""
    has_replace = False
    has_unique_temp = False
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name == "os.replace":
                has_replace = True
            if name is not None and name.endswith("temp_name_for"):
                has_unique_temp = True
        if isinstance(node, ast.JoinedStr):
            # f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}" — the
            # template must carry both the .tmp. infix and a uuid part;
            # a pid-only temp name is exactly the collision bug.
            literal = "".join(
                str(value.value)
                for value in node.values
                if isinstance(value, ast.Constant)
            )
            if ".tmp." in literal:
                mentions_uuid = any(
                    "uuid" in ast.dump(value.value).lower()
                    for value in node.values
                    if isinstance(value, ast.FormattedValue)
                )
                if mentions_uuid:
                    has_unique_temp = True
    return has_replace and has_unique_temp


@register_checker
class AtomicWriteChecker(Checker):
    rule = "REP001"
    summary = (
        "state-dir writes must use the unique-temp + os.replace idiom "
        "(repro.core.atomicio), never a bare open(path, 'w') or write_text"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not source.matches(*SCOPE) or source.matches(*EXEMPT):
            return
        # Map every node inside a function to its outermost function, so
        # an open() can be excused by the idiom implemented around it.
        enclosing = {}
        for function in iter_functions(source.tree):
            for node in ast.walk(function):
                enclosing.setdefault(node, function)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            mode = _write_mode(node)
            if mode is not None:
                function = enclosing.get(node)
                if function is not None and _implements_idiom(function):
                    continue
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset,
                    f"bare open(..., {mode!r}) on persistent state: use "
                    "repro.core.atomicio.write_text_atomic (unique temp + os.replace)",
                )
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                "write_text",
                "write_bytes",
            ):
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset,
                    f".{node.func.attr}() is not atomic: use "
                    "repro.core.atomicio.write_text_atomic (unique temp + os.replace)",
                )
