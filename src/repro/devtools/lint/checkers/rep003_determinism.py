"""REP003 — determinism in content-hashed and kernel-value paths.

The matrix cache, pair store and streaming models are content-addressed:
two runs over the same corpus must produce byte-identical payloads or
every cache layer silently degrades to a miss (and worse, mixed payloads
stop comparing equal).  Inside the value-producing packages this rule
bans the classic nondeterminism sources:

* unseeded randomness — module-level ``random.random()``/``choice``/...
  and zero-argument ``random.Random()`` (seeded ``random.Random(seed)``
  instances are the blessed form, as in the workload generators);
  ``numpy.random`` in any form;
* wall-clock reads — ``time.time()``/``time.time_ns()`` and
  ``datetime.now()``/``utcnow()``/``today()`` — timestamps belong in
  *metadata*, never in hashed content (suppress with a reason where the
  use really is TTL/mtime bookkeeping);
* precision-losing float handling on values — ``round()`` and fixed
  precision float formatting (``f"{v:.6f}"``, ``"%.6f" %``,
  ``format(v, ".6f")``), which destroy the bit-identity the JSON
  round-trip guarantees.

``time.monotonic()``/``perf_counter()`` are deliberately allowed: they
measure durations, which are observability, not content.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.devtools.lint.checkers._helpers import call_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Checker, register_checker
from repro.devtools.lint.source import Project, SourceFile

#: The packages whose outputs are content-hashed or cached by value.
SCOPE = (
    "repro/core/*",
    "repro/kernels/*",
    "repro/strings/*",
    "repro/learn/*",
    "repro/streaming/*",
)

_CLOCK_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.date.today": "wall-clock read",
}

#: Fixed-precision float conversions in % / str.format / format() specs.
_PRECISION_SPEC = re.compile(r"%[-+ #0-9.]*\d*\.\d+[efgEFG]|^\.?\d*\.\d+[efgEFG]$")


def _fstring_precision(spec: Optional[ast.AST]) -> Optional[str]:
    """The precision-losing format spec inside an f-string, if any."""
    if not isinstance(spec, ast.JoinedStr):
        return None
    literal = "".join(
        str(value.value) for value in spec.values if isinstance(value, ast.Constant)
    )
    if re.search(r"\.\d+[efgEFG]$", literal):
        return literal
    return None


@register_checker
class DeterminismChecker(Checker):
    rule = "REP003"
    summary = (
        "no unseeded randomness, wall-clock reads, round(), or precision-losing "
        "float formatting in content-hashed / kernel-value packages"
    )

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not source.matches(*SCOPE):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, node)
            elif isinstance(node, ast.FormattedValue):
                spec = _fstring_precision(node.format_spec)
                if spec is not None:
                    yield self.finding(
                        source.path,
                        node.lineno,
                        node.col_offset,
                        f"fixed-precision format {spec!r} loses float bits: emit "
                        "full-precision values (repr round-trip) in value paths",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
                if (
                    isinstance(node.left, ast.Constant)
                    and isinstance(node.left.value, str)
                    and _PRECISION_SPEC.search(node.left.value)
                ):
                    yield self.finding(
                        source.path,
                        node.lineno,
                        node.col_offset,
                        f"fixed-precision %-format {node.left.value!r} loses float "
                        "bits in a value path",
                    )

    def _check_call(self, source: SourceFile, node: ast.Call) -> Iterator[Finding]:
        name = call_name(node)
        if name is None:
            return
        if name.startswith("random.") and name != "random.Random":
            yield self.finding(
                source.path,
                node.lineno,
                node.col_offset,
                f"{name}() uses the shared unseeded generator: pass a seeded "
                "random.Random(seed) through instead",
            )
        elif name == "random.Random" and not node.args and not node.keywords:
            yield self.finding(
                source.path,
                node.lineno,
                node.col_offset,
                "random.Random() without a seed is nondeterministic: require a seed",
            )
        elif ".random." in f".{name}." and name.split(".", 1)[0] in ("np", "numpy"):
            yield self.finding(
                source.path,
                node.lineno,
                node.col_offset,
                f"{name}() (numpy.random) is nondeterministic: derive values from "
                "seeded generators only",
            )
        elif name in _CLOCK_CALLS:
            yield self.finding(
                source.path,
                node.lineno,
                node.col_offset,
                f"{name}() is a {_CLOCK_CALLS[name]}: timestamps must stay out of "
                "content-hashed payloads (suppress with a reason if this is "
                "TTL/mtime bookkeeping)",
            )
        elif name == "round":
            yield self.finding(
                source.path,
                node.lineno,
                node.col_offset,
                "round() on kernel values breaks bit-identity: keep full precision",
            )
        elif name == "format" and len(node.args) == 2:
            spec = node.args[1]
            if (
                isinstance(spec, ast.Constant)
                and isinstance(spec.value, str)
                and re.search(r"\.\d+[efgEFG]$", spec.value)
            ):
                yield self.finding(
                    source.path,
                    node.lineno,
                    node.col_offset,
                    f"format(..., {spec.value!r}) loses float bits in a value path",
                )
