"""The ``repro lint`` command implementation.

Kept out of :mod:`repro.cli` so the top-level CLI only pays an import
for the linter when the subcommand actually runs (same lazy-import
pattern as ``worker``/``serve``).  Exit codes follow the convention
every CI system understands: 0 clean (or fully baselined/suppressed),
1 new findings, 2 usage or configuration errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.devtools.lint.baseline import Baseline, BaselineEntry, BaselineError
from repro.devtools.lint.engine import LintReport, lint_paths
from repro.devtools.lint.registry import LintRegistryError, rule_summaries

__all__ = ["run_lint"]

#: Stamp for entries added by --update-baseline; meant to be edited by
#: hand into a real justification before the baseline is committed.
_PLACEHOLDER_JUSTIFICATION = "TODO: justify this grandfathered finding"


def _split_rules(raw: str) -> List[str]:
    return [rule.strip() for rule in raw.split(",") if rule.strip()]


def _print_text(report: LintReport, stream) -> None:
    for finding in report.new:
        print(f"{finding.location()}: {finding.rule} {finding.message}", file=stream)
    for entry in report.stale:
        print(
            f"{entry.path}: stale baseline entry for {entry.rule} "
            f"(line {entry.line}): the finding is gone — remove the entry "
            "or run --update-baseline",
            file=stream,
        )
    summary = (
        f"{len(report.new)} finding(s) "
        f"({len(report.baselined)} baselined, {len(report.suppressed)} suppressed, "
        f"{len(report.stale)} stale baseline entries) across {report.files} file(s)"
    )
    print(summary, file=stream)


def _print_json(report: LintReport, stream) -> None:
    payload = {
        "ok": report.ok,
        "files": report.files,
        "new": [finding.to_dict() for finding in report.new],
        "baselined": [finding.to_dict() for finding in report.baselined],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
        "stale": [entry.to_dict() for entry in report.stale],
    }
    print(json.dumps(payload, indent=2, sort_keys=True), file=stream)


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule, summary in rule_summaries().items():
            print(f"{rule}  {summary}")
        return 0

    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        report = lint_paths(
            args.paths,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
            baseline=baseline,
        )
    except LintRegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        if not args.baseline:
            print("error: --update-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        kept = [
            entry
            for entry in (baseline.entries if baseline is not None else [])
            if entry not in set(report.stale)
        ]
        added = [
            BaselineEntry.from_finding(finding, _PLACEHOLDER_JUSTIFICATION)
            for finding in report.new
        ]
        Baseline.save(args.baseline, [*kept, *added])
        print(
            f"baseline {args.baseline}: {len(kept)} kept, {len(added)} added, "
            f"{len(report.stale)} stale removed"
            + (" — edit the TODO justifications before committing" if added else "")
        )
        return 0

    if args.format == "json":
        _print_json(report, sys.stdout)
    else:
        _print_text(report, sys.stdout)
    return 0 if report.ok else 1
