"""The lint run: checkers x files, then suppressions, then the baseline.

The pipeline is deliberately linear — collect, suppress, baseline,
sort — so every consumer (CLI text, CLI JSON, the self-hosted CI test)
sees the same :class:`LintReport` and the same ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.devtools.lint.baseline import Baseline, BaselineEntry
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import make_checkers
from repro.devtools.lint.source import Project

__all__ = ["LintReport", "lint_project", "lint_paths"]


@dataclass
class LintReport:
    """Everything one lint run produced, already partitioned."""

    #: Findings not suppressed and not in the baseline — these fail CI.
    new: List[Finding] = field(default_factory=list)
    #: Findings matched by a baseline entry (grandfathered).
    baselined: List[Finding] = field(default_factory=list)
    #: Findings silenced by an in-source ``lint-ok`` comment.
    suppressed: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (debt that has been paid).
    stale: List[BaselineEntry] = field(default_factory=list)
    #: Number of files scanned (parse failures included).
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.new

    def all_findings(self) -> List[Finding]:
        return sorted((*self.new, *self.baselined), key=Finding.sort_key)


def lint_project(
    project: Project,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Run the (filtered) registered checkers over *project*."""
    checkers = make_checkers(select=select, ignore=ignore)
    report = LintReport(files=len(project.files) + len(project.failures))

    collected: List[Finding] = []
    for checker in checkers:
        for source in project.files:
            collected.extend(checker.check_file(source, project))
        collected.extend(checker.check_project(project))

    sources = {source.path: source for source in project.files}
    for finding in sorted(collected, key=Finding.sort_key):
        source = sources.get(finding.path)
        line_text = source.line_text(finding.line) if source is not None else ""
        finding = finding.with_content(line_text or finding.message)
        if source is not None and source.is_suppressed(finding.rule, finding.line):
            report.suppressed.append(finding)
        elif baseline is not None and baseline.matches(finding):
            report.baselined.append(finding)
        else:
            report.new.append(finding)

    if baseline is not None:
        report.stale = baseline.stale_entries()
    return report


def lint_paths(
    paths: Iterable[str],
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Lint files/directories on disk (the CLI and CI entry point)."""
    return lint_project(
        Project.from_paths(list(paths)), select=select, ignore=ignore, baseline=baseline
    )
