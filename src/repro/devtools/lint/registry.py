"""The pluggable checker registry (same idiom as the kernel registry).

Checkers are classes registered under their rule id exactly like kernel
factories are registered under their ``kind`` in
:mod:`repro.api.spec`: a module-level dict, a decorator that refuses
duplicates loudly, and lookup helpers the engine and the CLI share.
Adding a rule is therefore one new module under ``checkers/`` plus an
import in ``checkers/__init__.py`` — no engine changes.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Type

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.source import Project, SourceFile

__all__ = [
    "Checker",
    "LintRegistryError",
    "make_checkers",
    "register_checker",
    "registered_rules",
    "rule_summaries",
]

#: Rule ids look like ``REP001`` — three letters, three digits.
_RULE_ID = re.compile(r"^[A-Z]{3}\d{3}$")


class LintRegistryError(ValueError):
    """Raised for invalid checker registrations or unknown rule ids."""


class Checker:
    """Base class for one lint rule.

    Subclasses set ``rule`` and ``summary`` and override one or both
    hooks.  ``check_file`` runs once per scanned file; ``check_project``
    runs once per lint run and is for rules that reason across files
    (protocol completeness, metric label consistency).  Both yield
    :class:`~repro.devtools.lint.findings.Finding` objects; the engine
    owns suppression, baselining and ordering.
    """

    rule: str = ""
    summary: str = ""

    def check_file(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())

    def finding(self, path: str, line: int, col: int, message: str) -> Finding:
        return Finding(rule=self.rule, path=path, line=line, col=col, message=message)


_REGISTRY: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding *cls* to the registry under its rule id.

    Like :func:`repro.api.spec.register_kernel`, double registration is
    an error rather than a silent overwrite — two checkers claiming one
    rule id means findings, suppressions and baselines stop agreeing on
    what the id means.
    """
    rule = getattr(cls, "rule", "")
    if not _RULE_ID.match(rule):
        raise LintRegistryError(f"checker {cls.__name__} has invalid rule id {rule!r}")
    if not getattr(cls, "summary", ""):
        raise LintRegistryError(f"checker {cls.__name__} ({rule}) is missing a summary")
    if rule in _REGISTRY:
        raise LintRegistryError(f"rule {rule!r} is already registered to {_REGISTRY[rule].__name__}")
    _REGISTRY[rule] = cls
    return cls


def registered_rules() -> List[str]:
    """Every registered rule id, sorted."""
    _load_builtin_checkers()
    return sorted(_REGISTRY)


def rule_summaries() -> Dict[str, str]:
    """Rule id -> one-line summary, for ``repro lint --list-rules``."""
    _load_builtin_checkers()
    return {rule: _REGISTRY[rule].summary for rule in sorted(_REGISTRY)}


def make_checkers(select: Iterable[str] = (), ignore: Iterable[str] = ()) -> List[Checker]:
    """Instantiate the checkers a run should execute.

    *select* keeps only the named rules (empty means all); *ignore*
    drops rules from whatever *select* kept.  Unknown ids in either are
    a loud :class:`LintRegistryError` — a typo'd ``--ignore REP03`` that
    silently ignored nothing would defeat the tool's purpose.
    """
    _load_builtin_checkers()
    chosen = set(select) or set(_REGISTRY)
    for rule in (*select, *ignore):
        if rule not in _REGISTRY:
            raise LintRegistryError(
                f"unknown rule id {rule!r} (known: {', '.join(sorted(_REGISTRY))})"
            )
    chosen -= set(ignore)
    return [_REGISTRY[rule]() for rule in sorted(chosen)]


def _load_builtin_checkers() -> None:
    # Importing the package registers every built-in checker as a side
    # effect (each module ends in a @register_checker class).  Lazy so
    # `import repro` never pays for the linter.
    import repro.devtools.lint.checkers  # noqa: F401
