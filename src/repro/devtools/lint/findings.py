"""The finding record every checker emits and every consumer reads.

A :class:`Finding` is deliberately flat — rule id, location, message —
so the text formatter, the JSON formatter, the baseline matcher and the
tests all consume the same object without adapters.  The engine fills in
``content`` (a short hash of the offending source line) after the
checkers run; checkers never compute it themselves.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Dict

__all__ = ["Finding", "content_hash"]


def content_hash(text: str) -> str:
    """The baseline identity of a finding's source line.

    Hashing the *stripped line text* (not the line number) keeps baseline
    entries stable while unrelated edits move code up and down the file —
    the same property content-addressed pair values rely on.  Truncated:
    16 hex chars is plenty for a per-(rule, path) namespace.
    """
    return hashlib.sha256(text.strip().encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``line``/``col`` are 1-based / 0-based respectively, matching
    ``ast`` node coordinates and the ``path:line:col`` convention every
    editor understands.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Baseline identity (see :func:`content_hash`); stamped by the engine.
    content: str = ""

    def with_content(self, line_text: str) -> "Finding":
        return replace(self, content=content_hash(line_text))

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "content": self.content,
        }

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)
