"""``repro lint`` — AST-based checkers for the repo's correctness contracts.

The reproduction's guarantees (bit-identical cached values, atomic
state-dir writes, lock-guarded mutations, a fully-wired protocol, typed
wire errors, one schema per metric family) live in *conventions*, and
each has already produced at least one latent bug caught late.  This
package machine-checks them:

* :mod:`~repro.devtools.lint.engine` — the run pipeline
  (:func:`~repro.devtools.lint.engine.lint_paths`);
* :mod:`~repro.devtools.lint.registry` — the pluggable checker registry
  (same idiom as the kernel-spec factory registry);
* :mod:`~repro.devtools.lint.checkers` — the built-in rules
  REP000–REP006;
* :mod:`~repro.devtools.lint.baseline` — grandfathered findings;
* :mod:`~repro.devtools.lint.source` — parsed files and the
  ``# repro: lint-ok[RULE] reason`` suppression syntax.

Run it with ``repro-iokast lint src/`` (or ``python -m repro lint``);
CI runs it self-hosted on every push.
"""

from repro.devtools.lint.baseline import Baseline, BaselineEntry, BaselineError
from repro.devtools.lint.engine import LintReport, lint_paths, lint_project
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import (
    Checker,
    LintRegistryError,
    make_checkers,
    register_checker,
    registered_rules,
    rule_summaries,
)
from repro.devtools.lint.source import Project, SourceFile

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Checker",
    "Finding",
    "LintRegistryError",
    "LintReport",
    "Project",
    "SourceFile",
    "lint_paths",
    "lint_project",
    "make_checkers",
    "register_checker",
    "registered_rules",
    "rule_summaries",
]
