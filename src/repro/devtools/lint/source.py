"""Parsed source files, the project view, and suppression comments.

Suppression syntax
------------------
A finding is silenced in place with::

    risky_line()  # repro: lint-ok[REP003] ttl bookkeeping, not content

or, for lines too long to carry a trailing comment, on a comment-only
line directly above the offending one::

    # repro: lint-ok[REP002] callers hold the registry lock
    self._samples[key] = cell

The rule list may name several rules (``lint-ok[REP001,REP003]``) and
the free-text reason is **mandatory** — a suppression that does not say
*why* the rule does not apply is itself a finding (REP000), because an
unjustified suppression is exactly the silent convention-erosion the
linter exists to prevent.
"""

from __future__ import annotations

import ast
import fnmatch
import os
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ParseFailure", "Project", "SourceFile", "Suppression", "path_matches"]

#: Strict form: rule list in brackets, non-empty reason after.
_SUPPRESSION = re.compile(
    r"#\s*repro:\s*lint-ok\[(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\]\s*(?P<reason>\S.*)?$"
)

#: Loose form: anything that *looks like* an attempted suppression, so a
#: typo'd rule id or a missing reason is reported instead of silently
#: suppressing nothing (or worse, something).
_SUPPRESSION_ATTEMPT = re.compile(r"#\s*repro:\s*lint-ok")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``lint-ok`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    #: True when the comment shares its line with code (applies to that
    #: line); False for a comment-only line (applies to the next line).
    inline: bool


@dataclass(frozen=True)
class ParseFailure:
    """A file the engine could not parse (surfaced as a REP000 finding)."""

    path: str
    line: int
    message: str


def path_matches(path: str, *patterns: str) -> bool:
    """Whether *path* falls under any tail *pattern*.

    Patterns are posix path tails relative to the package root, e.g.
    ``repro/core/cachestore.py`` or ``repro/learn/*`` — matching by tail
    keeps checkers working identically on the real tree
    (``src/repro/...``), on test fixtures in temp dirs, and on virtual
    paths handed straight to :class:`SourceFile`.
    """
    norm = path.replace(os.sep, "/").lstrip("./")
    for pattern in patterns:
        if fnmatch.fnmatch(norm, pattern) or fnmatch.fnmatch(norm, "*/" + pattern):
            return True
    return False


class SourceFile:
    """One parsed python file plus its suppression comments."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path.replace(os.sep, "/")
        self.text = text
        self.lines: List[str] = text.splitlines()
        self.tree: ast.Module = ast.parse(text, filename=path)
        self.suppressions: List[Suppression] = []
        self.malformed: List[Tuple[int, str]] = []
        self._scan_comments()
        self._suppressed: Dict[int, set] = {}
        for suppression in self.suppressions:
            target = suppression.line if suppression.inline else suppression.line + 1
            self._suppressed.setdefault(target, set()).update(suppression.rules)

    def _scan_comments(self) -> None:
        # tokenize (not a regex over raw lines) so suppression markers
        # inside string literals are never mistaken for real ones.
        try:
            tokens = list(tokenize.generate_tokens(StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse caught it
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            comment = token.string
            if not _SUPPRESSION_ATTEMPT.search(comment):
                continue
            line = token.start[0]
            match = _SUPPRESSION.search(comment)
            if not match:
                self.malformed.append(
                    (line, "malformed lint-ok comment (expected `# repro: lint-ok[RULE] reason`)")
                )
                continue
            if not match.group("reason"):
                self.malformed.append((line, "lint-ok suppression is missing its reason"))
                continue
            rules = tuple(rule.strip() for rule in match.group("rules").split(","))
            inline = bool(self.lines[line - 1][: token.start[1]].strip())
            self.suppressions.append(
                Suppression(line=line, rules=rules, reason=match.group("reason").strip(), inline=inline)
            )

    def is_suppressed(self, rule: str, line: int) -> bool:
        return rule in self._suppressed.get(line, ())

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def matches(self, *patterns: str) -> bool:
        return path_matches(self.path, *patterns)


@dataclass
class Project:
    """Every file in one lint run, for checkers that reason cross-file."""

    files: List[SourceFile] = field(default_factory=list)
    failures: List[ParseFailure] = field(default_factory=list)

    def find(self, *patterns: str) -> List[SourceFile]:
        return [source for source in self.files if source.matches(*patterns)]

    def first(self, *patterns: str) -> Optional[SourceFile]:
        found = self.find(*patterns)
        return found[0] if found else None

    @classmethod
    def from_texts(cls, texts: Dict[str, str]) -> "Project":
        """A project from in-memory sources (the unit-test entry point)."""
        project = cls()
        for path, text in texts.items():
            try:
                project.files.append(SourceFile(path, text))
            except SyntaxError as exc:
                project.failures.append(
                    ParseFailure(path=path, line=exc.lineno or 1, message=f"syntax error: {exc.msg}")
                )
        return project

    @classmethod
    def from_paths(cls, paths: Sequence[str]) -> "Project":
        """A project from files and directories on disk.

        Directories are walked recursively for ``*.py``; hidden
        directories and ``__pycache__`` are skipped.  Files are read as
        UTF-8 (the repository's encoding).
        """
        filenames: List[str] = []
        for path in paths:
            if os.path.isdir(path):
                for root, dirnames, names in os.walk(path):
                    dirnames[:] = sorted(
                        d for d in dirnames if not d.startswith(".") and d != "__pycache__"
                    )
                    filenames.extend(
                        os.path.join(root, name) for name in sorted(names) if name.endswith(".py")
                    )
            else:
                filenames.append(path)
        project = cls()
        for filename in filenames:
            try:
                with open(filename, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except OSError as exc:
                project.failures.append(ParseFailure(path=filename, line=1, message=str(exc)))
                continue
            try:
                project.files.append(SourceFile(filename, text))
            except SyntaxError as exc:
                project.failures.append(
                    ParseFailure(
                        path=filename, line=exc.lineno or 1, message=f"syntax error: {exc.msg}"
                    )
                )
        return project
