"""Grandfathered findings: the baseline file and its matching rules.

A baseline entry pins one *known, justified* finding so CI can fail on
anything new without forcing a big-bang cleanup.  Entries are matched by
``(rule, path, content)`` where ``content`` is a hash of the offending
source line (see :func:`~repro.devtools.lint.findings.content_hash`) —
stable under unrelated edits that move the line, invalidated the moment
the line itself changes, which is exactly when the grandfathering should
be re-examined.

Every entry carries a human ``justification``; ``repro lint
--update-baseline`` refuses nothing but stamps a placeholder that REP000
in a later pass would shame, so the expectation is that justifications
are edited in by hand.  Entries that match no current finding are
*stale* — reported so the file shrinks as debt is paid, and dropped
automatically on ``--update-baseline``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.atomicio import write_text_atomic
from repro.devtools.lint.findings import Finding

__all__ = ["Baseline", "BaselineEntry", "BaselineError"]

_BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised for unreadable or wrong-shape baseline files."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    rule: str
    path: str
    content: str
    justification: str
    #: Advisory only — kept so humans can find the line, never matched on.
    line: int = 0

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.content)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "content": self.content,
            "justification": self.justification,
            "line": self.line,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BaselineEntry":
        try:
            return cls(
                rule=str(payload["rule"]),
                path=str(payload["path"]),
                content=str(payload["content"]),
                justification=str(payload.get("justification", "")),
                line=int(payload.get("line", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(f"malformed baseline entry {payload!r}: {exc}") from exc

    @classmethod
    def from_finding(cls, finding: Finding, justification: str) -> "BaselineEntry":
        return cls(
            rule=finding.rule,
            path=finding.path,
            content=finding.content,
            justification=justification,
            line=finding.line,
        )


class Baseline:
    """The set of grandfathered findings, with use tracking for staleness."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._index: Set[Tuple[str, str, str]] = {entry.key() for entry in self.entries}
        self._used: Set[Tuple[str, str, str]] = set()

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        """Whether *finding* is grandfathered (and mark its entry used)."""
        key = (finding.rule, finding.path, finding.content)
        if key in self._index:
            self._used.add(key)
            return True
        return False

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries that matched nothing in the run(s) since loading."""
        return [entry for entry in self.entries if entry.key() not in self._used]

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """The baseline stored at *path*; a missing file is an empty one."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return cls()
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(f"baseline {path!r} is unreadable: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _BASELINE_VERSION:
            raise BaselineError(f"baseline {path!r} has unsupported shape/version")
        entries = payload.get("entries", [])
        if not isinstance(entries, list):
            raise BaselineError(f"baseline {path!r}: 'entries' must be a list")
        return cls(BaselineEntry.from_dict(entry) for entry in entries)

    @staticmethod
    def save(path: str, entries: Sequence[BaselineEntry]) -> None:
        """Atomically write *entries* to *path*, sorted for stable diffs."""
        ordered = sorted(entries, key=lambda entry: (entry.path, entry.rule, entry.line, entry.content))
        payload = {
            "version": _BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in ordered],
        }
        write_text_atomic(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
