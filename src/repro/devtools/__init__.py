"""Developer tooling that ships with the repository (not the service).

Currently one subsystem: :mod:`repro.devtools.lint`, the AST-based
invariant checker behind ``repro lint``.  Nothing under ``devtools`` is
imported by the library, service, or workers — it exists so the
conventions the runtime depends on (atomic writes, lock discipline,
bit-identical determinism, protocol completeness) are machine-checked
instead of re-discovered in review.
"""
