"""Tree substrate: containment trees built from I/O traces.

* :mod:`repro.tree.node` — :class:`PatternNode` / :class:`NodeKind`;
* :mod:`repro.tree.builder` — trace → tree conversion (ROOT/HANDLE/BLOCK
  levels, negligible-operation filtering);
* :mod:`repro.tree.compaction` — the paper's four merge rules;
* :mod:`repro.tree.traversal` — pre-order walks annotated with level changes;
* :mod:`repro.tree.serialize` — dict/dot/ASCII serialisation.
"""

from repro.tree.builder import TreeBuilder, build_tree
from repro.tree.compaction import CompactionConfig, TreeCompactor, compact_tree
from repro.tree.node import NodeKind, PatternNode
from repro.tree.serialize import render_tree, tree_from_dict, tree_to_dict, tree_to_dot
from repro.tree.traversal import (
    PreorderStep,
    breadth_first,
    operation_sequence,
    postorder,
    preorder,
    preorder_with_level_changes,
)

__all__ = [
    "TreeBuilder",
    "build_tree",
    "CompactionConfig",
    "TreeCompactor",
    "compact_tree",
    "NodeKind",
    "PatternNode",
    "render_tree",
    "tree_from_dict",
    "tree_to_dict",
    "tree_to_dot",
    "PreorderStep",
    "breadth_first",
    "operation_sequence",
    "postorder",
    "preorder",
    "preorder_with_level_changes",
]
