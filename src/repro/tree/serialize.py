"""Serialisation and rendering of access-pattern trees.

Trees can be converted to/from plain dictionaries (for JSON persistence), to
Graphviz ``dot`` source (for visual inspection) and to an indented ASCII
rendering (used by the CLI and the examples).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.tree.node import NodeKind, PatternNode

__all__ = ["tree_to_dict", "tree_from_dict", "tree_to_dot", "render_tree"]


def tree_to_dict(node: PatternNode) -> Dict[str, Any]:
    """Convert the subtree rooted at *node* into a JSON-friendly dictionary."""
    payload: Dict[str, Any] = {
        "kind": node.kind.value,
        "name": node.name,
        "nbytes": node.nbytes,
        "repetitions": node.repetitions,
    }
    if node.children:
        payload["children"] = [tree_to_dict(child) for child in node.children]
    return payload


def tree_from_dict(payload: Dict[str, Any]) -> PatternNode:
    """Rebuild a tree from the dictionary produced by :func:`tree_to_dict`."""
    try:
        kind = NodeKind(payload["kind"])
    except (KeyError, ValueError) as exc:
        raise ValueError(f"invalid tree payload: {payload!r}") from exc
    node = PatternNode(
        kind=kind,
        name=payload.get("name"),
        nbytes=int(payload.get("nbytes", 0)),
        repetitions=int(payload.get("repetitions", 1)),
    )
    for child_payload in payload.get("children", []):
        node.add_child(tree_from_dict(child_payload))
    return node


def tree_to_dot(root: PatternNode, graph_name: str = "pattern") -> str:
    """Render the tree as Graphviz ``dot`` source."""
    lines: List[str] = [f"digraph {graph_name} {{", "  node [shape=box, fontname=monospace];"]
    counter = 0

    def visit(node: PatternNode) -> int:
        nonlocal counter
        node_id = counter
        counter += 1
        label = node.label().replace('"', "'")
        lines.append(f'  n{node_id} [label="{label}"];')
        for child in node.children:
            child_id = visit(child)
            lines.append(f"  n{node_id} -> n{child_id};")
        return node_id

    visit(root)
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_tree(root: PatternNode, indent: str = "  ") -> str:
    """Render the tree as an indented ASCII outline.

    Example output::

        [ROOT]
          [HANDLE]
            [BLOCK]
              write[1024] x3
              lseek+write[512] x2
    """
    lines: List[str] = []

    def visit(node: PatternNode, depth: int) -> None:
        lines.append(f"{indent * depth}{node.label()}")
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)
