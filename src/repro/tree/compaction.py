"""Compaction of access-pattern trees.

Section 3.1 of the paper defines a compression step over consecutive
operation nodes that share the same BLOCK parent.  Four transformations are
applied *in the given order*:

1. **Same name, same bytes** — merged into one node with the same
   information (e.g. a read inside a loop reading ``n`` bytes per iteration).
2. **Same name, different bytes** — merged into one node with the same name;
   the new byte value is a combination of both byte values (e.g. reading a
   2-byte and then a 4-byte struct member in a loop).
3. **Different name, same bytes** — merged into one node with the same byte
   value; the new name is a combination of both names (e.g. interlaced
   read/write of the same size: a tacit copy).
4. **Different name, different bytes, one of them zero** — merged into one
   node with the non-zero byte value and a combined name (e.g. ``lseek``
   followed by ``write`` inside a loop).

The whole pass is then "repeated once again to capture higher level
patterns"; the number of passes is configurable and an until-fixpoint mode is
provided for the ablation study (experiment E9 in DESIGN.md).

Pass semantics
--------------
The paper does not spell out whether merges cascade within a pass.  We use
the interpretation that makes its own examples work out:

* **Rule 1 collapses runs**: a run of ``k`` identical ``(name, bytes)``
  siblings becomes a single node with repetition ``k`` within one pass — a
  read loop must compress in one step.
* **Rules 2-4 merge disjoint adjacent pairs** (left to right, no cascading).
  The paper's struct example — a loop body of ``read(2); read(4)`` executed
  ``n`` times — then behaves as intended: pass 1 pairs each ``read(2)`` with
  its ``read(4)`` producing ``n`` identical ``read[6]`` nodes, and pass 2's
  rule 1 collapses them into one ``read[6]`` node of repetition ``2n``
  ("repeated once again to capture higher level patterns").  A cascading
  rule 2 would instead swallow the whole loop into a single node with a
  meaningless byte total on the first pass.

Merge bookkeeping
-----------------
Every merge adds the repetition counts of the two merged nodes, so the sum
of repetition counts over all operation leaves always equals the number of
original (non-structural, non-negligible) operations — a property-tested
invariant.  Rule 2 combines byte values by adding them (configurable);
rules 3 and 4 combine names as ``"<left>+<right>"`` (identical halves are not
repeated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.tree.node import NodeKind, PatternNode

__all__ = ["CompactionConfig", "TreeCompactor", "compact_tree"]

#: Function combining the byte values of two merged nodes (rule 2).
ByteCombiner = Callable[[int, int], int]


def _default_byte_combiner(left: int, right: int) -> int:
    return left + right


def _combine_names(left: str, right: str) -> str:
    if left == right:
        return left
    return f"{left}+{right}"


@dataclass(frozen=True)
class CompactionConfig:
    """Configuration of the tree compaction pass.

    Attributes
    ----------
    passes:
        How many times the full rule pass is applied.  The paper uses 2.
        Ignored when ``until_fixpoint`` is true.
    until_fixpoint:
        Keep applying passes until the tree stops changing (ablation mode).
    max_fixpoint_passes:
        Safety bound for the fixpoint mode.
    enable_rule_1 ... enable_rule_4:
        Individually toggle the four merge rules (ablation mode).
    """

    passes: int = 2
    until_fixpoint: bool = False
    max_fixpoint_passes: int = 32
    enable_rule_1: bool = True
    enable_rule_2: bool = True
    enable_rule_3: bool = True
    enable_rule_4: bool = True

    def __post_init__(self) -> None:
        if self.passes < 0:
            raise ValueError(f"passes must be >= 0, got {self.passes}")
        if self.max_fixpoint_passes < 1:
            raise ValueError("max_fixpoint_passes must be >= 1")

    @classmethod
    def paper(cls) -> "CompactionConfig":
        """The configuration described in the paper (two passes, all rules)."""
        return cls()

    @classmethod
    def disabled(cls) -> "CompactionConfig":
        """No compaction at all (ablation baseline)."""
        return cls(passes=0)


class TreeCompactor:
    """Apply the paper's compaction rules to an access-pattern tree."""

    def __init__(
        self,
        config: Optional[CompactionConfig] = None,
        byte_combiner: ByteCombiner = _default_byte_combiner,
    ) -> None:
        self.config = config or CompactionConfig()
        self.byte_combiner = byte_combiner

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def compact(self, root: PatternNode, in_place: bool = False) -> PatternNode:
        """Return a compacted copy of the tree rooted at *root*.

        Set ``in_place=True`` to mutate *root* directly instead of copying.
        """
        tree = root if in_place else root.copy()
        if self.config.until_fixpoint:
            for _ in range(self.config.max_fixpoint_passes):
                if not self._single_pass(tree):
                    break
        else:
            for _ in range(self.config.passes):
                self._single_pass(tree)
        return tree

    # ------------------------------------------------------------------
    # Pass machinery
    # ------------------------------------------------------------------
    def _single_pass(self, node: PatternNode) -> bool:
        """Apply one full pass (rule 1 then rules 2-4) below *node*."""
        changed = False
        if node.children:
            changed |= self._compact_siblings(node)
            for child in node.children:
                changed |= self._single_pass(child)
        return changed

    def _compact_siblings(self, parent: PatternNode) -> bool:
        changed = False
        if self.config.enable_rule_1:
            changed |= self._collapse_identical_runs(parent)
        for rule in (2, 3, 4):
            if getattr(self.config, f"enable_rule_{rule}"):
                changed |= self._merge_adjacent_pairs(parent, rule)
        return changed

    @staticmethod
    def _mergeable(node: PatternNode) -> bool:
        return node.kind is NodeKind.OPERATION and node.is_leaf

    def _collapse_identical_runs(self, parent: PatternNode) -> bool:
        """Rule 1: collapse runs of identical (name, bytes) operation siblings."""
        merged: List[PatternNode] = []
        changed = False
        for child in parent.children:
            previous = merged[-1] if merged else None
            if (
                previous is not None
                and self._mergeable(child)
                and self._mergeable(previous)
                and previous.name == child.name
                and previous.nbytes == child.nbytes
            ):
                combined = PatternNode.operation(
                    previous.name,
                    nbytes=previous.nbytes,
                    repetitions=previous.repetitions + child.repetitions,
                )
                combined.parent = parent
                merged[-1] = combined
                changed = True
            else:
                merged.append(child)
        if changed:
            parent.children = merged
            for child in merged:
                child.parent = parent
        return changed

    def _merge_adjacent_pairs(self, parent: PatternNode, rule: int) -> bool:
        """Rules 2-4: merge disjoint adjacent pairs, left to right, no cascading."""
        children = parent.children
        merged: List[PatternNode] = []
        changed = False
        index = 0
        while index < len(children):
            current = children[index]
            nxt = children[index + 1] if index + 1 < len(children) else None
            combined = None
            if nxt is not None and self._mergeable(current) and self._mergeable(nxt):
                combined = self._apply_rule(rule, current, nxt)
            if combined is not None:
                combined.parent = parent
                merged.append(combined)
                changed = True
                index += 2
            else:
                merged.append(current)
                index += 1
        if changed:
            parent.children = merged
            for child in merged:
                child.parent = parent
        return changed

    def _apply_rule(self, rule: int, left: PatternNode, right: PatternNode) -> Optional[PatternNode]:
        same_name = left.name == right.name
        same_bytes = left.nbytes == right.nbytes
        repetitions = left.repetitions + right.repetitions

        if rule == 2 and same_name and not same_bytes:
            combined_bytes = self.byte_combiner(left.nbytes, right.nbytes)
            return PatternNode.operation(left.name, nbytes=combined_bytes, repetitions=repetitions)
        if rule == 3 and not same_name and same_bytes:
            return PatternNode.operation(
                _combine_names(left.name, right.name), nbytes=left.nbytes, repetitions=repetitions
            )
        if rule == 4 and not same_name and not same_bytes and (left.nbytes == 0 or right.nbytes == 0):
            nonzero = left.nbytes if left.nbytes != 0 else right.nbytes
            return PatternNode.operation(
                _combine_names(left.name, right.name), nbytes=nonzero, repetitions=repetitions
            )
        return None


def compact_tree(
    root: PatternNode,
    config: Optional[CompactionConfig] = None,
    in_place: bool = False,
) -> PatternNode:
    """Convenience wrapper: compact *root* using *config* (paper defaults)."""
    return TreeCompactor(config=config).compact(root, in_place=in_place)
