"""Tree nodes for the containment representation of I/O access patterns.

Section 3.1 of the paper defines a four-level tree:

* **ROOT** — one imaginary node per access-pattern file;
* **HANDLE** — one imaginary node per file handle;
* **BLOCK** — one imaginary node per ``open``..``close`` pair;
* **operation** — leaves for every remaining operation, each carrying the
  operation name, a byte value and a repetition count (filled in by the
  compaction step).

The structural levels always have weight (repetition count) 1.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Sequence

__all__ = ["NodeKind", "PatternNode"]


class NodeKind(enum.Enum):
    """Level of a node in the access-pattern tree."""

    ROOT = "ROOT"
    HANDLE = "HANDLE"
    BLOCK = "BLOCK"
    OPERATION = "OPERATION"


class PatternNode:
    """A node of the access-pattern tree.

    Parameters
    ----------
    kind:
        Level of the node (:class:`NodeKind`).
    name:
        Operation name for operation leaves; for structural nodes the name is
        the kind's literal (``ROOT``, ``HANDLE``, ``BLOCK``).
    nbytes:
        Byte value of the node.  Structural nodes always carry 0.  Operation
        nodes carry the (possibly combined) byte count produced by the
        compaction rules.
    repetitions:
        Repetition count of the node (the weight of the corresponding string
        token).  Structural nodes always carry 1.
    children:
        Initial children, if any.
    """

    __slots__ = ("kind", "name", "nbytes", "repetitions", "children", "parent")

    def __init__(
        self,
        kind: NodeKind,
        name: Optional[str] = None,
        nbytes: int = 0,
        repetitions: int = 1,
        children: Optional[Sequence["PatternNode"]] = None,
    ) -> None:
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.kind = kind
        self.name = name if name is not None else kind.value
        self.nbytes = int(nbytes)
        self.repetitions = int(repetitions)
        self.children: List[PatternNode] = []
        self.parent: Optional[PatternNode] = None
        if children:
            for child in children:
                self.add_child(child)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def root(cls) -> "PatternNode":
        """Create a ROOT node."""
        return cls(NodeKind.ROOT)

    @classmethod
    def handle(cls) -> "PatternNode":
        """Create a HANDLE node."""
        return cls(NodeKind.HANDLE)

    @classmethod
    def block(cls) -> "PatternNode":
        """Create a BLOCK node."""
        return cls(NodeKind.BLOCK)

    @classmethod
    def operation(cls, name: str, nbytes: int = 0, repetitions: int = 1) -> "PatternNode":
        """Create an operation leaf."""
        return cls(NodeKind.OPERATION, name=name, nbytes=nbytes, repetitions=repetitions)

    def add_child(self, child: "PatternNode") -> "PatternNode":
        """Append *child* and return it (for chaining)."""
        child.parent = self
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # Predicates and simple properties
    # ------------------------------------------------------------------
    @property
    def is_structural(self) -> bool:
        """Whether this node is an imaginary ROOT/HANDLE/BLOCK node."""
        return self.kind is not NodeKind.OPERATION

    @property
    def is_leaf(self) -> bool:
        """Whether this node has no children."""
        return not self.children

    def depth(self) -> int:
        """Distance from the root (the root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def size(self) -> int:
        """Total number of nodes in the subtree rooted here."""
        return 1 + sum(child.size() for child in self.children)

    def height(self) -> int:
        """Height of the subtree rooted here (a leaf has height 0)."""
        if not self.children:
            return 0
        return 1 + max(child.height() for child in self.children)

    def leaf_count(self) -> int:
        """Number of leaves in the subtree rooted here."""
        if not self.children:
            return 1
        return sum(child.leaf_count() for child in self.children)

    def total_repetitions(self) -> int:
        """Sum of repetition counts over all operation nodes in this subtree.

        The compaction rules preserve this quantity: merging two consecutive
        operations adds their repetition counts, never loses them.  Property
        tests rely on this invariant.
        """
        own = self.repetitions if self.kind is NodeKind.OPERATION else 0
        return own + sum(child.total_repetitions() for child in self.children)

    # ------------------------------------------------------------------
    # Copying and equality
    # ------------------------------------------------------------------
    def copy(self) -> "PatternNode":
        """Deep-copy the subtree rooted at this node (parent link dropped)."""
        clone = PatternNode(
            kind=self.kind,
            name=self.name,
            nbytes=self.nbytes,
            repetitions=self.repetitions,
        )
        for child in self.children:
            clone.add_child(child.copy())
        return clone

    def structurally_equal(self, other: "PatternNode") -> bool:
        """Deep structural equality (kind, name, bytes, repetitions, children)."""
        if (
            self.kind is not other.kind
            or self.name != other.name
            or self.nbytes != other.nbytes
            or self.repetitions != other.repetitions
            or len(self.children) != len(other.children)
        ):
            return False
        return all(a.structurally_equal(b) for a, b in zip(self.children, other.children))

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def iter_preorder(self) -> Iterator["PatternNode"]:
        """Yield the subtree's nodes in pre-order (parent before children)."""
        stack: List[PatternNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_leaves(self) -> Iterator["PatternNode"]:
        """Yield the subtree's leaves left to right."""
        for node in self.iter_preorder():
            if node.is_leaf:
                yield node

    def find_operations(self, name: str) -> List["PatternNode"]:
        """Return all operation nodes in this subtree with the given name."""
        return [
            node
            for node in self.iter_preorder()
            if node.kind is NodeKind.OPERATION and node.name == name
        ]

    # ------------------------------------------------------------------
    # Debugging helpers
    # ------------------------------------------------------------------
    def label(self) -> str:
        """Short human-readable label used by renderers."""
        if self.kind is NodeKind.OPERATION:
            return f"{self.name}[{self.nbytes}] x{self.repetitions}"
        return f"[{self.kind.value}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"PatternNode({self.label()}, children={len(self.children)})"
