"""Traversal utilities for access-pattern trees.

The string encoder needs a pre-order walk annotated with how many levels are
ascended between consecutive nodes (the ``[LEVEL_UP]`` token weight).  This
module provides that walk plus a few generic traversal helpers used by tests
and the serialisers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.tree.node import NodeKind, PatternNode

__all__ = ["PreorderStep", "preorder_with_level_changes", "preorder", "postorder", "breadth_first"]


@dataclass(frozen=True)
class PreorderStep:
    """One step of the annotated pre-order walk.

    Attributes
    ----------
    node:
        The node visited at this step.
    depth:
        Depth of the node relative to the traversal root (root = 0).
    levels_up:
        How many levels the walk ascended *before* reaching this node from
        the previously visited node.  Zero for the root and whenever the
        previous node is this node's parent (descending is implicit in the
        paper's encoding); positive when the walk returned from a deeper
        subtree before moving to this node.
    """

    node: PatternNode
    depth: int
    levels_up: int


def preorder(root: PatternNode) -> Iterator[PatternNode]:
    """Plain pre-order traversal of the subtree rooted at *root*."""
    yield from root.iter_preorder()


def postorder(root: PatternNode) -> Iterator[PatternNode]:
    """Post-order traversal (children before parent)."""
    for child in root.children:
        yield from postorder(child)
    yield root


def breadth_first(root: PatternNode) -> Iterator[PatternNode]:
    """Level-order traversal."""
    queue: List[PatternNode] = [root]
    while queue:
        node = queue.pop(0)
        yield node
        queue.extend(node.children)


def preorder_with_level_changes(root: PatternNode) -> List[PreorderStep]:
    """Pre-order walk annotated with the number of levels ascended.

    This is exactly the information needed to emit ``[LEVEL_UP]`` tokens: when
    the walk moves from a node at depth ``d1`` to the next pre-order node at
    depth ``d2``:

    * if ``d2 == d1 + 1`` the next node is a child — no token is needed
      because a descent of one level is implicit between adjacent tokens;
    * if ``d2 <= d1`` the walk ascended ``d1 - d2 + 1`` levels before
      descending one level into the next node's subtree.  The paper encodes
      this as a ``[LEVEL_UP]`` token whose weight is the number of levels
      jumped.

    The returned list contains one :class:`PreorderStep` per node; the
    ``levels_up`` of step *i* describes the transition from node *i - 1* to
    node *i* (and is 0 for the first node).
    """
    steps: List[PreorderStep] = []
    previous_depth: Optional[int] = None

    def visit(node: PatternNode, depth: int) -> None:
        nonlocal previous_depth
        if previous_depth is None or depth == previous_depth + 1:
            levels_up = 0
        else:
            # Moving to a sibling (same depth) means ascending 1 level and
            # descending again; moving to an uncle means ascending 2; etc.
            levels_up = previous_depth - depth + 1
        steps.append(PreorderStep(node=node, depth=depth, levels_up=levels_up))
        previous_depth = depth
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return steps


def operation_sequence(root: PatternNode) -> List[Tuple[str, int, int]]:
    """Flatten the tree's operation leaves to ``(name, nbytes, repetitions)``.

    Handy in tests for asserting what the compaction rules produced without
    caring about the structural nodes.
    """
    return [
        (node.name, node.nbytes, node.repetitions)
        for node in root.iter_preorder()
        if node.kind is NodeKind.OPERATION
    ]


__all__.append("operation_sequence")
