"""Conversion of I/O traces into containment trees.

Section 3.1, "From I/O Access Patterns to Trees": operations are registered
chronologically and several file handles may interleave, so the trace is
first regrouped into a tree whose levels express containment:

* the ROOT groups all operations of one access-pattern file;
* each HANDLE node groups the operations of one file handle;
* each BLOCK node groups the operations found between an ``open`` and its
  matching ``close``;
* remaining operations become leaves — except ``open``/``close`` themselves,
  because the BLOCK node already plays the role of a delimiter.

Negligible operations (``fileno``, ``nmap``, ``fscanf``...) are dropped.
Operations that appear on a handle outside any open..close block (truncated
traces, pre-opened descriptors such as stdout) are placed in an implicit
block so no information is silently lost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.traces.model import IOOperation, IOTrace
from repro.traces.operations import DEFAULT_REGISTRY, OperationClass, OperationRegistry
from repro.tree.node import NodeKind, PatternNode

__all__ = ["TreeBuilder", "build_tree"]


@dataclass
class _HandleState:
    """Mutable per-handle build state."""

    handle_node: PatternNode
    open_blocks: List[PatternNode]
    implicit_block: Optional[PatternNode] = None

    def current_block(self) -> Optional[PatternNode]:
        if self.open_blocks:
            return self.open_blocks[-1]
        return None


class TreeBuilder:
    """Build :class:`PatternNode` trees from :class:`IOTrace` objects.

    Parameters
    ----------
    registry:
        Operation registry used to classify operations.
    drop_negligible:
        Drop negligible operations (paper behaviour).  Disable only for
        debugging.
    use_byte_information:
        When false, all byte values are treated as zero — this produces the
        paper's second string variant without having to rewrite the trace.
    allow_implicit_blocks:
        When true (default), operations outside any open..close pair are
        attached to an implicit BLOCK under their handle.  When false they
        raise ``ValueError``.
    """

    def __init__(
        self,
        registry: OperationRegistry = DEFAULT_REGISTRY,
        drop_negligible: bool = True,
        use_byte_information: bool = True,
        allow_implicit_blocks: bool = True,
    ) -> None:
        self.registry = registry
        self.drop_negligible = drop_negligible
        self.use_byte_information = use_byte_information
        self.allow_implicit_blocks = allow_implicit_blocks

    def build(self, trace: IOTrace) -> PatternNode:
        """Convert *trace* into its containment tree and return the ROOT."""
        root = PatternNode.root()
        states: Dict[str, _HandleState] = {}

        for index, op in enumerate(trace.operations):
            klass = self.registry.classify(op.name)
            if self.drop_negligible and klass is OperationClass.NEGLIGIBLE:
                continue
            state = self._state_for(root, states, op.handle)
            if klass is OperationClass.OPEN:
                block = PatternNode.block()
                state.handle_node.add_child(block)
                state.open_blocks.append(block)
            elif klass is OperationClass.CLOSE:
                if state.open_blocks:
                    state.open_blocks.pop()
                elif not self.allow_implicit_blocks:
                    raise ValueError(
                        f"operation {index}: close on handle {op.handle!r} without a matching open"
                    )
                # A close without an open is otherwise ignored: the implicit
                # block (if any) simply continues.
            else:
                self._append_operation(state, op, index)
        return root

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _state_for(
        self,
        root: PatternNode,
        states: Dict[str, _HandleState],
        handle: str,
    ) -> _HandleState:
        state = states.get(handle)
        if state is None:
            handle_node = PatternNode.handle()
            root.add_child(handle_node)
            state = _HandleState(handle_node=handle_node, open_blocks=[])
            states[handle] = state
        return state

    def _append_operation(self, state: _HandleState, op: IOOperation, index: int) -> None:
        block = state.current_block()
        if block is None:
            if not self.allow_implicit_blocks:
                raise ValueError(
                    f"operation {index}: {op.name!r} on handle {op.handle!r} outside any open..close block"
                )
            if state.implicit_block is None:
                state.implicit_block = PatternNode.block()
                state.handle_node.add_child(state.implicit_block)
            block = state.implicit_block
        nbytes = op.nbytes if self.use_byte_information else 0
        block.add_child(PatternNode.operation(op.name, nbytes=nbytes, repetitions=1))


def build_tree(
    trace: IOTrace,
    registry: OperationRegistry = DEFAULT_REGISTRY,
    use_byte_information: bool = True,
    drop_negligible: bool = True,
) -> PatternNode:
    """Convenience wrapper building the tree for *trace* with defaults."""
    builder = TreeBuilder(
        registry=registry,
        drop_negligible=drop_negligible,
        use_byte_information=use_byte_information,
    )
    return builder.build(trace)
