"""Text-based visualisation of the analysis results (ASCII scatter plots and dendrograms)."""

from repro.viz.dendro import ascii_dendrogram, cluster_tree_summary
from repro.viz.scatter import ascii_scatter, scatter_from_kpca

__all__ = ["ascii_dendrogram", "cluster_tree_summary", "ascii_scatter", "scatter_from_kpca"]
