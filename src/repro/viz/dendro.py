"""ASCII dendrogram rendering.

The paper's Figures 7 and 9 are dendrograms of the single-linkage
hierarchical clustering.  This renderer draws the merge tree sideways
(leaves on the left, root on the right), scaling merge heights onto a fixed
number of character columns, which is enough to see the grouping structure
and the relative merge heights the figures convey.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.learn.dendrogram import Dendrogram

__all__ = ["ascii_dendrogram", "cluster_tree_summary"]


def ascii_dendrogram(dendrogram: Dendrogram, width: int = 60, max_leaves: int = 60) -> str:
    """Render *dendrogram* as sideways ASCII art.

    Leaves are listed top to bottom in the tree-induced order; each merge is
    drawn as a bracket at a column proportional to its height.  For corpora
    larger than *max_leaves*, leaves are summarised per label to keep the
    rendering readable (the paper's own figures do the same by colouring).
    """
    if dendrogram.n_leaves == 0:
        return "(empty dendrogram)"
    if dendrogram.n_leaves > max_leaves:
        return cluster_tree_summary(dendrogram)

    order = dendrogram.leaf_order()
    heights = dendrogram.heights()
    max_height = max(heights) if heights else 1.0
    if max_height <= 0:
        max_height = 1.0

    def leaf_name(index: int) -> str:
        if dendrogram.names:
            name = dendrogram.names[index]
        else:
            name = f"#{index}"
        label = dendrogram.labels[index] if dendrogram.labels else None
        return f"{name} ({label})" if label else name

    name_width = max(len(leaf_name(index)) for index in order) + 1
    position_of = {leaf: row for row, leaf in enumerate(order)}
    lines = [leaf_name(leaf).ljust(name_width) + "|" for leaf in order]

    # Track, for every active cluster, the row its branch currently occupies
    # and the column it has been drawn up to.
    row_of: Dict[int, int] = {leaf: position_of[leaf] for leaf in order}
    column_of: Dict[int, int] = {leaf: 0 for leaf in order}

    for merge_index, merge in enumerate(dendrogram.merges):
        cluster_id = dendrogram.n_leaves + merge_index
        column = max(1, int(round(merge.height / max_height * (width - 1))))
        left_row = row_of[merge.left]
        right_row = row_of[merge.right]
        top, bottom = sorted((left_row, right_row))
        for child in (merge.left, merge.right):
            child_row = row_of[child]
            start = column_of[child]
            padding = "-" * max(0, column - start)
            lines[child_row] = lines[child_row] + padding + "+"
        row_of[cluster_id] = top
        column_of[cluster_id] = column + 1
    return "\n".join(lines)


def cluster_tree_summary(dendrogram: Dendrogram, levels: Sequence[int] = (2, 3, 4)) -> str:
    """Summarise a large dendrogram by its label composition at a few cuts."""
    lines: List[str] = [f"dendrogram over {dendrogram.n_leaves} leaves (summary)"]
    for n_clusters in levels:
        if n_clusters >= dendrogram.n_leaves:
            continue
        assignments = dendrogram.cut_into(n_clusters)
        composition: Dict[int, Dict[str, int]] = {}
        for index, cluster in enumerate(assignments):
            label = dendrogram.labels[index] if dendrogram.labels else "?"
            composition.setdefault(cluster, {}).setdefault(label or "?", 0)
            composition[cluster][label or "?"] += 1
        parts = []
        for cluster in sorted(composition):
            counts = ", ".join(f"{label}:{count}" for label, count in sorted(composition[cluster].items()))
            parts.append(f"{{{counts}}}")
        heights = dendrogram.heights()
        boundary = len(heights) - (n_clusters - 1)
        gap = ""
        if 0 < boundary <= len(heights) - 1:
            kept = heights[:boundary]
            undone = heights[boundary:]
            if kept and undone and max(kept) > 0:
                gap = f"  (separation ratio {min(undone) / max(kept):.2f})"
        lines.append(f"  {n_clusters} clusters: " + "  ".join(parts) + gap)
    return "\n".join(lines)
