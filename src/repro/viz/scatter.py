"""ASCII scatter plots of Kernel PCA embeddings.

The paper's Figures 6 and 8 are 2-D scatter plots of the Kernel PCA
projection, with each point labelled by its category.  In a text-only
environment the same information is rendered as a character grid: each cell
shows the label of the example(s) falling into it (``*`` when several labels
collide).  The benchmarks embed these renderings in their console output and
EXPERIMENTS.md quotes them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ascii_scatter", "scatter_from_kpca"]


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    labels: Optional[Sequence[str]] = None,
    width: int = 72,
    height: int = 24,
    title: str = "",
) -> str:
    """Render points as an ASCII scatter plot.

    Parameters
    ----------
    x, y:
        Point coordinates (equal length).
    labels:
        One-character-per-point markers; longer labels are truncated to their
        first character.  Defaults to ``"."`` for every point.
    width, height:
        Size of the character grid.
    title:
        Optional title line.
    """
    points_x = np.asarray(list(x), dtype=float)
    points_y = np.asarray(list(y), dtype=float)
    if points_x.shape != points_y.shape:
        raise ValueError("x and y must have the same length")
    count = points_x.size
    if labels is None:
        markers = ["."] * count
    else:
        markers = [str(label)[0] if str(label) else "." for label in labels]
        if len(markers) != count:
            raise ValueError("labels must have the same length as the points")
    if count == 0:
        return title + "\n(no points)"

    min_x, max_x = float(points_x.min()), float(points_x.max())
    min_y, max_y = float(points_y.min()), float(points_y.max())
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for px, py, marker in zip(points_x, points_y, markers):
        column = int((px - min_x) / span_x * (width - 1))
        row = int((py - min_y) / span_y * (height - 1))
        row = height - 1 - row  # y axis grows upwards
        current = grid[row][column]
        if current == " ":
            grid[row][column] = marker
        elif current != marker:
            grid[row][column] = "*"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"x: [{min_x:.3f}, {max_x:.3f}]   y: [{min_y:.3f}, {max_y:.3f}]")
    return "\n".join(lines)


def scatter_from_kpca(result, width: int = 72, height: int = 24, title: str = "") -> str:
    """Render the first two components of a :class:`KernelPCAResult`."""
    embedding = result.embedding
    if embedding.shape[1] < 2:
        padded = np.zeros((embedding.shape[0], 2))
        padded[:, : embedding.shape[1]] = embedding
        embedding = padded
    labels = [label if label is not None else "?" for label in (result.labels or ["?"] * embedding.shape[0])]
    return ascii_scatter(embedding[:, 0], embedding[:, 1], labels=labels, width=width, height=height, title=title)
