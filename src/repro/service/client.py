"""The service client: the ``AnalysisSession`` surface over a transport.

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` messages and
mirrors the session facade — ``matrix()``/``analyze()`` block for a result,
``submit()``/``result()``/``status()``/``cancel()`` manage job handles — so
moving a workload from in-process to remote is a one-line change::

    from repro.api import AnalysisSession
    from repro.service import ServiceClient

    with AnalysisSession() as session:
        strings = session.corpus(small=True, seed=7)
        local = session.matrix("kast", strings)

    with ServiceClient("http://127.0.0.1:8123") as client:
        remote = client.matrix("kast", strings)        # bit-identical values

Two transports ship:

* :class:`HTTPTransport` — ``urllib``-based, one ``POST /v1`` per request;
  works across hosts.
* :class:`StdioTransport` — line-framed JSON over a pair of file objects
  (e.g. the pipes of a ``repro-iokast serve --stdio`` child process); the
  zero-port single-host transport.

Server-side failures arrive as the same typed
:class:`~repro.service.protocol.ServiceError` hierarchy the server raised,
and result polling honours the session's timeout contract by raising
:class:`~repro.api.session.JobTimeout` with the job id attached.

Resilience: the client distinguishes *transport* failures (connection
refused/reset, non-protocol 5xx — raised as :class:`TransportError`) from
typed protocol errors.  Idempotent calls (health, specs, status, result
polls, models, metrics) retry transport failures and opaque ``internal``
errors with jittered exponential backoff; ``rate-limited`` /
``quota-exceeded`` answers carrying a ``retry_after`` hint are honoured
with a capped backoff on *every* call type, because the server rejected
them before doing any work.  ``retries=0`` restores fail-fast behaviour.

Authentication: pass ``token=...`` (or set ``REPRO_SERVICE_TOKEN``) and the
client stamps it into every request envelope — which authenticates
identically over HTTP and stdio transports.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, TextIO, Union

from repro.api.session import JobTimeout
from repro.api.spec import KernelSpec, coerce_spec
from repro.core.matrix import KernelMatrix
from repro.obs.tracing import new_trace_id
from repro.service.protocol import (
    CacheStatsRequest,
    CancelRequest,
    ClassifyRequest,
    FitModelRequest,
    HealthRequest,
    JobPending,
    ModelsRequest,
    QuotaExceeded,
    RateLimited,
    Request,
    ResultRequest,
    ServiceError,
    SpecsRequest,
    StatusRequest,
    SubmitAnalyzeRequest,
    SubmitMatrixRequest,
    check_response,
    dump_message,
    encode_corpus,
    load_message,
)
from repro.strings.tokens import WeightedString

__all__ = [
    "HTTPTransport",
    "ServiceClient",
    "StdioTransport",
    "TransportError",
    "spawn_stdio_server",
]

#: Environment variable the client reads a bearer token from when none is
#: passed explicitly (mirrors the CLI's ``--token`` flags).
TOKEN_ENV_VAR = "REPRO_SERVICE_TOKEN"


class TransportError(ServiceError):
    """The request never produced a protocol answer (network/stream failure).

    Distinct from the wire's typed errors so retry policy can tell "the
    server refused" (definitive, do not blindly retry) from "the server
    never answered" (safe to retry when the call is idempotent).
    """

    code = "transport"

#: Spec shorthands the client accepts (mirrors the session's SpecLike).
SpecLike = Union[KernelSpec, Mapping[str, Any], str]

#: Default per-request server-side wait used while polling for a result.
_POLL_WAIT_SECONDS = 2.0

#: Fraction of the transport's socket timeout a server-side wait hint may
#: use.  The rest is headroom for the server to answer and the payload to
#: travel — a wait hint at (or beyond) the socket timeout would make every
#: slow poll die as a transport error instead of a clean job-pending.
_POLL_WAIT_TIMEOUT_FRACTION = 0.5


class HTTPTransport:
    """One ``POST /v1`` per request against a server base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def request(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        body = dump_message(payload).encode("utf-8")
        http_request = urllib.request.Request(
            f"{self.base_url}/v1",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(http_request, timeout=self.timeout) as response:
                text = response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            # Typed protocol errors travel in the body with a 4xx/5xx status;
            # surface them as the envelope so check_response re-raises them.
            text = exc.read().decode("utf-8", errors="replace")
            try:
                return json.loads(text)
            except json.JSONDecodeError:
                raise TransportError(f"HTTP {exc.code} from {self.base_url}: {text[:200]}") from exc
        except urllib.error.URLError as exc:
            raise TransportError(f"cannot reach analysis server at {self.base_url}: {exc.reason}") from exc
        except OSError as exc:  # reset/refused surfacing outside URLError
            raise TransportError(f"connection to {self.base_url} failed: {exc}") from exc
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise TransportError(f"server returned non-JSON response: {text[:200]}") from exc

    def fetch_text(self, path: str) -> str:
        """GET a plain-text endpoint of the server (e.g. ``/metrics``)."""
        try:
            with urllib.request.urlopen(
                f"{self.base_url}/{path.lstrip('/')}", timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise TransportError(f"HTTP {exc.code} from {self.base_url}{path}") from exc
        except urllib.error.URLError as exc:
            raise TransportError(f"cannot reach analysis server at {self.base_url}: {exc.reason}") from exc

    def close(self) -> None:
        """HTTP requests are one-shot; nothing to release."""

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"HTTPTransport({self.base_url!r})"


class StdioTransport:
    """Line-framed JSON over a (reader, writer) pair of text streams.

    The request/response exchange is serialised under a lock, so one
    transport may be shared by several threads of a single-host client.
    When constructed via :func:`spawn_stdio_server` the transport owns the
    child process and terminates it on :meth:`close`.
    """

    def __init__(
        self,
        reader: TextIO,
        writer: TextIO,
        process: Optional[subprocess.Popen] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._process = process
        self._lock = threading.Lock()

    def request(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self._writer.write(dump_message(payload) + "\n")
            self._writer.flush()
            line = self._reader.readline()
        if not line:
            raise TransportError("stdio server closed the stream without answering")
        return load_message(line)

    def close(self) -> None:
        for stream in (self._writer, self._reader):
            try:
                stream.close()
            except OSError:  # pragma: no cover - stream already gone
                pass
        if self._process is not None:
            try:
                self._process.terminate()
                self._process.wait(timeout=5)
            except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
                self._process.kill()
            self._process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"StdioTransport(process={self._process.pid if self._process else None})"


def spawn_stdio_server(
    state_dir: str,
    python: Optional[str] = None,
    extra_args: Sequence[str] = (),
) -> StdioTransport:
    """Launch ``python -m repro serve --stdio`` and wrap its pipes.

    The child inherits the current interpreter's environment (including
    ``PYTHONPATH``), so this works from a source checkout; *extra_args* are
    appended to the ``serve`` invocation (e.g. ``["--n-jobs", "2"]``).
    """
    command = [
        python or sys.executable,
        "-m",
        "repro",
        "serve",
        "--stdio",
        "--state-dir",
        state_dir,
        *extra_args,
    ]
    process = subprocess.Popen(
        command,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
        bufsize=1,
    )
    assert process.stdin is not None and process.stdout is not None
    return StdioTransport(process.stdout, process.stdin, process=process)


class ServiceClient:
    """Remote mirror of the :class:`~repro.api.session.AnalysisSession` surface.

    Parameters
    ----------
    transport:
        An :class:`HTTPTransport`, a :class:`StdioTransport`, or a bare
        ``http(s)://`` URL string (wrapped in an HTTP transport).
    poll_wait:
        Seconds of *server-side* wait requested per result poll.  The
        effective wait is clamped well below the transport's socket
        timeout (when it has one), so an unbounded
        ``result_payload(timeout=None)`` keeps politely polling instead of
        surfacing a transport timeout mid-wait.
    token:
        Bearer token stamped into every request envelope.  ``None`` falls
        back to the ``REPRO_SERVICE_TOKEN`` environment variable; empty /
        unset means unauthenticated (fine against a no-auth server).
    retries:
        Extra attempts granted to transient failures: transport errors and
        opaque ``internal`` answers on *idempotent* calls, and
        ``rate-limited`` / ``quota-exceeded`` answers carrying a
        ``retry_after`` hint on every call.  ``0`` fails fast (the
        pre-retry behaviour).
    backoff / max_backoff:
        Base and cap (seconds) of the jittered exponential backoff between
        attempts; a server ``retry_after`` hint is always honoured in full.
    """

    def __init__(
        self,
        transport: Union[str, HTTPTransport, StdioTransport],
        poll_wait: float = _POLL_WAIT_SECONDS,
        token: Optional[str] = None,
        retries: int = 3,
        backoff: float = 0.25,
        max_backoff: float = 8.0,
    ) -> None:
        if isinstance(transport, str):
            transport = HTTPTransport(transport)
        if poll_wait <= 0:
            raise ValueError(f"poll_wait must be > 0, got {poll_wait}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff <= 0 or max_backoff < backoff:
            raise ValueError(f"need 0 < backoff <= max_backoff, got {backoff}/{max_backoff}")
        self.transport = transport
        self.poll_wait = float(poll_wait)
        if token is None:
            token = os.environ.get(TOKEN_ENV_VAR) or None
        self.token = token
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)

    def _clamped_poll_wait(self) -> float:
        """The per-poll server-side wait hint, kept under the socket timeout.

        A transport with a finite request timeout (HTTP) cannot sit in one
        request longer than that timeout: a wait hint at or above it would
        turn every quiet poll into a spurious ``URLError`` even though the
        job is healthy.  Capping the hint at half the socket timeout keeps
        each poll comfortably answerable; the *caller's* deadline is still
        honoured by the polling loop in :meth:`result_payload`.
        """
        wait = self.poll_wait
        transport_timeout = getattr(self.transport, "timeout", None)
        if transport_timeout is not None:
            wait = min(wait, max(0.05, float(transport_timeout) * _POLL_WAIT_TIMEOUT_FRACTION))
        return wait

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send(self, request: Request) -> Dict[str, Any]:
        payload = request.to_payload()
        if self.token is not None:
            payload["token"] = self.token
        return check_response(self.transport.request(payload))

    def _call(self, request: Request, idempotent: bool = False) -> Dict[str, Any]:
        return self._with_retries(lambda: self._send(request), idempotent=idempotent)

    def _backoff_delay(self, attempt: int) -> float:
        """Jittered exponential delay before retry number *attempt* (0-based)."""
        base = min(self.max_backoff, self.backoff * (2 ** attempt))
        return base * (0.5 + random.random() / 2)

    def _with_retries(self, send: Callable[[], Any], idempotent: bool) -> Any:
        """Run *send*, retrying the failures that retrying can actually fix.

        * ``rate-limited`` / ``quota-exceeded`` answers carrying a
          ``retry_after`` hint are retried on *every* call — the server
          itself promised the condition is temporary — sleeping at least
          the hinted interval.  Without the hint (e.g. an oversized
          corpus) the error is permanent and re-raises immediately.
        * Transport failures and opaque ``internal`` errors are retried
          only on idempotent calls: a submission that died mid-flight may
          still have been queued, and resending it is not the client's
          decision to make.
        """
        attempt = 0
        while True:
            try:
                return send()
            except (RateLimited, QuotaExceeded) as exc:
                retry_after = exc.retry_after
                if retry_after is None or attempt >= self.retries:
                    raise
                delay = max(retry_after, self._backoff_delay(attempt))
            except TransportError:
                if not idempotent or attempt >= self.retries:
                    raise
                delay = self._backoff_delay(attempt)
            except ServiceError as exc:
                # Only the opaque catch-all ("internal") is plausibly
                # transient; typed subclasses are deliberate answers.
                if type(exc) is not ServiceError or not idempotent or attempt >= self.retries:
                    raise
                delay = self._backoff_delay(attempt)
            attempt += 1
            time.sleep(delay)

    @staticmethod
    def _spec_payload(spec: SpecLike) -> Dict[str, Any]:
        return coerce_spec(spec).to_dict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """The server's health snapshot (uptime, job counts, recovery info).

        Includes the warm-routing fields: ``queue_depth`` plus the
        ``matrix_cache`` / ``pair_store`` hit-rate summaries (``None``
        for a disabled layer).
        """
        return self._call(HealthRequest(), idempotent=True)

    def specs(self) -> Dict[str, Any]:
        """Registered kernel kinds and the server session's warm specs."""
        return self._call(SpecsRequest(), idempotent=True)

    def cache_stats(self) -> Dict[str, Any]:
        """The server's persistent cache state and counters.

        ``enabled`` is ``False`` when the server runs without a matrix
        result cache; otherwise the top level carries entry counts,
        payload bytes and the hit/extension/miss/store/eviction counters
        of :meth:`MatrixCache.stats
        <repro.core.cachestore.MatrixCache.stats>`.  The ``pair_store``
        key reports the pair-value store the same way (its own
        ``enabled`` flag plus :meth:`PairStore.stats
        <repro.core.pairstore.PairStore.stats>`).
        """
        response = self._call(CacheStatsRequest(), idempotent=True)
        return {key: value for key, value in response.items() if key not in ("v", "ok", "type")}

    def metrics_text(self) -> str:
        """The server's ``GET /metrics`` Prometheus page (HTTP transport only).

        Fleet-aggregated: the server merges its own registry with every
        worker snapshot in the shared state dir, one ``origin`` label per
        process.  Raises a :class:`ServiceError` over transports without a
        GET side channel (stdio).
        """
        fetch = getattr(self.transport, "fetch_text", None)
        if fetch is None:
            raise ServiceError(
                "metrics are only available over the HTTP transport (GET /metrics)"
            )
        return self._with_retries(lambda: fetch("/metrics"), idempotent=True)

    # ------------------------------------------------------------------
    # Job handles
    # ------------------------------------------------------------------
    def submit(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        repair: bool = True,
        shards: Optional[int] = None,
        distributed: bool = False,
        use_cache: bool = True,
        trace_id: Optional[str] = None,
    ) -> str:
        """Queue a matrix job; returns its id.

        ``shards > 1`` block-shards the evaluation; ``distributed=True``
        additionally persists the blocks as leasable worker tasks, so
        ``repro-iokast worker`` processes sharing the server's state dir
        execute them (values stay bit-identical either way).
        ``use_cache=False`` makes the server bypass its persistent result
        cache and re-evaluate every kernel pair.  An identical submission
        already in flight is *coalesced*: the returned id names the job
        the equal submissions share.  *trace_id* (client-minted by default)
        follows the job through server, block records, and worker logs.
        """
        response = self._call(
            SubmitMatrixRequest(
                spec=self._spec_payload(spec),
                strings=tuple(encode_corpus(strings)),
                normalized=normalized,
                repair=repair,
                shards=shards,
                distributed=distributed,
                use_cache=use_cache,
                trace_id=trace_id or new_trace_id(),
            )
        )
        return str(response["job_id"])

    def submit_analyze(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        n_clusters: int = 3,
        n_components: int = 2,
        linkage: str = "single",
        trace_id: Optional[str] = None,
    ) -> str:
        """Queue a full pipeline run; returns its job id."""
        response = self._call(
            SubmitAnalyzeRequest(
                spec=self._spec_payload(spec),
                strings=tuple(encode_corpus(strings)),
                n_clusters=n_clusters,
                n_components=n_components,
                linkage=linkage,
                trace_id=trace_id or new_trace_id(),
            )
        )
        return str(response["job_id"])

    def submit_fit_model(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        name: str,
        landmarks: int = 16,
        strategy: str = "kcenter",
        seed: int = 2017,
        n_components: int = 2,
        n_clusters: Optional[int] = None,
        use_cache: bool = True,
        trace_id: Optional[str] = None,
    ) -> str:
        """Queue a streaming landmark-model fit; returns its job id."""
        response = self._call(
            FitModelRequest(
                spec=self._spec_payload(spec),
                strings=tuple(encode_corpus(strings)),
                name=name,
                landmarks=landmarks,
                strategy=strategy,
                seed=seed,
                n_components=n_components,
                n_clusters=n_clusters,
                use_cache=use_cache,
                trace_id=trace_id or new_trace_id(),
            )
        )
        return str(response["job_id"])

    def status(self, job_id: str) -> str:
        """The job's store status (``queued``/``running``/``done``/...)."""
        return str(self._call(StatusRequest(job_id=job_id), idempotent=True)["status"])

    def _result_response(
        self, job_id: str, timeout: Optional[float] = None, forget: bool = False
    ) -> Dict[str, Any]:
        """Poll for a job's full result envelope (payload + metadata)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        poll_wait = self._clamped_poll_wait()
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise JobTimeout(job_id, timeout)
            wait = poll_wait if remaining is None else max(0.0, min(poll_wait, remaining))
            try:
                response = self._call(
                    ResultRequest(job_id=job_id, wait=wait, forget=forget),
                    idempotent=not forget,
                )
            except JobPending:
                continue
            payload = response.get("payload")
            if not isinstance(payload, dict):
                raise ServiceError(f"job {job_id!r} returned a malformed result payload")
            return response

    def result_payload(
        self, job_id: str, timeout: Optional[float] = None, forget: bool = False
    ) -> Dict[str, Any]:
        """Block (poll) for a job's raw payload dict.

        Each poll asks the server to wait a short interval server-side, so
        the client does not busy-loop; *timeout* bounds the total wait and
        raises :class:`~repro.api.session.JobTimeout` carrying the job id.
        """
        return self._result_response(job_id, timeout=timeout, forget=forget)["payload"]

    def result(
        self, job_id: str, timeout: Optional[float] = None, forget: bool = False
    ) -> Union[KernelMatrix, Dict[str, Any]]:
        """A job's decoded result: matrices as :class:`KernelMatrix`, else the dict."""
        payload = self.result_payload(job_id, timeout=timeout, forget=forget)
        if "values" in payload and "names" in payload:
            return KernelMatrix.from_dict(payload)
        return payload

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job (typed ``cannot-cancel`` error if it started)."""
        return self._call(CancelRequest(job_id=job_id))["status"] == "cancelled"

    # ------------------------------------------------------------------
    # Blocking conveniences (the session look-alikes)
    # ------------------------------------------------------------------
    def matrix(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        repair: bool = True,
        shards: Optional[int] = None,
        distributed: bool = False,
        use_cache: bool = True,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> KernelMatrix:
        """Compute a labelled kernel matrix remotely (submit + wait + decode).

        The finished job is forgotten server-side after delivery, matching
        the one-shot semantics of :meth:`AnalysisSession.matrix`.
        """
        return KernelMatrix.from_dict(
            self.matrix_job(
                spec, strings, normalized=normalized, repair=repair, shards=shards,
                distributed=distributed, use_cache=use_cache, timeout=timeout,
                trace_id=trace_id,
            )["payload"]
        )

    def matrix_payload(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        repair: bool = True,
        shards: Optional[int] = None,
        distributed: bool = False,
        use_cache: bool = True,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Like :meth:`matrix` but returning the stamped wire payload."""
        return self.matrix_job(
            spec, strings, normalized=normalized, repair=repair, shards=shards,
            distributed=distributed, use_cache=use_cache, timeout=timeout,
            trace_id=trace_id,
        )["payload"]

    def matrix_job(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        repair: bool = True,
        shards: Optional[int] = None,
        distributed: bool = False,
        use_cache: bool = True,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit + wait, returning ``{"job_id", "payload", "cache", "trace_id"}``.

        ``cache`` is the server's result-cache outcome for the job —
        ``"hit"``, ``"extended"``, ``"miss"`` or ``"bypass"`` (``None``
        when talking to a server predating the cache).  ``trace_id`` is the
        id the job ran under (the caller's, or a freshly minted one).  The
        payload is bit-identical across all outcomes.
        """
        job_id = self.submit(
            spec, strings, normalized=normalized, repair=repair, shards=shards,
            distributed=distributed, use_cache=use_cache, trace_id=trace_id,
        )
        response = self._result_response(job_id, timeout=timeout, forget=True)
        return {
            "job_id": job_id,
            "payload": response["payload"],
            "cache": response.get("cache"),
            "trace_id": response.get("trace_id"),
        }

    def analyze(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        n_clusters: int = 3,
        n_components: int = 2,
        linkage: str = "single",
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Run the full pipeline remotely; returns the metrics/assignments report."""
        return self.analyze_job(
            spec, strings, n_clusters=n_clusters, n_components=n_components,
            linkage=linkage, timeout=timeout, trace_id=trace_id,
        )["payload"]

    def analyze_job(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        n_clusters: int = 3,
        n_components: int = 2,
        linkage: str = "single",
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit + wait a pipeline run: ``{"job_id", "payload", "cache", "trace_id"}``.

        ``cache`` is the matrix-stage result-cache outcome (``"hit"`` /
        ``"extended"`` / ``"miss"`` / ``"bypass"``, ``None`` from a server
        predating the stamp) — the same envelope field :meth:`matrix_job`
        reports, so remote analyses are auditable the same way.
        """
        job_id = self.submit_analyze(
            spec, strings, n_clusters=n_clusters, n_components=n_components,
            linkage=linkage, trace_id=trace_id,
        )
        response = self._result_response(job_id, timeout=timeout, forget=True)
        return {
            "job_id": job_id,
            "payload": response["payload"],
            "cache": response.get("cache"),
            "trace_id": response.get("trace_id"),
        }

    # ------------------------------------------------------------------
    # Streaming serving (landmark models)
    # ------------------------------------------------------------------
    def fit_model(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        name: str,
        landmarks: int = 16,
        strategy: str = "kcenter",
        seed: int = 2017,
        n_components: int = 2,
        n_clusters: Optional[int] = None,
        use_cache: bool = True,
        timeout: Optional[float] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Fit and persist a landmark model server-side (submit + wait).

        Returns ``{"job_id", "payload", "cache", "trace_id"}`` where the
        payload is the stored model's summary and ``cache`` the fitting
        Gram's result-cache outcome.
        """
        job_id = self.submit_fit_model(
            spec, strings, name=name, landmarks=landmarks, strategy=strategy,
            seed=seed, n_components=n_components, n_clusters=n_clusters,
            use_cache=use_cache, trace_id=trace_id,
        )
        response = self._result_response(job_id, timeout=timeout, forget=True)
        return {
            "job_id": job_id,
            "payload": response["payload"],
            "cache": response.get("cache"),
            "trace_id": response.get("trace_id"),
        }

    def classify(
        self,
        name: str,
        strings: Sequence[WeightedString],
        embed: bool = False,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Classify traces against stored model *name* (synchronous).

        The response dict carries ``results`` (one ``{"name", "label",
        "scores", "kernel_evals", "warm"}`` entry per input trace, plus
        ``"embedding"`` with ``embed=True``), the request's total
        ``kernel_evals``/``warm_traces`` and its server-side latency.
        """
        response = self._call(
            ClassifyRequest(
                name=name,
                strings=tuple(encode_corpus(strings)),
                embed=embed,
                trace_id=trace_id or new_trace_id(),
            )
        )
        return {key: value for key, value in response.items() if key not in ("v", "ok", "type")}

    def models(self) -> Dict[str, Any]:
        """The server's stored landmark models with their serve counters."""
        response = self._call(ModelsRequest(), idempotent=True)
        return {key: value for key, value in response.items() if key not in ("v", "ok", "type")}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ServiceClient(transport={self.transport!r})"
