"""Per-tenant namespacing of the service's state and resource budgets.

One server process serves many tenants; each authenticated tenant resolves
to a :class:`TenantContext` — its own namespace under
``<state-dir>/tenants/<tenant>/`` holding a private
:class:`~repro.service.jobstore.JobStore`, a private
:class:`~repro.api.session.AnalysisSession` (with its own
:class:`~repro.core.cachestore.MatrixCache` and
:class:`~repro.core.pairstore.PairStore`), and a private
:class:`~repro.streaming.store.ModelStore`.  Nothing is shared across
namespaces: two tenants submitting the identical corpus each pay for (and
each keep) their own cache entries, pair values and models, so no tenant
can observe — or warm — another tenant's traffic.

The *default* tenant is special: its namespace is the state directory
itself, which is exactly the single-tenant layout every deployment before
tenancy used.  A server with auth disabled routes every request to the
default tenant, so existing state dirs, tests and tools keep working
unchanged.

:class:`TenantQuotas` bounds a tenant's resource use (request rate through
a :class:`TokenBucket`, queued jobs, corpus size); the quota middleware
turns an exhausted budget into the typed ``rate-limited`` /
``quota-exceeded`` wire errors.
"""

from __future__ import annotations

import os
import re
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.service.protocol import BadRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (server builds contexts)
    from repro.api.session import AnalysisSession
    from repro.service.jobstore import JobStore
    from repro.streaming.scorer import StreamingScorer
    from repro.streaming.store import ModelStore

__all__ = [
    "DEFAULT_TENANT",
    "TENANT_ID_PATTERN",
    "TenantQuotas",
    "TokenBucket",
    "TenantContext",
    "TenantRegistry",
    "valid_tenant_id",
]

#: The tenant every unauthenticated deployment serves; its namespace is the
#: state directory itself (the pre-tenancy layout).
DEFAULT_TENANT = "default"

#: Tenant ids become path components under ``<state-dir>/tenants/`` and
#: metric label values — same charset rule as model names.
TENANT_ID_PATTERN = r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$"

#: Directory (under the state dir) holding the non-default tenant namespaces.
TENANTS_DIRNAME = "tenants"


def valid_tenant_id(value: Any) -> bool:
    """Whether *value* is a syntactically valid (path-safe) tenant id."""
    return isinstance(value, str) and re.match(TENANT_ID_PATTERN, value) is not None


def require_tenant_id(value: Any) -> str:
    """Validate a tenant id (typed ``bad-request`` on junk)."""
    if not valid_tenant_id(value):
        raise BadRequest(f"tenant id must match {TENANT_ID_PATTERN}, got {value!r}")
    return str(value)


@dataclass(frozen=True)
class TenantQuotas:
    """Resource bounds applied to one tenant (``None`` = unlimited).

    ``requests_per_second`` feeds a :class:`TokenBucket` (with ``burst``
    capacity, default twice the rate); ``max_queued_jobs`` bounds the
    tenant's live (queued + running) job records; ``max_corpus_strings``
    bounds the inline corpus size of one submission.
    """

    requests_per_second: Optional[float] = None
    burst: Optional[int] = None
    max_queued_jobs: Optional[int] = None
    max_corpus_strings: Optional[int] = None

    def __post_init__(self) -> None:
        if self.requests_per_second is not None and self.requests_per_second <= 0:
            raise ValueError(f"requests_per_second must be > 0, got {self.requests_per_second}")
        if self.burst is not None and self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        if self.max_queued_jobs is not None and self.max_queued_jobs < 1:
            raise ValueError(f"max_queued_jobs must be >= 1, got {self.max_queued_jobs}")
        if self.max_corpus_strings is not None and self.max_corpus_strings < 1:
            raise ValueError(f"max_corpus_strings must be >= 1, got {self.max_corpus_strings}")

    @property
    def unlimited(self) -> bool:
        return (
            self.requests_per_second is None
            and self.max_queued_jobs is None
            and self.max_corpus_strings is None
        )

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "TenantQuotas":
        """Build quotas from a ``tenants.json`` ``quotas`` object."""
        unknown = set(payload) - {
            "requests_per_second", "burst", "max_queued_jobs", "max_corpus_strings",
        }
        if unknown:
            raise ValueError(f"unknown quota keys {sorted(unknown)}")
        try:
            return TenantQuotas(
                requests_per_second=(
                    float(payload["requests_per_second"])
                    if payload.get("requests_per_second") is not None else None
                ),
                burst=int(payload["burst"]) if payload.get("burst") is not None else None,
                max_queued_jobs=(
                    int(payload["max_queued_jobs"])
                    if payload.get("max_queued_jobs") is not None else None
                ),
                max_corpus_strings=(
                    int(payload["max_corpus_strings"])
                    if payload.get("max_corpus_strings") is not None else None
                ),
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"invalid quota values: {exc}") from exc


class TokenBucket:
    """Classic token-bucket rate limiter (thread-safe, monotonic clock).

    ``rate`` tokens refill per second up to ``capacity``; :meth:`acquire`
    takes one token and returns ``None``, or returns the seconds until a
    token will be available (the wire's ``retry_after``) without blocking.
    """

    def __init__(self, rate: float, capacity: Optional[int] = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.capacity = float(capacity if capacity is not None else max(1, int(rate * 2)))
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._tokens = self.capacity
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def acquire(self) -> Optional[float]:
        """Take one token; ``None`` on success, else seconds until retry."""
        with self._lock:
            now = time.monotonic()
            self._tokens = min(self.capacity, self._tokens + (now - self._updated) * self.rate)
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return None
            return max(0.001, (1.0 - self._tokens) / self.rate)


class TenantContext:
    """One tenant's complete server-side state.

    Everything :class:`~repro.service.server.AnalysisServer` used to hold
    as instance attributes lives here, once per tenant: the job store, the
    warm session (which owns the tenant's matrix cache and pair store),
    the model store, the warm scorer cache, the per-model serve counters,
    the in-flight coalescing map and result-waiter counts, and the
    tenant's rate-limit bucket.
    """

    def __init__(
        self,
        tenant_id: str,
        root: str,
        store: "JobStore",
        session: "AnalysisSession",
        model_store: "ModelStore",
        quotas: Optional[TenantQuotas] = None,
        owns_session: bool = True,
    ) -> None:
        self.tenant_id = require_tenant_id(tenant_id)
        self.root = root
        self.store = store
        self.session = session
        self.model_store = model_store
        self.quotas = quotas if quotas is not None else TenantQuotas()
        self.owns_session = owns_session
        #: Warm scorers keyed by model name (mtime-invalidated).
        self.scorers: Dict[str, Tuple[float, "StreamingScorer"]] = {}
        #: Per-model serve counters (requests, traces, warm traces, ...).
        self.model_metrics: Dict[str, Dict[str, float]] = {}
        #: Store job id -> session job handle for jobs running here.
        self.session_jobs: Dict[str, str] = {}
        #: In-flight coalescing: submission identity -> shared job id.
        self.inflight: Dict[str, str] = {}
        #: Waiter counts behind forget-once-collected semantics.
        self.result_waiters: Dict[str, int] = {}
        self.lock = threading.Lock()
        self.bucket: Optional[TokenBucket] = (
            TokenBucket(self.quotas.requests_per_second, self.quotas.burst)
            if self.quotas.requests_per_second is not None
            else None
        )

    @property
    def is_default(self) -> bool:
        return self.tenant_id == DEFAULT_TENANT

    def live_job_count(self) -> int:
        """Queued + running records (the ``max_queued_jobs`` quota basis).

        Block tasks are excluded: they are internal shards of one already
        admitted job, not separately submitted work.
        """
        return sum(
            1
            for record in self.store.records()
            if record.status in ("queued", "running") and record.kind != "block"
        )

    def close(self) -> None:
        if self.owns_session:
            self.session.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"TenantContext(tenant_id={self.tenant_id!r}, root={self.root!r})"


class TenantRegistry:
    """Lazy, thread-safe map of tenant id → :class:`TenantContext`.

    The default tenant's context is supplied up front (it wraps the
    server's own session and state-dir-rooted stores); every other tenant
    is built on first use by the *factory* the server provides, rooted at
    ``<state-dir>/tenants/<tenant>/``.  :meth:`discover` lists namespaces
    already on disk, so a restarted server re-adopts every tenant's queued
    jobs, not just the default tenant's.
    """

    def __init__(
        self,
        state_dir: str,
        default_context: TenantContext,
        factory: Callable[[str, str, Optional[TenantQuotas]], TenantContext],
        default_quotas: Optional[TenantQuotas] = None,
        quota_overrides: Optional[Mapping[str, TenantQuotas]] = None,
    ) -> None:
        self.state_dir = state_dir
        self.tenants_dir = os.path.join(state_dir, TENANTS_DIRNAME)
        self._factory = factory
        self.default_quotas = default_quotas if default_quotas is not None else TenantQuotas()
        self._quota_overrides = dict(quota_overrides or {})
        self._contexts: Dict[str, TenantContext] = {default_context.tenant_id: default_context}
        self._lock = threading.Lock()

    def quotas_for(self, tenant_id: str) -> TenantQuotas:
        return self._quota_overrides.get(tenant_id, self.default_quotas)

    def root_for(self, tenant_id: str) -> str:
        """The namespace directory of *tenant_id* (never created here)."""
        require_tenant_id(tenant_id)
        if tenant_id == DEFAULT_TENANT:
            return self.state_dir
        return os.path.join(self.tenants_dir, tenant_id)

    def context(self, tenant_id: str) -> TenantContext:
        """The (lazily created) context of *tenant_id*."""
        tenant_id = require_tenant_id(tenant_id)
        with self._lock:
            existing = self._contexts.get(tenant_id)
            if existing is not None:
                return existing
        # Build outside the registry lock (store recovery and session
        # construction touch the disk); racing builders are reconciled below.
        built = self._factory(tenant_id, self.root_for(tenant_id), self.quotas_for(tenant_id))
        with self._lock:
            existing = self._contexts.get(tenant_id)
            if existing is not None:
                built.close()
                return existing
            self._contexts[tenant_id] = built
            return built

    def peek(self, tenant_id: str) -> Optional[TenantContext]:
        """The live context of *tenant_id*, or ``None`` (never builds one)."""
        with self._lock:
            return self._contexts.get(tenant_id)

    def contexts(self) -> List[TenantContext]:
        """Every live context (default tenant first, then sorted by id)."""
        with self._lock:
            live = list(self._contexts.values())
        return sorted(live, key=lambda context: (not context.is_default, context.tenant_id))

    def discover(self) -> List[str]:
        """Tenant ids with a namespace directory on disk (default excluded)."""
        try:
            names = sorted(os.listdir(self.tenants_dir))
        except OSError:
            return []
        return [
            name
            for name in names
            if valid_tenant_id(name) and os.path.isdir(os.path.join(self.tenants_dir, name))
        ]

    @property
    def multi_tenant(self) -> bool:
        """Whether any non-default namespace is live."""
        with self._lock:
            return any(tenant_id != DEFAULT_TENANT for tenant_id in self._contexts)

    def close(self) -> None:
        """Close every non-default context (the server closes the default)."""
        for context in self.contexts():
            if not context.is_default:
                context.close()
