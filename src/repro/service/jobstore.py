"""Crash-safe on-disk job store backing the analysis server.

Each job owns two files under the server's state directory::

    state_dir/
        jobs/<job_id>.json        # small record: kind, status, spec, error
        payloads/<job_id>.json    # the stamped result payload (written once)
        quarantine/               # damaged files moved here, never trusted

Every write goes through an atomic temp-file + ``os.replace`` dance, so a
crash leaves either the old file or the new file — never a torn one — and
result payloads are checksum-stamped into their record
(``payload_sha256``), so a payload that *was* torn (e.g. written by an
older, non-atomic tool, or truncated by a full disk) is detected on the
next start-up, moved to ``quarantine/`` and reported instead of served.

Start-up recovery (:meth:`JobStore.recover`, run by the constructor):

* unparseable record files are quarantined (with their payload);
* ``done`` records whose payload is missing or fails its checksum have the
  damaged payload quarantined and the record flipped to ``error``;
* orphan payload files without a record are quarantined;
* jobs still ``queued``/``running`` from a previous process are marked
  ``interrupted`` — the work died with the old server, but the record (and
  its error message) remains answerable.

The store is transport- and session-agnostic: it never imports the server
or the protocol, so it can be reused by other front ends (and tested in
isolation).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["JOB_STATUSES", "JobRecord", "JobStore", "JobStoreError", "RecoveryReport"]

#: Every status a stored job can be in.  ``queued → running → done|error|
#: cancelled`` in one server life; ``interrupted`` is stamped by recovery.
JOB_STATUSES = ("queued", "running", "done", "error", "cancelled", "interrupted")

#: Statuses a job can never leave.
TERMINAL_STATUSES = frozenset({"done", "error", "cancelled", "interrupted"})


class JobStoreError(RuntimeError):
    """Raised for invalid store operations or damaged stored state."""


def _payload_checksum(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _write_text_atomic(path: str, text: str) -> None:
    temporary = f"{path}.tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


@dataclass(frozen=True)
class JobRecord:
    """One job's durable metadata (everything except the result payload)."""

    job_id: str
    kind: str
    status: str = "queued"
    spec: Optional[Dict[str, Any]] = None
    options: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    payload_sha256: Optional[str] = None
    created_at: float = 0.0
    updated_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise JobStoreError("job_id must be non-empty")
        if self.status not in JOB_STATUSES:
            raise JobStoreError(f"unknown job status {self.status!r}; expected one of {JOB_STATUSES}")

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal status."""
        return self.status in TERMINAL_STATUSES

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "spec": self.spec,
            "options": dict(self.options),
            "error": self.error,
            "payload_sha256": self.payload_sha256,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobRecord":
        if not isinstance(payload, Mapping):
            raise JobStoreError(f"job record must be a mapping, got {type(payload).__name__}")
        unknown = set(payload) - {
            "job_id", "kind", "status", "spec", "options", "error",
            "payload_sha256", "created_at", "updated_at",
        }
        if unknown:
            raise JobStoreError(f"job record has unknown keys {sorted(unknown)}")
        spec = payload.get("spec")
        if spec is not None and not isinstance(spec, Mapping):
            raise JobStoreError("job record 'spec' must be an object or null")
        options = payload.get("options", {})
        if not isinstance(options, Mapping):
            raise JobStoreError("job record 'options' must be an object")
        try:
            return cls(
                job_id=str(payload.get("job_id", "")),
                kind=str(payload.get("kind", "job")),
                status=str(payload.get("status", "queued")),
                spec=dict(spec) if spec is not None else None,
                options=dict(options),
                error=str(payload["error"]) if payload.get("error") is not None else None,
                payload_sha256=(
                    str(payload["payload_sha256"]) if payload.get("payload_sha256") is not None else None
                ),
                created_at=float(payload.get("created_at", 0.0)),
                updated_at=float(payload.get("updated_at", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            # e.g. a non-numeric timestamp: the record is damaged, and the
            # recovery contract requires quarantine, not a start-up crash.
            raise JobStoreError(f"job record has malformed fields: {exc}") from exc


@dataclass(frozen=True)
class RecoveryReport:
    """What start-up recovery found: quarantined files and interrupted jobs."""

    quarantined: Tuple[Tuple[str, str], ...] = ()
    interrupted: Tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"recovered state dir: {len(self.quarantined)} file(s) quarantined, "
            f"{len(self.interrupted)} job(s) interrupted"
        )


class JobStore:
    """Directory-backed store of job records and result payloads."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.payloads_dir = os.path.join(self.root, "payloads")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        for directory in (self.jobs_dir, self.payloads_dir, self.quarantine_dir):
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        #: Report of the recovery pass run over pre-existing state.
        self.recovery = self.recover()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _record_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _payload_path(self, job_id: str) -> str:
        return os.path.join(self.payloads_dir, f"{job_id}.json")

    def _quarantine(self, path: str, reason: str) -> Optional[Tuple[str, str]]:
        """Move *path* into the quarantine directory (collision-safe)."""
        if not os.path.exists(path):
            return None
        name = os.path.basename(path)
        target = os.path.join(self.quarantine_dir, name)
        counter = 0
        while os.path.exists(target):
            counter += 1
            target = os.path.join(self.quarantine_dir, f"{name}.{counter}")
        os.replace(path, target)
        return (name, reason)

    # ------------------------------------------------------------------
    # Record lifecycle
    # ------------------------------------------------------------------
    def new_job_id(self, kind: str) -> str:
        """A collision-free job id, unique across server restarts."""
        return f"{kind}-{uuid.uuid4().hex[:12]}"

    def create(
        self,
        kind: str,
        spec: Optional[Mapping[str, Any]] = None,
        options: Optional[Mapping[str, Any]] = None,
        job_id: Optional[str] = None,
    ) -> JobRecord:
        """Persist a new ``queued`` record and return it."""
        now = time.time()
        record = JobRecord(
            job_id=job_id or self.new_job_id(kind),
            kind=kind,
            status="queued",
            spec=dict(spec) if spec is not None else None,
            options=dict(options or {}),
            created_at=now,
            updated_at=now,
        )
        with self._lock:
            if os.path.exists(self._record_path(record.job_id)):
                raise JobStoreError(f"job {record.job_id!r} already exists")
            self._write_record(record)
        return record

    def _write_record(self, record: JobRecord) -> None:
        _write_text_atomic(
            self._record_path(record.job_id),
            json.dumps(record.to_dict(), indent=2, sort_keys=True),
        )

    def get(self, job_id: str) -> JobRecord:
        """The stored record for *job_id* (:class:`KeyError` when absent)."""
        path = self._record_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise KeyError(f"unknown job id {job_id!r}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise JobStoreError(f"job record {job_id!r} is unreadable: {exc}") from exc
        return JobRecord.from_dict(payload)

    def update(self, job_id: str, **changes: Any) -> JobRecord:
        """Apply field changes to a record (terminal statuses are final)."""
        with self._lock:
            record = self.get(job_id)
            if record.finished and changes.get("status") not in (None, record.status):
                raise JobStoreError(
                    f"job {job_id!r} is {record.status} and cannot move to {changes['status']!r}"
                )
            record = replace(record, updated_at=time.time(), **changes)
            self._write_record(record)
        return record

    def mark_running(self, job_id: str) -> JobRecord:
        return self.update(job_id, status="running")

    def mark_error(self, job_id: str, error: str) -> JobRecord:
        return self.update(job_id, status="error", error=str(error))

    def mark_cancelled(self, job_id: str) -> JobRecord:
        return self.update(job_id, status="cancelled")

    def records(self) -> List[JobRecord]:
        """Every stored record, oldest first."""
        records: List[JobRecord] = []
        for name in os.listdir(self.jobs_dir):
            if name.endswith(".json"):
                try:
                    records.append(self.get(name[: -len(".json")]))
                except (KeyError, JobStoreError):
                    continue
        return sorted(records, key=lambda record: (record.created_at, record.job_id))

    def forget(self, job_id: str) -> bool:
        """Drop a finished job's record and payload; returns whether dropped."""
        with self._lock:
            try:
                record = self.get(job_id)
            except KeyError:
                return False
            if not record.finished:
                return False
            for path in (self._payload_path(job_id), self._record_path(job_id)):
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
        return True

    # ------------------------------------------------------------------
    # Result payloads
    # ------------------------------------------------------------------
    def store_result(self, job_id: str, payload: Mapping[str, Any]) -> JobRecord:
        """Persist a job's result payload and flip the record to ``done``.

        The payload file lands first (atomically), then the record is
        updated with the payload checksum and the ``done`` status — so a
        crash between the two writes leaves a ``running`` record recovery
        will mark interrupted, never a ``done`` record without its payload.
        """
        text = json.dumps(dict(payload), sort_keys=True)
        _write_text_atomic(self._payload_path(job_id), text)
        return self.update(job_id, status="done", payload_sha256=_payload_checksum(text), error=None)

    def load_result(self, job_id: str) -> Dict[str, Any]:
        """Load (and checksum-verify) the stored result of a ``done`` job."""
        record = self.get(job_id)
        if record.status != "done":
            raise JobStoreError(f"job {job_id!r} is {record.status}, not done; no result to load")
        path = self._payload_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            payload = json.loads(text)
        except (OSError, json.JSONDecodeError) as exc:
            self._quarantine(path, f"unreadable payload: {exc}")
            self.mark_damaged(job_id, f"result payload unreadable: {exc}")
            raise JobStoreError(f"result payload of job {job_id!r} is damaged and was quarantined") from exc
        if record.payload_sha256 is not None and _payload_checksum(text) != record.payload_sha256:
            self._quarantine(path, "payload checksum mismatch")
            self.mark_damaged(job_id, "result payload failed its checksum")
            raise JobStoreError(
                f"result payload of job {job_id!r} failed its checksum and was quarantined"
            )
        if not isinstance(payload, dict):
            self._quarantine(path, "payload is not an object")
            self.mark_damaged(job_id, "result payload is not a JSON object")
            raise JobStoreError(f"result payload of job {job_id!r} is not a JSON object")
        return payload

    def mark_damaged(self, job_id: str, error: str) -> JobRecord:
        """Force a record to ``error`` after its payload proved unusable."""
        with self._lock:
            record = self.get(job_id)
            record = replace(
                record, status="error", error=str(error), payload_sha256=None, updated_at=time.time()
            )
            self._write_record(record)
        return record

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Scan the state dir, quarantine damage, mark interrupted jobs."""
        quarantined: List[Tuple[str, str]] = []
        interrupted: List[str] = []
        known_ids = set()
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            job_id = name[: -len(".json")]
            record_path = self._record_path(job_id)
            try:
                record = self.get(job_id)
            except (JobStoreError, KeyError) as exc:
                moved = self._quarantine(record_path, f"unreadable record: {exc}")
                if moved:
                    quarantined.append(moved)
                moved = self._quarantine(self._payload_path(job_id), "payload of unreadable record")
                if moved:
                    quarantined.append(moved)
                continue
            known_ids.add(job_id)
            if record.status == "done":
                damage = self._verify_payload(record)
                if damage is not None:
                    moved = self._quarantine(self._payload_path(job_id), damage)
                    if moved:
                        quarantined.append(moved)
                    self.mark_damaged(job_id, f"recovery: {damage}")
            elif record.status in ("queued", "running"):
                self.update(
                    job_id,
                    status="interrupted",
                    error="interrupted by server restart before completion",
                )
                interrupted.append(job_id)
        for name in sorted(os.listdir(self.payloads_dir)):
            if name.endswith(".tmp"):
                moved = self._quarantine(
                    os.path.join(self.payloads_dir, name), "torn temporary payload"
                )
                if moved:
                    quarantined.append(moved)
                continue
            if not name.endswith(".json"):
                continue
            if name[: -len(".json")] not in known_ids:
                moved = self._quarantine(os.path.join(self.payloads_dir, name), "payload without a record")
                if moved:
                    quarantined.append(moved)
        return RecoveryReport(quarantined=tuple(quarantined), interrupted=tuple(interrupted))

    def _verify_payload(self, record: JobRecord) -> Optional[str]:
        """Reason the record's payload is unusable, or None when it is fine."""
        path = self._payload_path(record.job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return "done record has no payload file"
        except OSError as exc:
            return f"payload unreadable: {exc}"
        if record.payload_sha256 is not None and _payload_checksum(text) != record.payload_sha256:
            return "payload checksum mismatch (half-written file?)"
        try:
            json.loads(text)
        except json.JSONDecodeError as exc:
            return f"payload is not valid JSON: {exc}"
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"JobStore(root={self.root!r}, jobs={len(self.records())})"
