"""Crash-safe, multi-process on-disk job store backing the analysis service.

Each job owns files under the service's state directory::

    state_dir/
        jobs/<job_id>.json        # small record: kind, status, spec, lease, error
        payloads/<job_id>.json    # the stamped result payload (written once)
        locks/<job_id>.lock       # per-record advisory file lock
        quarantine/               # damaged files moved here, never trusted

Every write goes through an atomic temp-file + ``os.replace`` dance, so a
crash leaves either the old file or the new file — never a torn one — and
result payloads are checksum-stamped into their record
(``payload_sha256``), so a payload that *was* torn (e.g. written by an
older, non-atomic tool, or truncated by a full disk) is detected on the
next start-up, moved to ``quarantine/`` and reported instead of served.

Cross-process safety
--------------------
Several processes — servers and pull-loop workers — may share one state
directory.  Every read-modify-write (``update``, ``mutate``, ``claim``,
``store_result``, ``forget``, recovery, the sweep) runs under a
*per-record advisory file lock* (``flock`` on ``locks/<job_id>.lock``,
with an ``O_EXCL`` sidecar fallback on platforms without ``fcntl``), so
two stores interleaving a read → replace → write on the same record can
never drop each other's changes.  ``flock`` locks die with their holder,
so a SIGKILLed process never wedges the store.

Job leasing
-----------
Work is distributed by *pull*: an executor calls :meth:`JobStore.claim`
with its ``worker_id`` and a lease duration; the store atomically moves
the oldest claimable record to ``running`` stamped with the worker id and
``lease_expires_at``.  The owner extends the lease with
:meth:`renew_lease` while computing and either stores a result or gives
the job back to the queue with :meth:`release`.  A job whose lease expired
(its worker was killed or lost) is claimable again — by :meth:`claim`,
:meth:`requeue_expired`, or the next start-up recovery — so a dead worker
only ever *delays* a job, never loses it.

State machine (also enforced by :meth:`JobRecord.__post_init__` /
:meth:`update`)::

    queued ──claim──▶ running ──store_result──▶ done
      ▲                  │  │
      │   release /      │  └─mark_error──▶ error
      └── lease expiry ──┘
    queued ──cancel──▶ cancelled
    running (no lease, owner process died) ──recovery──▶ interrupted

``interrupted`` is terminal and reserved for *non-resumable* in-flight
work: a ``running`` record with no lease stamp belonged to an in-process
job whose callable died with its server.  Queued jobs and expired leases
are requeued by recovery instead — rerunning work that never completed is
always safe because results are written atomically and exactly once.

Garbage collection
------------------
:meth:`sweep` removes terminal records (and their payloads and lock
files) older than a TTL, so long-lived state directories stop growing
without bound; the server's maintenance loop and the ``repro-iokast gc``
command both call it.

The store is transport- and session-agnostic: it never imports the server
or the protocol, so it can be reused by other front ends (and tested in
isolation).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.atomicio import write_text_atomic

try:  # pragma: no cover - fcntl exists everywhere the tests run
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "JOB_STATUSES",
    "JobRecord",
    "JobStore",
    "JobStoreError",
    "LeaseError",
    "RecoveryReport",
]

#: Every status a stored job can be in.  See the module docstring for the
#: full state machine; ``interrupted`` is stamped by recovery for
#: non-resumable in-flight work only.
JOB_STATUSES = ("queued", "running", "done", "error", "cancelled", "interrupted")

#: Statuses a job can never leave.
TERMINAL_STATUSES = frozenset({"done", "error", "cancelled", "interrupted"})

#: Age after which an ``O_EXCL`` sidecar lock (fallback path only) is
#: presumed orphaned by a dead process and broken.
_SIDECAR_STALE_SECONDS = 60.0


class JobStoreError(RuntimeError):
    """Raised for invalid store operations or damaged stored state."""


class LeaseError(JobStoreError):
    """Raised when a lease operation loses to another owner (renew/release)."""


def _payload_checksum(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobRecord:
    """One job's durable metadata (everything except the result payload)."""

    job_id: str
    kind: str
    status: str = "queued"
    spec: Optional[Dict[str, Any]] = None
    options: Dict[str, Any] = field(default_factory=dict)
    input: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    payload_sha256: Optional[str] = None
    worker_id: Optional[str] = None
    lease_expires_at: Optional[float] = None
    attempts: int = 0
    created_at: float = 0.0
    updated_at: float = 0.0

    def __post_init__(self) -> None:
        if not self.job_id:
            raise JobStoreError("job_id must be non-empty")
        if self.status not in JOB_STATUSES:
            raise JobStoreError(f"unknown job status {self.status!r}; expected one of {JOB_STATUSES}")

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal status."""
        return self.status in TERMINAL_STATUSES

    def lease_expired(self, now: Optional[float] = None) -> bool:
        """Whether this is a leased ``running`` job whose lease has lapsed."""
        return (
            self.status == "running"
            and self.lease_expires_at is not None
            and self.lease_expires_at <= (time.time() if now is None else now)
        )

    def claimable(self, now: Optional[float] = None) -> bool:
        """Whether :meth:`JobStore.claim` may hand this record to a worker.

        ``queued`` records and ``running`` records with an expired lease
        are claimable; a ``running`` record *without* a lease belongs to an
        in-process job and is never reassigned.
        """
        return self.status == "queued" or self.lease_expired(now)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "spec": self.spec,
            "options": dict(self.options),
            "input": self.input,
            "error": self.error,
            "payload_sha256": self.payload_sha256,
            "worker_id": self.worker_id,
            "lease_expires_at": self.lease_expires_at,
            "attempts": self.attempts,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobRecord":
        if not isinstance(payload, Mapping):
            raise JobStoreError(f"job record must be a mapping, got {type(payload).__name__}")
        unknown = set(payload) - {
            "job_id", "kind", "status", "spec", "options", "input", "error",
            "payload_sha256", "worker_id", "lease_expires_at", "attempts",
            "created_at", "updated_at",
        }
        if unknown:
            raise JobStoreError(f"job record has unknown keys {sorted(unknown)}")
        spec = payload.get("spec")
        if spec is not None and not isinstance(spec, Mapping):
            raise JobStoreError("job record 'spec' must be an object or null")
        options = payload.get("options", {})
        if not isinstance(options, Mapping):
            raise JobStoreError("job record 'options' must be an object")
        stored_input = payload.get("input")
        if stored_input is not None and not isinstance(stored_input, Mapping):
            raise JobStoreError("job record 'input' must be an object or null")
        lease = payload.get("lease_expires_at")
        try:
            return cls(
                job_id=str(payload.get("job_id", "")),
                kind=str(payload.get("kind", "job")),
                status=str(payload.get("status", "queued")),
                spec=dict(spec) if spec is not None else None,
                options=dict(options),
                input=dict(stored_input) if stored_input is not None else None,
                error=str(payload["error"]) if payload.get("error") is not None else None,
                payload_sha256=(
                    str(payload["payload_sha256"]) if payload.get("payload_sha256") is not None else None
                ),
                worker_id=str(payload["worker_id"]) if payload.get("worker_id") is not None else None,
                lease_expires_at=float(lease) if lease is not None else None,
                attempts=int(payload.get("attempts", 0)),
                created_at=float(payload.get("created_at", 0.0)),
                updated_at=float(payload.get("updated_at", 0.0)),
            )
        except (TypeError, ValueError) as exc:
            # e.g. a non-numeric timestamp: the record is damaged, and the
            # recovery contract requires quarantine, not a start-up crash.
            raise JobStoreError(f"job record has malformed fields: {exc}") from exc


@dataclass(frozen=True)
class RecoveryReport:
    """What start-up recovery found and did.

    ``requeued`` are queued / expired-lease jobs put back on the queue;
    ``interrupted`` are non-resumable in-flight jobs (running, no lease)
    dead-ended because their callable died with its process.
    """

    quarantined: Tuple[Tuple[str, str], ...] = ()
    interrupted: Tuple[str, ...] = ()
    requeued: Tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"recovered state dir: {len(self.quarantined)} file(s) quarantined, "
            f"{len(self.requeued)} job(s) requeued, "
            f"{len(self.interrupted)} job(s) interrupted"
        )


class JobStore:
    """Directory-backed store of job records and result payloads.

    Parameters
    ----------
    root:
        The state directory (created if missing).
    recover:
        Whether to run the start-up recovery pass (quarantine damage,
        requeue abandoned work).  Servers recover; pull-loop *workers*
        joining a live state dir must pass ``False`` — recovery is the
        owner's job, and a worker must not requeue records the serving
        process is legitimately running.
    """

    def __init__(self, root: str, recover: bool = True) -> None:
        self.root = os.path.abspath(root)
        self.jobs_dir = os.path.join(self.root, "jobs")
        self.payloads_dir = os.path.join(self.root, "payloads")
        self.locks_dir = os.path.join(self.root, "locks")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        for directory in (self.jobs_dir, self.payloads_dir, self.locks_dir, self.quarantine_dir):
            os.makedirs(directory, exist_ok=True)
        # Process-local lifecycle counters (created/claims/releases/...);
        # see :meth:`counters`.  Initialised before recovery so the recovery
        # pass's own mutations count too.
        self._counts_lock = threading.Lock()
        self._counts: Dict[str, int] = {
            "created": 0,
            "claims": 0,
            "releases": 0,
            "lease_requeues": 0,
            "results": 0,
            "errors": 0,
            "forgotten": 0,
            "swept": 0,
        }
        #: Report of the recovery pass run over pre-existing state.
        self.recovery = self.recover() if recover else RecoveryReport()

    def _count(self, key: str, amount: int = 1) -> None:
        with self._counts_lock:
            self._counts[key] = self._counts.get(key, 0) + amount

    def counters(self) -> Dict[str, int]:
        """This process's lifecycle counters (cheap — no disk access).

        Counts cover only operations performed *through this store object*;
        sibling processes sharing the state dir keep their own counts and
        the metrics layer merges them per origin.
        """
        with self._counts_lock:
            return dict(self._counts)

    # ------------------------------------------------------------------
    # Paths and locking
    # ------------------------------------------------------------------
    def _record_path(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}.json")

    def _payload_path(self, job_id: str) -> str:
        return os.path.join(self.payloads_dir, f"{job_id}.json")

    def _lock_path(self, job_id: str) -> str:
        return os.path.join(self.locks_dir, f"{job_id}.lock")

    @contextlib.contextmanager
    def _record_lock(self, job_id: str) -> Iterator[None]:
        """Exclusive advisory lock serialising read-modify-writes on one record.

        Guards *every* mutation path (update/mutate/claim/store_result/
        forget/recovery/sweep) against concurrent stores in other threads
        *and other processes* sharing the state dir.  ``flock`` treats
        descriptors from separate ``open`` calls independently, so two
        threads of one process exclude each other exactly like two
        processes do, and the lock evaporates when its holder dies.
        """
        path = self._lock_path(job_id)
        if fcntl is not None:
            descriptor = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(descriptor, fcntl.LOCK_EX)
                yield
            finally:
                try:
                    fcntl.flock(descriptor, fcntl.LOCK_UN)
                finally:
                    os.close(descriptor)
            return
        # O_EXCL sidecar fallback: spin until we create the sidecar, breaking
        # locks whose holder died (their mtime stops advancing).
        sidecar = f"{path}.excl"  # pragma: no cover - exercised on non-POSIX only
        while True:  # pragma: no cover
            try:
                descriptor = os.open(sidecar, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
                os.close(descriptor)
                break
            except FileExistsError:
                try:
                    if time.time() - os.path.getmtime(sidecar) > _SIDECAR_STALE_SECONDS:
                        os.remove(sidecar)
                        continue
                except OSError:
                    pass
                time.sleep(0.002)
        try:  # pragma: no cover
            yield
        finally:  # pragma: no cover
            with contextlib.suppress(OSError):
                os.remove(sidecar)

    def _quarantine(self, path: str, reason: str) -> Optional[Tuple[str, str]]:
        """Move *path* into the quarantine directory (collision-safe)."""
        if not os.path.exists(path):
            return None
        name = os.path.basename(path)
        target = os.path.join(self.quarantine_dir, name)
        counter = 0
        while os.path.exists(target):
            counter += 1
            target = os.path.join(self.quarantine_dir, f"{name}.{counter}")
        os.replace(path, target)
        return (name, reason)

    # ------------------------------------------------------------------
    # Record lifecycle
    # ------------------------------------------------------------------
    def new_job_id(self, kind: str) -> str:
        """A collision-free job id, unique across server restarts."""
        return f"{kind}-{uuid.uuid4().hex[:12]}"

    def create(
        self,
        kind: str,
        spec: Optional[Mapping[str, Any]] = None,
        options: Optional[Mapping[str, Any]] = None,
        job_id: Optional[str] = None,
        input: Optional[Mapping[str, Any]] = None,
    ) -> JobRecord:
        """Persist a new ``queued`` record and return it.

        *input* is the job's JSON-representable work description (spec,
        encoded corpus, evaluation options).  A record carrying its input
        is *resumable*: recovery requeues it and any process sharing the
        state dir can claim and execute it.
        """
        now = time.time()
        record = JobRecord(
            job_id=job_id or self.new_job_id(kind),
            kind=kind,
            status="queued",
            spec=dict(spec) if spec is not None else None,
            options=dict(options or {}),
            input=dict(input) if input is not None else None,
            created_at=now,
            updated_at=now,
        )
        with self._record_lock(record.job_id):
            if os.path.exists(self._record_path(record.job_id)):
                raise JobStoreError(f"job {record.job_id!r} already exists")
            self._write_record(record)
        self._count("created")
        return record

    def _write_record(self, record: JobRecord) -> None:
        write_text_atomic(
            self._record_path(record.job_id),
            json.dumps(record.to_dict(), indent=2, sort_keys=True),
        )

    def get(self, job_id: str) -> JobRecord:
        """The stored record for *job_id* (:class:`KeyError` when absent)."""
        path = self._record_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise KeyError(f"unknown job id {job_id!r}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise JobStoreError(f"job record {job_id!r} is unreadable: {exc}") from exc
        return JobRecord.from_dict(payload)

    def mutate(self, job_id: str, mutator: Callable[[JobRecord], Mapping[str, Any]]) -> JobRecord:
        """Apply *mutator* (record → field changes) atomically under the lock.

        The record is read, the mutator computes the changes *while the
        per-record file lock is held*, and the result is written back —
        the one safe shape for read-modify-write against a shared state
        dir.  An empty change set writes nothing.  Terminal statuses are
        final: a status change away from one raises.
        """
        with self._record_lock(job_id):
            record = self.get(job_id)
            changes = dict(mutator(record))
            if not changes:
                return record
            if record.finished and changes.get("status") not in (None, record.status):
                raise JobStoreError(
                    f"job {job_id!r} is {record.status} and cannot move to {changes['status']!r}"
                )
            record = replace(record, **{"updated_at": time.time(), **changes})
            self._write_record(record)
        return record

    def update(self, job_id: str, **changes: Any) -> JobRecord:
        """Apply field changes to a record (terminal statuses are final)."""
        return self.mutate(job_id, lambda record: changes)

    def mark_running(self, job_id: str) -> JobRecord:
        return self.update(job_id, status="running")

    def mark_error(self, job_id: str, error: str) -> JobRecord:
        record = self.update(
            job_id, status="error", error=str(error), worker_id=None, lease_expires_at=None
        )
        self._count("errors")
        return record

    def mark_cancelled(self, job_id: str) -> JobRecord:
        return self.update(job_id, status="cancelled", worker_id=None, lease_expires_at=None)

    def records(self, kind: Optional[str] = None) -> List[JobRecord]:
        """Every stored record (optionally of one *kind*), oldest first."""
        records: List[JobRecord] = []
        for name in os.listdir(self.jobs_dir):
            if name.endswith(".json"):
                try:
                    record = self.get(name[: -len(".json")])
                except (KeyError, JobStoreError):
                    continue
                if kind is None or record.kind == kind:
                    records.append(record)
        return sorted(records, key=lambda record: (record.created_at, record.job_id))

    def forget(self, job_id: str) -> bool:
        """Drop a finished job's record and payload; returns whether dropped."""
        with self._record_lock(job_id):
            try:
                record = self.get(job_id)
            except KeyError:
                return False
            if not record.finished:
                return False
            for path in (self._payload_path(job_id), self._record_path(job_id)):
                try:
                    os.remove(path)
                except FileNotFoundError:
                    pass
        with contextlib.suppress(OSError):
            os.remove(self._lock_path(job_id))
        self._count("forgotten")
        return True

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------
    def claim_job(self, job_id: str, worker_id: str, lease_seconds: float) -> Optional[JobRecord]:
        """Atomically claim one specific job; ``None`` when not claimable.

        Claimable means ``queued`` or ``running`` with an expired lease
        (see :meth:`JobRecord.claimable`).  On success the record is
        ``running``, owned by *worker_id*, with ``lease_expires_at`` set
        ``lease_seconds`` in the future and ``attempts`` incremented.
        """
        if not worker_id:
            raise JobStoreError("worker_id must be non-empty")
        if lease_seconds <= 0:
            raise JobStoreError(f"lease_seconds must be > 0, got {lease_seconds}")
        with self._record_lock(job_id):
            try:
                record = self.get(job_id)
            except (KeyError, JobStoreError):
                return None
            now = time.time()
            if not record.claimable(now):
                return None
            record = replace(
                record,
                status="running",
                worker_id=str(worker_id),
                lease_expires_at=now + float(lease_seconds),
                attempts=record.attempts + 1,
                error=None,
                updated_at=now,
            )
            self._write_record(record)
        self._count("claims")
        return record

    def claim(
        self,
        worker_id: str,
        lease_seconds: float,
        kinds: Optional[Sequence[str]] = None,
        parent: Optional[str] = None,
    ) -> Optional[JobRecord]:
        """Claim the oldest claimable job, or ``None`` when the queue is dry.

        *kinds* restricts the scan to those record kinds (e.g. a block
        worker claims only ``("block",)``); *parent* restricts it to block
        tasks of one parent job.  Candidates are screened without the lock
        and re-verified under it, so racing claimants (threads or
        processes) each walk away with distinct jobs.
        """
        wanted = set(kinds) if kinds is not None else None
        now = time.time()
        for record in self.records():
            if wanted is not None and record.kind not in wanted:
                continue
            if parent is not None and record.options.get("parent") != parent:
                continue
            if not record.claimable(now):
                continue
            claimed = self.claim_job(record.job_id, worker_id, lease_seconds)
            if claimed is not None:
                return claimed
        return None

    def renew_lease(self, job_id: str, worker_id: str, lease_seconds: float) -> JobRecord:
        """Extend the caller's lease; :class:`LeaseError` if it lost the job.

        Only the ``running`` record's current owner may renew — a worker
        whose lease already expired *and was reclaimed* learns it here and
        must abandon the work (the reclaiming owner's result wins).
        """

        def extend(record: JobRecord) -> Dict[str, Any]:
            if record.status != "running" or record.worker_id != worker_id:
                raise LeaseError(
                    f"job {job_id!r} is no longer leased to {worker_id!r} "
                    f"(status {record.status!r}, owner {record.worker_id!r})"
                )
            return {"lease_expires_at": time.time() + float(lease_seconds)}

        try:
            return self.mutate(job_id, extend)
        except KeyError:
            raise LeaseError(f"job {job_id!r} vanished while leased to {worker_id!r}") from None

    def release(self, job_id: str, worker_id: str) -> JobRecord:
        """Give the caller's claimed job back to the queue (graceful retry).

        The record returns to ``queued`` with the worker and lease fields
        cleared; ``attempts`` is kept, so executors can cap retries.
        Raises :class:`LeaseError` when the caller no longer owns the job.
        """

        def requeue(record: JobRecord) -> Dict[str, Any]:
            if record.status != "running" or record.worker_id != worker_id:
                raise LeaseError(
                    f"job {job_id!r} is not leased to {worker_id!r} "
                    f"(status {record.status!r}, owner {record.worker_id!r})"
                )
            return {"status": "queued", "worker_id": None, "lease_expires_at": None}

        try:
            record = self.mutate(job_id, requeue)
        except KeyError:
            raise LeaseError(f"job {job_id!r} vanished while leased to {worker_id!r}") from None
        self._count("releases")
        return record

    def requeue_expired(self, now: Optional[float] = None) -> List[str]:
        """Requeue every ``running`` job whose lease has expired.

        The complement of :meth:`claim`'s opportunistic reclaim: a
        maintenance loop calls this so abandoned work becomes visible as
        ``queued`` even when no claimant is scanning.  Returns the
        requeued job ids.
        """
        moment = time.time() if now is None else now
        requeued: List[str] = []
        for record in self.records():
            if not record.lease_expired(moment):
                continue

            def requeue(current: JobRecord) -> Dict[str, Any]:
                if not current.lease_expired(moment):
                    return {}
                return {"status": "queued", "worker_id": None, "lease_expires_at": None}

            try:
                fresh = self.mutate(record.job_id, requeue)
            except (KeyError, JobStoreError):
                continue
            if fresh.status == "queued" and fresh.worker_id is None:
                requeued.append(record.job_id)
        if requeued:
            self._count("lease_requeues", len(requeued))
        return requeued

    # ------------------------------------------------------------------
    # Result payloads
    # ------------------------------------------------------------------
    def store_result(
        self, job_id: str, payload: Mapping[str, Any], worker_id: Optional[str] = None
    ) -> JobRecord:
        """Persist a job's result payload and flip the record to ``done``.

        The payload file lands first (atomically), then the record is
        updated with the payload checksum and the ``done`` status — so a
        crash between the two writes leaves a ``running`` record recovery
        will requeue (leased) or mark interrupted (in-process), never a
        ``done`` record without its payload.

        When *worker_id* is given, the write is refused with
        :class:`LeaseError` if the record is ``running`` under a
        *different* owner — the enforcement of "the reclaiming owner's
        result wins": a zombie whose lease was reclaimed cannot mark the
        job done out from under the current executor.
        """

        def verify_owner(record: JobRecord) -> None:
            if (
                worker_id is not None
                and record.status == "running"
                and record.worker_id is not None
                and record.worker_id != worker_id
            ):
                raise LeaseError(
                    f"job {job_id!r} is no longer leased to {worker_id!r} "
                    f"(owner {record.worker_id!r}); its result wins"
                )

        verify_owner(self.get(job_id))  # refuse before writing the payload file
        text = json.dumps(dict(payload), sort_keys=True)
        write_text_atomic(self._payload_path(job_id), text)

        def finish(record: JobRecord) -> Dict[str, Any]:
            verify_owner(record)
            return {
                "status": "done",
                "payload_sha256": _payload_checksum(text),
                "error": None,
                "lease_expires_at": None,
            }

        record = self.mutate(job_id, finish)
        self._count("results")
        return record

    def load_result(self, job_id: str) -> Dict[str, Any]:
        """Load (and checksum-verify) the stored result of a ``done`` job."""
        record = self.get(job_id)
        if record.status != "done":
            raise JobStoreError(f"job {job_id!r} is {record.status}, not done; no result to load")
        path = self._payload_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
            payload = json.loads(text)
        except (OSError, json.JSONDecodeError) as exc:
            self._quarantine(path, f"unreadable payload: {exc}")
            self.mark_damaged(job_id, f"result payload unreadable: {exc}")
            raise JobStoreError(f"result payload of job {job_id!r} is damaged and was quarantined") from exc
        if record.payload_sha256 is not None and _payload_checksum(text) != record.payload_sha256:
            self._quarantine(path, "payload checksum mismatch")
            self.mark_damaged(job_id, "result payload failed its checksum")
            raise JobStoreError(
                f"result payload of job {job_id!r} failed its checksum and was quarantined"
            )
        if not isinstance(payload, dict):
            self._quarantine(path, "payload is not an object")
            self.mark_damaged(job_id, "result payload is not a JSON object")
            raise JobStoreError(f"result payload of job {job_id!r} is not a JSON object")
        return payload

    def mark_damaged(self, job_id: str, error: str) -> JobRecord:
        """Force a record to ``error`` after its payload proved unusable."""
        with self._record_lock(job_id):
            record = self.get(job_id)
            record = replace(
                record,
                status="error",
                error=str(error),
                payload_sha256=None,
                worker_id=None,
                lease_expires_at=None,
                updated_at=time.time(),
            )
            self._write_record(record)
        return record

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Scan the state dir: quarantine damage, requeue abandoned work.

        * unparseable records are quarantined (with their payloads);
        * ``done`` records without a verifiable payload flip to ``error``;
        * ``queued`` jobs and ``running`` jobs with an *expired* lease are
          requeued — work that never completed is always safe to rerun;
        * ``running`` jobs with a *live* lease are left untouched (another
          process legitimately owns them);
        * ``running`` jobs with *no* lease are marked ``interrupted`` —
          their callable lived in a process that is gone, and nothing on
          disk can resume it;
        * orphan / torn payload files are quarantined.
        """
        quarantined: List[Tuple[str, str]] = []
        interrupted: List[str] = []
        requeued: List[str] = []
        known_ids = set()
        now = time.time()
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            job_id = name[: -len(".json")]
            record_path = self._record_path(job_id)
            try:
                record = self.get(job_id)
            except (JobStoreError, KeyError) as exc:
                moved = self._quarantine(record_path, f"unreadable record: {exc}")
                if moved:
                    quarantined.append(moved)
                moved = self._quarantine(self._payload_path(job_id), "payload of unreadable record")
                if moved:
                    quarantined.append(moved)
                continue
            known_ids.add(job_id)
            if record.status == "done":
                damage = self._verify_payload(record)
                if damage is not None:
                    moved = self._quarantine(self._payload_path(job_id), damage)
                    if moved:
                        quarantined.append(moved)
                    self.mark_damaged(job_id, f"recovery: {damage}")
            elif record.status == "queued" or record.lease_expired(now):
                try:
                    fresh = self.mutate(
                        job_id,
                        lambda current: (
                            {"status": "queued", "worker_id": None, "lease_expires_at": None}
                            if current.claimable(now)
                            else {}
                        ),
                    )
                except (KeyError, JobStoreError):  # pragma: no cover - racing process
                    continue
                # Report only what actually ended up queued — a racing
                # claimant may have legitimately taken the job in between.
                if fresh.status == "queued" and fresh.worker_id is None:
                    requeued.append(job_id)
            elif record.status == "running" and record.lease_expires_at is None:
                try:
                    self.update(
                        job_id,
                        status="interrupted",
                        error="interrupted by server restart before completion",
                    )
                except (KeyError, JobStoreError):  # pragma: no cover - racing process
                    continue
                interrupted.append(job_id)
        for name in sorted(os.listdir(self.payloads_dir)):
            if ".tmp" in name:
                moved = self._quarantine(
                    os.path.join(self.payloads_dir, name), "torn temporary payload"
                )
                if moved:
                    quarantined.append(moved)
                continue
            if not name.endswith(".json"):
                continue
            if name[: -len(".json")] not in known_ids:
                moved = self._quarantine(os.path.join(self.payloads_dir, name), "payload without a record")
                if moved:
                    quarantined.append(moved)
        return RecoveryReport(
            quarantined=tuple(quarantined),
            interrupted=tuple(interrupted),
            requeued=tuple(requeued),
        )

    def _verify_payload(self, record: JobRecord) -> Optional[str]:
        """Reason the record's payload is unusable, or None when it is fine."""
        path = self._payload_path(record.job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            return "done record has no payload file"
        except OSError as exc:  # pragma: no cover - exotic I/O failure
            return f"payload unreadable: {exc}"
        if record.payload_sha256 is not None and _payload_checksum(text) != record.payload_sha256:
            return "payload checksum mismatch (half-written file?)"
        try:
            json.loads(text)
        except json.JSONDecodeError as exc:
            return f"payload is not valid JSON: {exc}"
        return None

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def sweep(self, ttl_seconds: float, now: Optional[float] = None, dry_run: bool = False) -> List[str]:
        """Drop terminal jobs idle for longer than *ttl_seconds*.

        A record whose terminal status was reached (``updated_at``) at
        least *ttl_seconds* ago is removed together with its payload and
        lock file; queued/running jobs are never touched.  Returns the
        swept job ids (with ``dry_run=True``: what *would* be swept,
        without removing anything).  The server's maintenance loop and the
        ``repro-iokast gc`` command are the two callers.
        """
        if ttl_seconds < 0:
            raise JobStoreError(f"ttl_seconds must be >= 0, got {ttl_seconds}")
        moment = time.time() if now is None else now
        swept: List[str] = []
        for record in self.records():
            if not record.finished or moment - record.updated_at < ttl_seconds:
                continue
            parent_id = record.options.get("parent")
            if parent_id is not None:
                # A finished block task is input to its parent's assembly:
                # it only becomes garbage once the parent itself is done
                # (or gone).  Sweeping it earlier would destroy completed
                # work out from under a live coordinator.
                try:
                    if not self.get(str(parent_id)).finished:
                        continue
                except KeyError:
                    pass  # parent already forgotten/swept: the block is garbage
                except JobStoreError:
                    continue  # unreadable parent: leave the block for recovery
            if dry_run:
                swept.append(record.job_id)
                continue

            def expired(current: JobRecord) -> bool:
                return current.finished and moment - current.updated_at >= ttl_seconds

            with self._record_lock(record.job_id):
                try:
                    current = self.get(record.job_id)
                except (KeyError, JobStoreError):
                    continue
                if not expired(current):
                    continue
                for path in (self._payload_path(record.job_id), self._record_path(record.job_id)):
                    with contextlib.suppress(FileNotFoundError):
                        os.remove(path)
            with contextlib.suppress(OSError):
                os.remove(self._lock_path(record.job_id))
            swept.append(record.job_id)
        if swept and not dry_run:
            self._count("swept", len(swept))
        return swept

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"JobStore(root={self.root!r}, jobs={len(self.records())})"
