"""The router: typed protocol requests mapped to handler functions.

The tail of the middleware pipeline.  Where :meth:`AnalysisServer.handle`
used to close over a literal dict of ``request type -> bound method``,
the :class:`Router` makes the dispatch table a first-class object:
handlers are *registered* (so extensions — new message kinds, per-route
wrappers, A/B handlers — compose instead of editing one monolithic
method), the table is introspectable, and double registration is a loud
error instead of a silent overwrite.

Handlers have the middleware signature ``(RequestContext) -> response``:
by the time the router runs, the context carries the parsed request and
the resolved tenant, so a handler body is purely business logic.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.service.middleware import Handler, RequestContext
from repro.service.protocol import BadRequest, Request

__all__ = ["Router"]


class Router:
    """Dispatch table from request dataclass type to handler."""

    def __init__(self) -> None:
        self._routes: Dict[Type[Request], Handler] = {}

    def register(self, request_type: Type[Request], handler: Handler) -> None:
        """Route *request_type* to *handler* (double registration is an error)."""
        if not (isinstance(request_type, type) and issubclass(request_type, Request)):
            raise TypeError(f"can only route Request subclasses, got {request_type!r}")
        if request_type in self._routes:
            raise ValueError(f"{request_type.TYPE!r} is already routed")
        self._routes[request_type] = handler

    def routes(self) -> Dict[Type[Request], Handler]:
        """A copy of the dispatch table (introspection, tests)."""
        return dict(self._routes)

    def dispatch(self, ctx: RequestContext) -> Dict[str, object]:
        """Invoke the handler routed for the context's parsed request.

        An unrouted type is a ``bad-request``: the protocol knows the
        message but this server exposes no handler for it (e.g. a
        restricted deployment) — distinct from the parse-time "unknown
        type" error only in its message.
        """
        if ctx.request is None:
            raise BadRequest("no parsed request to dispatch (parsing middleware missing?)")
        handler = self._routes.get(type(ctx.request))
        if handler is None:
            raise BadRequest(f"this server exposes no handler for {ctx.request.TYPE!r} requests")
        return handler(ctx)

    def __len__(self) -> int:
        return len(self._routes)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        kinds = ", ".join(sorted(route.TYPE for route in self._routes))
        return f"Router({kinds})"
