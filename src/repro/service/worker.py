"""Pull-loop worker executing leased jobs from a shared state directory.

:class:`Worker` is the distribution seam the block-sharded matrix jobs
were built for: a ``submit-matrix`` request with ``distributed=True``
makes the server persist one *block-task* record per symmetric index-block
pair, and any number of workers — threads, processes on the same host, or
hosts mounting the same state dir — drain that queue by *pulling*::

    repro-iokast serve  --state-dir /srv/repro-state --port 8123 &
    repro-iokast worker --state-dir /srv/repro-state &
    repro-iokast worker --state-dir /srv/repro-state &

Each loop iteration claims the oldest claimable task through
:meth:`JobStore.claim <repro.service.jobstore.JobStore.claim>` under the
store's cross-process file locks, so racing workers always walk away with
distinct tasks.  While a task runs, a background :class:`_LeaseKeeper`
thread renews the worker's lease; if the worker is SIGKILLed mid-block the
renewals stop, the lease expires, and the block is reclaimed by another
worker (or the server's own inline execution) — a dead worker delays a
job, never corrupts or loses it.

A worker owns a warm :class:`~repro.api.session.AnalysisSession`, so
repeated blocks under one spec share kernel caches exactly like the
server's in-process evaluation.  Raw pair values are serialised through
:func:`~repro.core.engine.encode_pair_values`, whose JSON floats
round-trip bit-identically — the assembled distributed Gram matrix equals
the monolithic one byte for byte.

Workers never run the store's start-up recovery (that is the serving
process's job) and claim ``block`` and ``fit-model`` records by default —
a fleet of workers drains streaming model fits exactly like matrix
blocks, writing the frozen models into the shared
``state_dir/models`` store the server serves ``classify`` from.

With tenancy enabled on the server, each tenant's namespace under
``<state-dir>/tenants/<id>/`` is its own job store.  One worker drains
them all from a single pull loop: every scan claims from the root store
first, then from each tenant namespace (discovered lazily, so tenants
created after the worker started are picked up).  Execution stays
isolated per namespace — results, pair-store values and fitted models
land in the owning tenant's directories, through a per-tenant session,
never in another tenant's.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
import uuid
from typing import Dict, List, Optional, Sequence

from repro.api.session import AnalysisSession
from repro.api.spec import coerce_spec
from repro.core.atomicio import write_text_atomic
from repro.core.engine import block_index_pairs, encode_pair_values
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import trace_context
from repro.service.jobstore import JobRecord, JobStore, JobStoreError, LeaseError
from repro.service.protocol import decode_corpus
from repro.service.tenancy import TENANTS_DIRNAME, valid_tenant_id
from repro.strings.tokens import WeightedString

__all__ = [
    "Worker",
    "execute_block_task",
    "execute_fit_model_task",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_POLL_INTERVAL",
]

logger = logging.getLogger(__name__)

#: Default seconds between queue scans when the queue is dry.
DEFAULT_POLL_INTERVAL = 0.5

#: Default lease duration stamped on claimed tasks (renewed while running).
DEFAULT_LEASE_SECONDS = 30.0

#: Claim attempts after which a repeatedly failing task is marked ``error``
#: instead of being released back to the queue.
MAX_TASK_ATTEMPTS = 3


def execute_block_task(
    store: JobStore,
    record: JobRecord,
    session: AnalysisSession,
    corpus_cache: Optional[Dict[str, List[WeightedString]]] = None,
) -> None:
    """Evaluate one claimed block-task record and store its raw pair values.

    The task's parent matrix record carries the work description
    (``input``: spec, encoded corpus); the task's options name the two
    index blocks.  The payload is ``{"parent", "first", "second",
    "pairs"}`` with ``pairs`` in :func:`encode_pair_values` form — *raw*
    kernel values only, because normalisation denominators and the
    diagonal are applied once, by the assembling server.  Used identically
    by external workers and the server's inline block execution.

    *corpus_cache* (parent id → decoded strings) lets a caller executing
    many blocks of one job skip re-decoding the corpus per block.
    """
    parent_id = record.options.get("parent")
    if not parent_id:
        raise JobStoreError(f"block task {record.job_id!r} names no parent job")
    parent = store.get(str(parent_id))
    if parent.input is None:
        raise JobStoreError(f"parent job {parent.job_id!r} carries no stored input")
    strings: Optional[List[WeightedString]] = None
    if corpus_cache is not None:
        strings = corpus_cache.get(parent.job_id)
    if strings is None:
        strings = decode_corpus(parent.input["strings"])
        if corpus_cache is not None:
            corpus_cache.clear()  # one warm corpus at a time is enough
            corpus_cache[parent.job_id] = strings
    spec = coerce_spec(parent.input["spec"])
    first = tuple(int(index) for index in record.options["first"])
    second = tuple(int(index) for index in record.options["second"])
    pairs = block_index_pairs(first, second)
    raw_by_pair = session.engine(spec).evaluate_pairs(strings, pairs)
    store.store_result(
        record.job_id,
        {
            "parent": parent.job_id,
            "first": list(first),
            "second": list(second),
            "pairs": encode_pair_values(raw_by_pair),
        },
        # Refused with LeaseError if this claim was reclaimed meanwhile —
        # the reclaiming owner's result wins.
        worker_id=record.worker_id,
    )


def execute_fit_model_task(
    store: JobStore,
    record: JobRecord,
    session: AnalysisSession,
) -> None:
    """Fit one claimed ``fit-model`` record and persist the frozen model.

    The record's ``input`` is self-contained (spec, encoded corpus, model
    name and fit options), so any worker sharing the state dir can execute
    it; the model lands in the shared ``<state-dir>/models`` store via an
    atomic checksum-stamped write, and the job result is the small model
    summary.  The server's per-name scorer cache keys on the model file's
    mtime, so a worker-written fit is picked up on the next ``classify``.
    """
    from repro.streaming.store import ModelStore

    if record.input is None:
        raise JobStoreError(f"fit-model job {record.job_id!r} carries no stored input")
    spec = coerce_spec(record.input["spec"])
    strings = decode_corpus(record.input["strings"])
    model, status = session.fit_landmark_model(
        spec,
        strings,
        name=str(record.input["name"]),
        landmarks=int(record.input.get("landmarks", 16)),
        strategy=str(record.input.get("strategy", "kcenter")),
        seed=int(record.input.get("seed", 2017)),
        n_components=int(record.input.get("n_components", 2)),
        n_clusters=record.input.get("n_clusters"),
        use_cache=bool(record.input.get("use_cache", True)),
    )
    path = ModelStore(os.path.join(store.root, "models")).save(model)
    summary = model.summary()
    summary["path"] = path
    summary["cache"] = status
    store.store_result(record.job_id, summary, worker_id=record.worker_id)


class _LeaseKeeper(threading.Thread):
    """Background renewal of one claimed task's lease while it executes.

    Renews at a third of the lease period; stops silently when the task
    ends or when renewal fails (the lease was lost — the executing code
    discovers that when it tries to write its result).
    """

    def __init__(self, store: JobStore, job_id: str, worker_id: str, lease_seconds: float) -> None:
        super().__init__(name=f"repro-lease-{job_id}", daemon=True)
        self._store = store
        self._job_id = job_id
        self._worker_id = worker_id
        self._lease_seconds = lease_seconds
        # NB: not named _stop — threading.Thread.join() calls an internal
        # method of that name.
        self._halt = threading.Event()

    def run(self) -> None:
        interval = max(0.05, self._lease_seconds / 3.0)
        while not self._halt.wait(interval):
            try:
                self._store.renew_lease(self._job_id, self._worker_id, self._lease_seconds)
            except (LeaseError, JobStoreError):
                return

    def stop(self) -> None:
        self._halt.set()


class Worker:
    """A pull-loop executor over one shared state directory.

    Parameters
    ----------
    state_dir:
        The job store directory shared with the server (and other
        workers).  Opened *without* recovery — joining workers must not
        second-guess records the serving process owns.
    worker_id:
        Stable identity stamped into claimed records; defaults to a
        host/pid-qualified unique id.
    poll_interval / lease_seconds:
        Queue-scan sleep when idle, and the lease stamped on claims
        (renewed automatically while a task runs).
    kinds:
        Record kinds this worker claims (default: block tasks and
        streaming model fits).
    throttle:
        Seconds to sleep between claiming a task and executing it.  An
        operational rate-limit knob — also what the kill-a-worker tests
        use to hold a worker mid-block deterministically.
    session:
        Existing :class:`AnalysisSession` to evaluate with; when omitted
        the worker creates (and owns, and closes) one from *n_jobs* /
        *executor*.
    pair_store:
        Whether to share the persistent pair-value store under
        ``state_dir/pair-store`` (on by default — the same directory the
        server opens).  Two workers computing overlapping corpora then
        each pay only for their novel pairs, and a restarted worker starts
        warm.  A session that already carries a store keeps it.
    """

    def __init__(
        self,
        state_dir: str,
        worker_id: Optional[str] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        kinds: Sequence[str] = ("block", "fit-model"),
        throttle: float = 0.0,
        session: Optional[AnalysisSession] = None,
        n_jobs: int = 1,
        executor: str = "thread",
        max_attempts: int = MAX_TASK_ATTEMPTS,
        pair_store: bool = True,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {poll_interval}")
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = JobStore(state_dir, recover=False)
        self.worker_id = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.poll_interval = float(poll_interval)
        self.lease_seconds = float(lease_seconds)
        self.kinds = tuple(kinds)
        self.throttle = float(throttle)
        self.max_attempts = max_attempts
        self._owns_session = session is None
        self.session = session if session is not None else AnalysisSession(
            n_jobs=n_jobs, executor=executor
        )
        if pair_store and self.session.pair_store is None:
            self.session.set_pair_store(os.path.join(self.store.root, "pair-store"))
        # Tenant namespaces (``<state-dir>/tenants/<id>/``) get their own
        # lazily opened store and session, so claimed work reads from and
        # writes into the owning tenant's directories only.
        self._n_jobs = n_jobs
        self._executor = executor
        self._use_pair_store = bool(pair_store)
        self._tenant_stores: Dict[str, JobStore] = {}
        self._tenant_sessions: Dict[str, AnalysisSession] = {}
        self._corpus_cache: Dict[str, List[WeightedString]] = {}
        self._stop = threading.Event()
        #: Tasks completed / failed by this worker (observability).
        self.completed = 0
        self.failed = 0
        #: Process-local metrics, persisted as a JSON snapshot into
        #: ``<state-dir>/metrics/<worker_id>.json`` after every task so the
        #: server's ``/metrics`` can aggregate the fleet.
        self.metrics = MetricsRegistry()
        self.metrics_path = os.path.join(self.store.root, "metrics", f"{self.worker_id}.json")
        self._started = time.time()
        self.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        registry.gauge("repro_uptime_seconds", "Seconds since this process started.").set(
            time.time() - self._started
        )
        registry.gauge(
            "repro_process_start_time_seconds", "Unix time this process started."
        ).set(self._started)
        for key, value in self.session.engine_counters().items():
            registry.counter(
                f"repro_engine_{key}_total", "Warm-engine counters summed across specs."
            ).set_total(value)
        if self.session.pair_store is not None:
            for key, value in self.session.pair_store.counters().items():
                registry.counter(
                    f"repro_pair_store_{key}_total", "Persistent pair-value store counters."
                ).set_total(value)
        for key, value in self.store.counters().items():
            registry.counter(
                f"repro_jobstore_{key}_total", "Job-store lifecycle counters (this process)."
            ).set_total(value)
        registry.counter(
            "repro_worker_tasks_completed_total", "Tasks this worker finished successfully."
        ).set_total(self.completed)
        registry.counter(
            "repro_worker_tasks_failed_total", "Tasks this worker failed or lost the lease on."
        ).set_total(self.failed)

    def persist_metrics(self) -> None:
        """Atomically write this worker's metrics snapshot into the state dir.

        Best effort — a full disk or permission problem must never take
        the work loop down with it.
        """
        try:
            os.makedirs(os.path.dirname(self.metrics_path), exist_ok=True)
            snapshot = {
                "origin": self.worker_id,
                "written_at": time.time(),
                "families": self.metrics.snapshot(),
            }
            write_text_atomic(self.metrics_path, json.dumps(snapshot))
        except OSError:
            logger.debug("worker %s could not persist its metrics snapshot", self.worker_id)

    # ------------------------------------------------------------------
    # Tenant namespaces
    # ------------------------------------------------------------------
    def _discover_tenants(self) -> List[str]:
        """Tenant ids with a namespace directory under the state dir."""
        base = os.path.join(self.store.root, TENANTS_DIRNAME)
        try:
            entries = sorted(os.listdir(base))
        except OSError:
            return []
        return [
            name for name in entries
            if valid_tenant_id(name) and os.path.isdir(os.path.join(base, name))
        ]

    def _tenant_store(self, tenant_id: str) -> JobStore:
        store = self._tenant_stores.get(tenant_id)
        if store is None:
            root = os.path.join(self.store.root, TENANTS_DIRNAME, tenant_id)
            store = JobStore(root, recover=False)
            self._tenant_stores[tenant_id] = store
        return store

    def _tenant_session(self, tenant_id: str) -> AnalysisSession:
        """The tenant's own evaluation session (own caches, own pair store)."""
        session = self._tenant_sessions.get(tenant_id)
        if session is None:
            session = AnalysisSession(n_jobs=self._n_jobs, executor=self._executor)
            if self._use_pair_store:
                session.set_pair_store(
                    os.path.join(self._tenant_store(tenant_id).root, "pair-store")
                )
            self._tenant_sessions[tenant_id] = session
        return session

    def _claim_any(self) -> Optional[tuple]:
        """One claimable record plus its owning store and session.

        The root (default-tenant) store is scanned first, then each tenant
        namespace in sorted order — a deterministic sweep, re-listing the
        tenants directory every time so namespaces created while the
        worker runs join the rotation without a restart.
        """
        record = self.store.claim(self.worker_id, self.lease_seconds, kinds=self.kinds)
        if record is not None:
            return record, self.store, self.session
        for tenant_id in self._discover_tenants():
            store = self._tenant_store(tenant_id)
            record = store.claim(self.worker_id, self.lease_seconds, kinds=self.kinds)
            if record is not None:
                return record, store, self._tenant_session(tenant_id)
        return None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_once(self) -> Optional[str]:
        """Claim and execute one task; its job id, or ``None`` when idle.

        A failing task is released back to the queue while its claim
        count is under ``max_attempts`` (transient failures retry,
        possibly on another worker) and marked ``error`` after that
        (deterministic failures must not ping-pong forever).
        """
        claimed = self._claim_any()
        if claimed is None:
            return None
        record, store, session = claimed
        # The trace the server stamped on the record (block children
        # inherit their parent's) binds this worker's log lines to the
        # originating client request.
        trace_id = record.options.get("trace_id")
        span_id = record.options.get("span_id")
        started = time.perf_counter()
        with trace_context(trace_id, span_id):
            logger.info(
                "worker %s claimed %s (kind %s, attempt %d, trace %s)",
                self.worker_id, record.job_id, record.kind, record.attempts, trace_id,
                extra={"job_id": record.job_id, "worker_id": self.worker_id,
                       "kind": record.kind, "event": "task-claimed"},
            )
            # The keeper starts before any throttle sleep: a live-but-slow
            # worker keeps renewing, so only a *dead* worker's lease expires.
            keeper = _LeaseKeeper(store, record.job_id, self.worker_id, self.lease_seconds)
            keeper.start()
            outcome = "completed"
            try:
                if self.throttle > 0:
                    time.sleep(self.throttle)
                self._execute(store, record, session)
            except LeaseError:
                # The lease was reclaimed under us; the new owner's result wins.
                outcome = "lease-lost"
                logger.warning("worker %s lost the lease on %s", self.worker_id, record.job_id)
                self.failed += 1
            except Exception as exc:  # noqa: BLE001 - the queue must keep moving
                outcome = "failed"
                self.failed += 1
                self._handle_failure(store, record, exc)
            else:
                self.completed += 1
            finally:
                keeper.stop()
                keeper.join(timeout=1.0)
                elapsed = time.perf_counter() - started
                self.metrics.histogram(
                    "repro_worker_task_seconds", "Task execution wall-clock by kind.",
                    kind=record.kind,
                ).observe(elapsed)
                logger.info(
                    "worker %s %s %s in %.3fs (trace %s)",
                    self.worker_id, outcome, record.job_id, elapsed, trace_id,
                    extra={"job_id": record.job_id, "worker_id": self.worker_id,
                           "kind": record.kind, "event": "task-finished"},
                )
        self.persist_metrics()
        return record.job_id

    def _execute(self, store: JobStore, record: JobRecord, session: AnalysisSession) -> None:
        if record.kind == "block":
            execute_block_task(store, record, session, corpus_cache=self._corpus_cache)
        elif record.kind == "fit-model":
            execute_fit_model_task(store, record, session)
        else:
            raise JobStoreError(f"worker cannot execute {record.kind!r} tasks")

    def _handle_failure(self, store: JobStore, record: JobRecord, exc: Exception) -> None:
        message = f"{type(exc).__name__}: {exc}"
        logger.warning("worker %s failed %s: %s", self.worker_id, record.job_id, message)
        try:
            if record.attempts < self.max_attempts:
                store.release(record.job_id, self.worker_id)
            else:
                store.mark_error(
                    record.job_id, f"failed after {record.attempts} attempts: {message}"
                )
        except (LeaseError, JobStoreError, KeyError):
            pass  # the job moved on without us; nothing left to record

    def run_forever(
        self,
        max_tasks: Optional[int] = None,
        idle_exit: Optional[float] = None,
    ) -> int:
        """Pull tasks until stopped; returns how many tasks were executed.

        *max_tasks* bounds the number of executed tasks; *idle_exit* exits
        after the queue has stayed dry for that many seconds (both are how
        tests and batch deployments get a terminating worker).
        :meth:`stop` (e.g. from a signal handler) ends the loop too.
        """
        executed = 0
        idle_since: Optional[float] = None
        while not self._stop.is_set():
            job_id = self.run_once()
            if job_id is not None:
                executed += 1
                idle_since = None
                if max_tasks is not None and executed >= max_tasks:
                    break
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if idle_exit is not None and now - idle_since >= idle_exit:
                break
            self._stop.wait(self.poll_interval)
        return executed

    def stop(self) -> None:
        """Ask :meth:`run_forever` to exit after the current task."""
        self._stop.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.stop()
        self.persist_metrics()
        for session in self._tenant_sessions.values():
            session.shutdown()
        self._tenant_sessions.clear()
        if self._owns_session:
            self.session.shutdown()

    def __enter__(self) -> "Worker":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Worker(id={self.worker_id!r}, state_dir={self.store.root!r}, "
            f"completed={self.completed}, failed={self.failed})"
        )
