"""Bearer-token authentication mapping tokens to tenant ids.

:class:`Authenticator` is the single auth decision point of the service:
the auth middleware hands it the request's bearer token (from the HTTP
``Authorization`` header or the envelope-level ``token`` field, so HTTP
and stdio authenticate identically) and gets back the tenant id the token
names — or a typed :class:`~repro.service.protocol.Unauthorized` error.

Three modes:

* **disabled** (the default) — no tokens configured; every request
  resolves to the default tenant.  This is the pre-auth behaviour, so
  existing deployments, tests and examples keep working unchanged.
* **single-token** (``--token`` / :meth:`Authenticator.single`) — one
  shared secret, one tenant (the default one unless named otherwise).
* **tenants file** (``--tenants tenants.json`` /
  :meth:`Authenticator.from_file`) — a JSON map of tenant ids to tokens
  and optional per-tenant quota overrides::

      {
        "tenants": {
          "alpha": {"token": "alpha-secret",
                    "quotas": {"requests_per_second": 5,
                               "max_queued_jobs": 8,
                               "max_corpus_strings": 1000}},
          "beta":  {"token": "beta-secret"}
        }
      }

Token comparison uses :func:`hmac.compare_digest`, so lookup time does not
leak how much of a guessed token matched.
"""

from __future__ import annotations

import hmac
import json
from typing import Dict, List, Mapping, Optional

from repro.service.protocol import Unauthorized
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenantQuotas,
    require_tenant_id,
    valid_tenant_id,
)

__all__ = ["Authenticator"]


class Authenticator:
    """Token → tenant resolution with constant-time comparison.

    Parameters
    ----------
    tokens:
        Mapping of bearer token → tenant id.  ``None`` or empty disables
        authentication entirely (every caller is the default tenant).
    quotas:
        Optional per-tenant :class:`TenantQuotas` overrides (typically
        parsed from the tenants file) the server merges over its defaults.
    """

    def __init__(
        self,
        tokens: Optional[Mapping[str, str]] = None,
        quotas: Optional[Mapping[str, TenantQuotas]] = None,
    ) -> None:
        self._tokens: Dict[str, str] = {}
        for token, tenant_id in (tokens or {}).items():
            if not isinstance(token, str) or not token:
                raise ValueError(f"tokens must be non-empty strings, got {token!r}")
            self._tokens[token] = require_tenant_id(tenant_id)
        self.quota_overrides: Dict[str, TenantQuotas] = dict(quotas or {})

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "Authenticator":
        """No auth: every request resolves to the default tenant."""
        return cls()

    @classmethod
    def single(cls, token: str, tenant: str = DEFAULT_TENANT) -> "Authenticator":
        """One shared token for one tenant (the CLI's ``--token`` mode)."""
        if not token:
            raise ValueError("single-tenant token must be non-empty")
        return cls({token: tenant})

    @classmethod
    def from_file(cls, path: str) -> "Authenticator":
        """Parse a ``tenants.json`` file (see the module docstring format)."""
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise ValueError(f"tenants file {path!r} is not valid JSON: {exc}") from exc
        if not isinstance(payload, Mapping) or not isinstance(payload.get("tenants"), Mapping):
            raise ValueError(
                f"tenants file {path!r} must be an object with a 'tenants' object"
            )
        tokens: Dict[str, str] = {}
        quotas: Dict[str, TenantQuotas] = {}
        for tenant_id, entry in payload["tenants"].items():
            if not valid_tenant_id(tenant_id):
                # A config problem, not a wire error: fail construction.
                raise ValueError(f"tenants file {path!r} names invalid tenant id {tenant_id!r}")
            if not isinstance(entry, Mapping):
                raise ValueError(f"tenant {tenant_id!r} entry must be an object")
            unknown = set(entry) - {"token", "quotas"}
            if unknown:
                raise ValueError(f"tenant {tenant_id!r} has unknown keys {sorted(unknown)}")
            token = entry.get("token")
            if not isinstance(token, str) or not token:
                raise ValueError(f"tenant {tenant_id!r} needs a non-empty 'token'")
            if token in tokens:
                raise ValueError(f"token of tenant {tenant_id!r} duplicates tenant {tokens[token]!r}")
            tokens[token] = tenant_id
            if entry.get("quotas") is not None:
                if not isinstance(entry["quotas"], Mapping):
                    raise ValueError(f"tenant {tenant_id!r} 'quotas' must be an object")
                try:
                    quotas[tenant_id] = TenantQuotas.from_dict(entry["quotas"])
                except ValueError as exc:
                    raise ValueError(f"tenant {tenant_id!r}: {exc}") from exc
        if not tokens:
            raise ValueError(f"tenants file {path!r} configures no tenants")
        return cls(tokens, quotas)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self._tokens)

    @property
    def tenant_ids(self) -> List[str]:
        """The configured tenant ids (sorted, unique)."""
        return sorted(set(self._tokens.values()))

    def authenticate(self, token: Optional[str]) -> str:
        """The tenant id *token* names; :class:`Unauthorized` otherwise.

        With auth disabled every caller (token or not) is the default
        tenant.  With auth enabled a missing token and an unknown token
        are distinct messages but the same typed error, so probing cannot
        distinguish "wrong token" from "no such tenant".
        """
        if not self.enabled:
            return DEFAULT_TENANT
        if token is None:
            raise Unauthorized(
                "this server requires a bearer token "
                "(Authorization: Bearer <token>, or the envelope 'token' field)"
            )
        for known, tenant_id in self._tokens.items():
            if hmac.compare_digest(known, token):
                return tenant_id
        raise Unauthorized("the supplied token names no configured tenant")

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        mode = f"{len(self._tokens)} token(s)" if self.enabled else "disabled"
        return f"Authenticator({mode})"
