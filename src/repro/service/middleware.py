"""The request pipeline: composable middleware shared by every front end.

One request — whether it arrived over HTTP, over stdio, or from an
in-process :meth:`AnalysisServer.handle` call — flows through the same
chain of middleware before reaching its routed handler::

    metrics/error boundary        (outermost: every request is counted,
        -> parsing/validation      every failure becomes a typed envelope)
        -> authentication          (bearer token -> tenant id; health exempt)
        -> tenant resolution       (tenant id -> TenantContext namespace)
        -> quotas / rate limit     (token bucket, queued jobs, corpus size)
        -> tracing                 (request-scoped log line under the trace id)
        -> Router.dispatch         (typed request -> handler)

A middleware is a function ``(next_handler) -> handler`` over
``(RequestContext) -> response``; :func:`compose` folds a chain of them
around a terminal handler.  The :class:`RequestContext` is the single
mutable carrier: earlier stages fill in fields (``request``,
``tenant_id``, ``tenant``) that later stages and the handlers consume, so
handlers never re-parse or re-authenticate anything.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import trace_context
from repro.service.auth import Authenticator
from repro.service.protocol import (
    HealthRequest,
    QuotaExceeded,
    RateLimited,
    Request,
    ServiceError,
    error_response,
    parse_request,
    payload_token,
)
from repro.service.tenancy import DEFAULT_TENANT, TenantContext

__all__ = [
    "RequestContext",
    "Handler",
    "Middleware",
    "compose",
    "metrics_middleware",
    "parsing_middleware",
    "auth_middleware",
    "tenant_middleware",
    "quota_middleware",
    "tracing_middleware",
]

logger = logging.getLogger(__name__)

#: Request types that admit new work (the queued-jobs / corpus quotas apply).
_SUBMIT_TYPES = ("submit-matrix", "submit-analyze", "fit-model")


@dataclass
class RequestContext:
    """Everything one request accumulates on its way through the pipeline."""

    #: The raw wire object as the transport delivered it.
    payload: Any
    #: Bearer token from the transport (HTTP ``Authorization`` header);
    #: the parsing middleware may fill this from the envelope ``token``.
    token: Optional[str] = None
    #: Which front end delivered the request (``http``/``stdio``/``inproc``).
    transport: str = "inproc"
    #: Set by the parsing middleware.
    request: Optional[Request] = None
    #: Set by the auth middleware.
    tenant_id: Optional[str] = None
    #: Set by the tenant-resolution middleware.
    tenant: Optional[TenantContext] = None

    @property
    def method(self) -> str:
        """The request's wire type for labels (``invalid`` before parsing)."""
        return self.request.TYPE if self.request is not None else "invalid"


Handler = Callable[[RequestContext], Dict[str, Any]]
Middleware = Callable[[Handler], Handler]


def compose(middlewares: Sequence[Middleware], terminal: Handler) -> Handler:
    """Fold *middlewares* around *terminal* (first listed = outermost)."""
    handler = terminal
    for middleware in reversed(list(middlewares)):
        handler = middleware(handler)
    return handler


def metrics_middleware(registry: MetricsRegistry) -> Middleware:
    """Outermost stage: count/time every request and seal in the envelope.

    Sits outside parsing and auth so malformed, unauthorized and
    rate-limited requests are all observable, each under its error code —
    and so no exception of any kind escapes to a transport (the wire
    always gets a typed error envelope).
    """

    def middleware(next_handler: Handler) -> Handler:
        def handle(ctx: RequestContext) -> Dict[str, Any]:
            started = time.perf_counter()
            status = "error"
            try:
                response = next_handler(ctx)
                status = "ok"
                return response
            except ServiceError as exc:
                status = exc.code
                return error_response(exc)
            except Exception as exc:  # noqa: BLE001 - the wire must always get an envelope
                status = "internal"
                logger.exception("unhandled error serving request")
                return error_response(ServiceError(f"internal error: {type(exc).__name__}: {exc}"))
            finally:
                tenant = ctx.tenant_id or "unauthenticated"
                registry.counter(
                    "repro_requests_total", "Protocol requests by method, outcome and tenant.",
                    method=ctx.method, status=status, tenant=tenant,
                ).inc()
                registry.histogram(
                    "repro_request_seconds", "Protocol request latency by method.",
                    method=ctx.method,
                ).observe(time.perf_counter() - started)

        return handle

    return middleware


def parsing_middleware() -> Middleware:
    """Validate the wire object into a typed request (and lift its token).

    An envelope-level ``token`` field outranks nothing: it is only used
    when the transport supplied no token of its own (the HTTP header
    wins), so a proxy injecting headers cannot be confused by body fields.
    """

    def middleware(next_handler: Handler) -> Handler:
        def handle(ctx: RequestContext) -> Dict[str, Any]:
            envelope_token = payload_token(ctx.payload)
            if ctx.token is None:
                ctx.token = envelope_token
            ctx.request = parse_request(ctx.payload)
            return next_handler(ctx)

        return handle

    return middleware


def auth_middleware(authenticator: Authenticator) -> Middleware:
    """Resolve the bearer token to a tenant id (health probes exempt).

    Health stays unauthenticated by design — load balancers and uptime
    probes must be able to ask without holding a secret — and resolves to
    the default tenant.
    """

    def middleware(next_handler: Handler) -> Handler:
        def handle(ctx: RequestContext) -> Dict[str, Any]:
            if isinstance(ctx.request, HealthRequest) and ctx.token is None:
                ctx.tenant_id = DEFAULT_TENANT
            else:
                ctx.tenant_id = authenticator.authenticate(ctx.token)
            return next_handler(ctx)

        return handle

    return middleware


def tenant_middleware(resolver: Callable[[str], TenantContext]) -> Middleware:
    """Attach the tenant's namespace context (stores, session, caches)."""

    def middleware(next_handler: Handler) -> Handler:
        def handle(ctx: RequestContext) -> Dict[str, Any]:
            assert ctx.tenant_id is not None, "auth middleware must run before tenant resolution"
            ctx.tenant = resolver(ctx.tenant_id)
            return next_handler(ctx)

        return handle

    return middleware


def quota_middleware() -> Middleware:
    """Enforce the tenant's budgets: request rate, queued jobs, corpus size.

    * Token bucket → typed ``rate-limited`` with ``retry_after``.
    * ``max_queued_jobs`` (submissions only) → ``quota-exceeded`` with a
      ``retry_after`` hint, because the queue drains.
    * ``max_corpus_strings`` (submissions only) → ``quota-exceeded``
      *without* ``retry_after``: resubmitting the same oversized corpus
      can never succeed, so clients must not burn retries on it.

    Health probes are never limited (same reasoning as auth exemption).
    """

    def middleware(next_handler: Handler) -> Handler:
        def handle(ctx: RequestContext) -> Dict[str, Any]:
            tenant = ctx.tenant
            assert tenant is not None, "tenant middleware must run before quotas"
            if isinstance(ctx.request, HealthRequest):
                return next_handler(ctx)
            if tenant.bucket is not None:
                retry_after = tenant.bucket.acquire()
                if retry_after is not None:
                    raise RateLimited(
                        f"tenant {tenant.tenant_id!r} exceeded its request rate "
                        f"({tenant.quotas.requests_per_second:g}/s)",
                        details={
                            "retry_after": round(retry_after, 3),
                            "tenant": tenant.tenant_id,
                        },
                    )
            if ctx.method in _SUBMIT_TYPES:
                quotas = tenant.quotas
                if quotas.max_corpus_strings is not None:
                    strings = getattr(ctx.request, "strings", ()) or ()
                    if len(strings) > quotas.max_corpus_strings:
                        raise QuotaExceeded(
                            f"corpus of {len(strings)} string(s) exceeds tenant "
                            f"{tenant.tenant_id!r}'s limit of {quotas.max_corpus_strings}",
                            details={"tenant": tenant.tenant_id,
                                     "max_corpus_strings": quotas.max_corpus_strings},
                        )
                if quotas.max_queued_jobs is not None:
                    live = tenant.live_job_count()
                    if live >= quotas.max_queued_jobs:
                        raise QuotaExceeded(
                            f"tenant {tenant.tenant_id!r} already has {live} live job(s) "
                            f"(limit {quotas.max_queued_jobs}); retry once the queue drains",
                            details={
                                "retry_after": 1.0,
                                "tenant": tenant.tenant_id,
                                "max_queued_jobs": quotas.max_queued_jobs,
                                "live_jobs": live,
                            },
                        )
            return next_handler(ctx)

        return handle

    return middleware


def tracing_middleware() -> Middleware:
    """Log one request-scoped line under the request's trace id (if any)."""

    def middleware(next_handler: Handler) -> Handler:
        def handle(ctx: RequestContext) -> Dict[str, Any]:
            trace_id = getattr(ctx.request, "trace_id", None)
            with trace_context(trace_id):
                logger.debug(
                    "request %s tenant=%s transport=%s trace=%s",
                    ctx.method, ctx.tenant_id, ctx.transport, trace_id,
                    extra={"event": "request", "method": ctx.method,
                           "tenant": ctx.tenant_id, "transport": ctx.transport},
                )
                return next_handler(ctx)

        return handle

    return middleware
