"""repro.service — the networked kernel-analysis service.

PR 2 left the library with an in-process service facade
(:class:`~repro.api.session.AnalysisSession`: warm per-spec engines plus
``submit()/result()`` job handles).  This package is the move from library
to long-running service: clients in other processes — or on other hosts —
share one warm session, and jobs survive the server process.

* :mod:`repro.service.protocol` — the versioned JSON request/response
  messages (submit-matrix, submit-analyze, status, result, cancel, specs,
  health) with a typed error hierarchy and the corpus wire codec.  The same
  messages travel over HTTP and over stdio.
* :mod:`repro.service.jobstore` — the on-disk job store: one JSON record
  plus one payload file per job under a state directory, written via atomic
  renames, checksum-stamped, and guarded by per-record advisory *file
  locks*, so several processes (servers and workers) safely share one
  state dir.  Jobs are **leased** (``claim``/``renew_lease``/``release``);
  recovery requeues queued and expired-lease work instead of dead-ending
  it, and ``sweep`` garbage-collects terminal records past a TTL.
* :mod:`repro.service.server` — :class:`AnalysisServer`, a stdlib
  ``ThreadingHTTPServer`` front end owning a single session and a job
  store.  Matrix jobs may be **block-sharded**: the index range is split
  into symmetric blocks, each block-pair is one engine task, and the blocks
  merge through :meth:`~repro.core.engine.GramEngine.assemble_gram` into a
  matrix bit-identical to the monolithic computation.  With
  ``distributed=True`` the blocks become individually leasable records
  that pull-loop workers execute.
* :mod:`repro.service.worker` — :class:`Worker`, the pull loop: claims
  block tasks from a shared state dir under the store's cross-process
  locks, executes them with a warm session, and renews its leases; a
  SIGKILLed worker's blocks are reclaimed when the lease expires.
* :mod:`repro.service.client` — :class:`ServiceClient`, mirroring the
  ``AnalysisSession`` surface (``matrix()/analyze()/submit()/result()``)
  over an HTTP or stdio transport, with bearer-token auth and transient
  failure retries.
* :mod:`repro.service.router` / :mod:`repro.service.middleware` — the
  request pipeline every front end shares: parsing, authentication,
  tenant resolution, quotas/rate limiting, metrics and tracing around a
  first-class :class:`Router` dispatch table.
* :mod:`repro.service.auth` / :mod:`repro.service.tenancy` —
  :class:`Authenticator` (bearer token → tenant id) and the per-tenant
  state namespaces (``<state-dir>/tenants/<id>/``) holding each tenant's
  job store, caches and models with zero cross-tenant sharing.

The CLI wires this up as ``repro-iokast serve``, ``repro-iokast worker``,
``repro-iokast remote`` and ``repro-iokast gc``.
"""

from repro.service.auth import Authenticator
from repro.service.client import (
    TOKEN_ENV_VAR,
    HTTPTransport,
    ServiceClient,
    StdioTransport,
    TransportError,
)
from repro.service.jobstore import JobRecord, JobStore, LeaseError, RecoveryReport
from repro.service.middleware import RequestContext, compose
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BadRequest,
    JobFailed,
    JobPending,
    ModelDamaged,
    ModelNotFound,
    QuotaExceeded,
    RateLimited,
    RequestTooLarge,
    ServiceError,
    Unauthorized,
    UnknownJob,
    decode_corpus,
    encode_corpus,
)
from repro.service.router import Router
from repro.service.server import AnalysisServer, serve_stdio
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenantContext,
    TenantQuotas,
    TenantRegistry,
)
from repro.service.worker import Worker, execute_block_task, execute_fit_model_task

__all__ = [
    "DEFAULT_TENANT",
    "PROTOCOL_VERSION",
    "TOKEN_ENV_VAR",
    "AnalysisServer",
    "Authenticator",
    "BadRequest",
    "HTTPTransport",
    "JobFailed",
    "JobPending",
    "JobRecord",
    "JobStore",
    "LeaseError",
    "ModelDamaged",
    "ModelNotFound",
    "QuotaExceeded",
    "RateLimited",
    "RecoveryReport",
    "RequestContext",
    "RequestTooLarge",
    "Router",
    "ServiceClient",
    "ServiceError",
    "StdioTransport",
    "TenantContext",
    "TenantQuotas",
    "TenantRegistry",
    "TransportError",
    "Unauthorized",
    "UnknownJob",
    "Worker",
    "compose",
    "decode_corpus",
    "encode_corpus",
    "execute_block_task",
    "execute_fit_model_task",
    "serve_stdio",
]
