"""Versioned JSON wire protocol of the analysis service.

One request/response vocabulary serves every transport: the HTTP front end
posts one JSON object per request, the stdio transport writes one JSON
object per line.  Messages are *data*, built from the same declarative
pieces the library already persists — kernel specs travel as
:meth:`~repro.api.spec.KernelSpec.to_dict` payloads, corpora as the
round-trippable :meth:`~repro.strings.tokens.WeightedString.to_text` form,
and results as the engine's stamped matrix payloads
(:meth:`~repro.core.engine.GramEngine.matrix_payload`).

Requests
--------
Every request object carries ``{"v": 1, "type": "<name>", ...fields}``.
The types are:

==================  ====================================================
``submit-matrix``   queue a (possibly block-sharded) Gram-matrix job
``submit-analyze``  queue a full pipeline run (KPCA + clustering + metrics)
``fit-model``       queue a landmark/Nyström model fit over a corpus
``classify``        classify/embed traces against a fitted landmark model
``models``          list the server's persisted landmark models
``status``          status of one job
``result``          result payload of one job (optionally waiting)
``cancel``          cancel a queued job
``specs``           registered kernel kinds and the session's warm specs
``health``          liveness / protocol / job-count snapshot
``cache-stats``     the server's persistent matrix result-cache counters
==================  ====================================================

Responses are ``{"v": 1, "ok": true, "type": ..., ...}`` on success and
``{"v": 1, "ok": false, "error": {"code", "message", "details"}}`` on
failure.  Error codes map onto the typed :class:`ServiceError` hierarchy on
both sides of the wire, so a client sees the same exception types an
in-process caller would.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.obs.tracing import TRACE_ID_PATTERN, valid_trace_id
from repro.strings.tokens import WeightedString

__all__ = [
    "PROTOCOL_VERSION",
    "ServiceError",
    "BadRequest",
    "UnsupportedVersion",
    "UnknownJob",
    "JobFailed",
    "JobPending",
    "CannotCancel",
    "ModelNotFound",
    "ModelDamaged",
    "Unauthorized",
    "RateLimited",
    "QuotaExceeded",
    "RequestTooLarge",
    "payload_token",
    "Request",
    "SubmitMatrixRequest",
    "SubmitAnalyzeRequest",
    "FitModelRequest",
    "ClassifyRequest",
    "ModelsRequest",
    "StatusRequest",
    "ResultRequest",
    "CancelRequest",
    "SpecsRequest",
    "HealthRequest",
    "CacheStatsRequest",
    "parse_request",
    "ok_response",
    "error_response",
    "check_response",
    "http_status_for_response",
    "encode_corpus",
    "decode_corpus",
    "dump_message",
    "load_message",
]

#: Version stamped into (and required of) every message.
PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Typed errors
# ----------------------------------------------------------------------
class ServiceError(RuntimeError):
    """Base service failure; serialisable to (and from) the wire error form.

    Every subclass fixes a stable ``code`` (the wire discriminator) and the
    HTTP status the server answers with.  ``details`` is a small
    JSON-representable mapping of structured context (e.g. the job id).
    """

    code: ClassVar[str] = "internal"
    http_status: ClassVar[int] = 500

    def __init__(self, message: str, details: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__(message)
        self.details: Dict[str, Any] = dict(details or {})

    @property
    def job_id(self) -> Optional[str]:
        """The job id this error concerns, when it concerns one."""
        value = self.details.get("job_id")
        return str(value) if value is not None else None

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"code": self.code, "message": str(self)}
        if self.details:
            payload["details"] = self.details
        return payload

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ServiceError":
        """Rebuild the typed error a server serialised (unknown codes → base)."""
        code = str(payload.get("code", "internal"))
        message = str(payload.get("message", "service error"))
        details = payload.get("details")
        error_class = _ERROR_CODES.get(code, ServiceError)
        error = error_class(message, details if isinstance(details, Mapping) else None)
        return error


class BadRequest(ServiceError):
    """Malformed message: wrong shape, unknown type, invalid field values."""

    code = "bad-request"
    http_status = 400


class UnsupportedVersion(BadRequest):
    """Message carried a protocol version this peer does not speak."""

    code = "unsupported-version"


class UnknownJob(ServiceError):
    """No job record exists under the given id."""

    code = "unknown-job"
    http_status = 404


class JobFailed(ServiceError):
    """The job ran and raised; the original error text is in the message."""

    code = "job-failed"
    http_status = 500


class JobPending(ServiceError):
    """The job has not finished inside the request's wait window."""

    code = "job-pending"
    http_status = 409


class CannotCancel(ServiceError):
    """The job already started or finished and cannot be cancelled."""

    code = "cannot-cancel"
    http_status = 409


class ModelNotFound(ServiceError):
    """No landmark model is stored under the requested name."""

    code = "model-not-found"
    http_status = 404


class ModelDamaged(ServiceError):
    """A stored landmark model failed verification and was quarantined.

    Raised when the model file's checksum no longer matches, its payload
    does not parse, or its kernel spec names a kind the registry no longer
    knows — the store moves the file aside so the damage is never
    re-served, and the details carry the reason and quarantine path.
    """

    code = "model-damaged"
    http_status = 500


class Unauthorized(ServiceError):
    """The request carried no token, or a token no tenant is configured for."""

    code = "unauthorized"
    http_status = 401


class RateLimited(ServiceError):
    """The tenant exhausted its request budget; retry after a delay.

    ``details["retry_after"]`` carries the seconds a client should wait
    before retrying — :class:`~repro.service.client.ServiceClient` honours
    it with capped exponential backoff.
    """

    code = "rate-limited"
    http_status = 429

    @property
    def retry_after(self) -> Optional[float]:
        value = self.details.get("retry_after")
        return float(value) if isinstance(value, (int, float)) and not isinstance(value, bool) else None


class QuotaExceeded(ServiceError):
    """A tenant quota (queued jobs, corpus size) refused the request.

    Carries ``retry_after`` like :class:`RateLimited` when the condition is
    transient (e.g. the job queue will drain); a ``retry_after`` of ``None``
    means retrying the same request can never succeed (e.g. the corpus is
    simply larger than the tenant's limit).
    """

    code = "quota-exceeded"
    http_status = 429

    @property
    def retry_after(self) -> Optional[float]:
        value = self.details.get("retry_after")
        return float(value) if isinstance(value, (int, float)) and not isinstance(value, bool) else None


class RequestTooLarge(ServiceError):
    """The request body exceeds the server's configured byte bound."""

    code = "request-too-large"
    http_status = 413


_ERROR_CODES: Dict[str, Type[ServiceError]] = {
    error_class.code: error_class
    for error_class in (
        ServiceError, BadRequest, UnsupportedVersion, UnknownJob, JobFailed,
        JobPending, CannotCancel, ModelNotFound, ModelDamaged,
        Unauthorized, RateLimited, QuotaExceeded, RequestTooLarge,
    )
}


# ----------------------------------------------------------------------
# Corpus wire codec
# ----------------------------------------------------------------------
def encode_corpus(strings: Sequence[WeightedString]) -> List[Dict[str, Any]]:
    """Encode weighted strings for the wire (name, label, compact token text).

    The token text is :meth:`WeightedString.to_text`, whose ``literal:weight``
    form round-trips exactly through :meth:`WeightedString.parse` — the same
    representation the CLI's ``convert`` command prints.
    """
    items: List[Dict[str, Any]] = []
    for string in strings:
        item: Dict[str, Any] = {"name": string.name, "tokens": string.to_text()}
        if string.label is not None:
            item["label"] = string.label
        items.append(item)
    return items


def decode_corpus(items: Sequence[Mapping[str, Any]]) -> List[WeightedString]:
    """Rebuild the weighted strings of :func:`encode_corpus` output."""
    if isinstance(items, (str, bytes)) or not isinstance(items, Sequence):
        raise BadRequest(f"corpus must be a sequence of objects, got {type(items).__name__}")
    strings: List[WeightedString] = []
    for position, item in enumerate(items):
        if not isinstance(item, Mapping):
            raise BadRequest(f"corpus item {position} must be an object, got {type(item).__name__}")
        unknown = set(item) - {"name", "label", "tokens"}
        if unknown:
            raise BadRequest(f"corpus item {position} has unknown keys {sorted(unknown)}")
        tokens = item.get("tokens")
        if not isinstance(tokens, str):
            raise BadRequest(f"corpus item {position} is missing its 'tokens' text")
        label = item.get("label")
        try:
            strings.append(
                WeightedString.parse(
                    tokens,
                    name=str(item.get("name", f"string{position}")),
                    label=str(label) if label is not None else None,
                )
            )
        except ValueError as exc:
            raise BadRequest(f"corpus item {position} does not parse: {exc}") from exc
    return strings


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """Base class for protocol requests (one dataclass per message type)."""

    TYPE: ClassVar[str] = ""

    def to_payload(self) -> Dict[str, Any]:
        """The wire object: version, type and every dataclass field."""
        payload: Dict[str, Any] = {"v": PROTOCOL_VERSION, "type": self.TYPE}
        for field in dataclass_fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload

    @classmethod
    def _from_fields(cls, fields: Mapping[str, Any]) -> "Request":
        names = {field.name for field in dataclass_fields(cls)}
        unknown = set(fields) - names
        if unknown:
            raise BadRequest(f"{cls.TYPE!r} request has unknown fields {sorted(unknown)}")
        try:
            return cls(**fields)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"invalid {cls.TYPE!r} request: {exc}") from exc


def _require_str(value: Any, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise BadRequest(f"{what} must be a non-empty string, got {value!r}")
    return value


def _optional_trace_id(value: Any) -> Optional[str]:
    """Validate a client-supplied trace id (``None`` means server-minted).

    Ids travel into log lines, job records, and metric labels, so the
    charset is restricted to ``TRACE_ID_PATTERN``.
    """
    if value is None:
        return None
    if not valid_trace_id(value):
        raise BadRequest(f"'trace_id' must match {TRACE_ID_PATTERN}, got {value!r}")
    return value


@dataclass(frozen=True)
class SubmitMatrixRequest(Request):
    """Queue a Gram-matrix job over an inline corpus.

    ``spec`` is a :meth:`KernelSpec.to_dict` payload (or a bare kind name),
    ``strings`` an :func:`encode_corpus` list.  ``shards > 1`` asks the
    server to split the computation into that many symmetric index blocks,
    each evaluated as a separate engine task and merged — the values are
    bit-identical to an unsharded run.  ``shards=1`` explicitly requests
    the monolithic evaluation; ``shards=None`` (the default) leaves the
    choice to the server's configured default.

    ``distributed=True`` additionally persists each index-block pair as an
    individually *leasable* block-task record in the server's job store,
    so pull-loop workers (``repro-iokast worker``) in other processes — or
    on other hosts sharing the state dir — can claim and execute them; the
    server assembles the finished blocks into the same bit-identical
    matrix.  With ``distributed=False`` (the default) the sharded blocks
    are evaluated in-process, as before.

    ``use_cache=False`` bypasses the server's persistent matrix result
    cache entirely (no lookup, no store-back): the job always re-evaluates
    its kernel pairs.  The payload is bit-identical either way — the cache
    only ever changes *where* values come from, never what they are.
    """

    TYPE: ClassVar[str] = "submit-matrix"

    spec: Any
    strings: Tuple[Mapping[str, Any], ...] = ()
    normalized: bool = True
    repair: bool = True
    shards: Optional[int] = None
    distributed: bool = False
    use_cache: bool = True
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "strings", tuple(self.strings))
        object.__setattr__(self, "trace_id", _optional_trace_id(self.trace_id))
        if not isinstance(self.normalized, bool) or not isinstance(self.repair, bool):
            raise BadRequest("'normalized' and 'repair' must be booleans")
        if not isinstance(self.distributed, bool):
            raise BadRequest("'distributed' must be a boolean")
        if not isinstance(self.use_cache, bool):
            raise BadRequest("'use_cache' must be a boolean")
        if self.shards is not None and (
            not isinstance(self.shards, int) or isinstance(self.shards, bool) or self.shards < 1
        ):
            raise BadRequest(f"'shards' must be a positive integer or null, got {self.shards!r}")


@dataclass(frozen=True)
class SubmitAnalyzeRequest(Request):
    """Queue a full pipeline run (matrix → KPCA → clustering → metrics)."""

    TYPE: ClassVar[str] = "submit-analyze"

    spec: Any
    strings: Tuple[Mapping[str, Any], ...] = ()
    n_clusters: int = 3
    n_components: int = 2
    linkage: str = "single"
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "strings", tuple(self.strings))
        object.__setattr__(self, "trace_id", _optional_trace_id(self.trace_id))
        for name, value in (("n_clusters", self.n_clusters), ("n_components", self.n_components)):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise BadRequest(f"{name!r} must be a positive integer, got {value!r}")
        _require_str(self.linkage, "'linkage'")


#: Strategies :class:`FitModelRequest` accepts (mirrors
#: :data:`repro.streaming.landmarks.LANDMARK_STRATEGIES`, duplicated here so
#: the wire layer validates without importing the streaming package).
_LANDMARK_STRATEGIES = ("uniform", "kcenter", "leverage")

#: Model names are path components in the store; same rule both sides.
_MODEL_NAME = r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$"


def _require_model_name(value: Any) -> str:
    name = _require_str(value, "'name'")
    if not re.match(_MODEL_NAME, name):
        raise BadRequest(f"'name' must match {_MODEL_NAME}, got {name!r}")
    return name


@dataclass(frozen=True)
class FitModelRequest(Request):
    """Queue a landmark/Nyström model fit over an inline corpus.

    The server computes (or serves from its result cache) the full Gram
    under ``spec``, selects ``landmarks`` representatives with
    ``strategy``, freezes the model and persists it under
    ``<state-dir>/models/<name>``.  ``n_clusters`` forces fitted kernel
    k-means pseudo-labels even on a labelled corpus; an unlabelled corpus
    gets them automatically.  Like ``submit-matrix``, the answer is a job
    envelope — poll ``result`` for the model summary.
    """

    TYPE: ClassVar[str] = "fit-model"

    spec: Any
    strings: Tuple[Mapping[str, Any], ...] = ()
    name: str = ""
    landmarks: int = 16
    strategy: str = "kcenter"
    seed: int = 2017
    n_components: int = 2
    n_clusters: Optional[int] = None
    use_cache: bool = True
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "strings", tuple(self.strings))
        object.__setattr__(self, "name", _require_model_name(self.name))
        object.__setattr__(self, "trace_id", _optional_trace_id(self.trace_id))
        for field_name, value in (
            ("landmarks", self.landmarks),
            ("seed", self.seed),
            ("n_components", self.n_components),
        ):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise BadRequest(f"{field_name!r} must be a positive integer, got {value!r}")
        if self.n_clusters is not None and (
            not isinstance(self.n_clusters, int) or isinstance(self.n_clusters, bool) or self.n_clusters < 1
        ):
            raise BadRequest(f"'n_clusters' must be a positive integer or null, got {self.n_clusters!r}")
        if self.strategy not in _LANDMARK_STRATEGIES:
            raise BadRequest(
                f"'strategy' must be one of {', '.join(_LANDMARK_STRATEGIES)}, got {self.strategy!r}"
            )
        if not isinstance(self.use_cache, bool):
            raise BadRequest("'use_cache' must be a boolean")


@dataclass(frozen=True)
class ClassifyRequest(Request):
    """Classify (and optionally embed) traces against a stored model.

    Answered *synchronously* — this is the streaming fast path: each
    string costs at most ``m`` kernel evaluations against the model's
    landmarks, zero when the pair store already holds the row.  The
    response carries one result per input string plus the request's
    kernel-evaluation count and latency.
    """

    TYPE: ClassVar[str] = "classify"

    name: str = ""
    strings: Tuple[Mapping[str, Any], ...] = ()
    embed: bool = False
    trace_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", _require_model_name(self.name))
        object.__setattr__(self, "strings", tuple(self.strings))
        object.__setattr__(self, "trace_id", _optional_trace_id(self.trace_id))
        if not self.strings:
            raise BadRequest("classify requires at least one string")
        if not isinstance(self.embed, bool):
            raise BadRequest("'embed' must be a boolean")


@dataclass(frozen=True)
class ModelsRequest(Request):
    """List the server's persisted landmark models with their serve counters."""

    TYPE: ClassVar[str] = "models"


@dataclass(frozen=True)
class StatusRequest(Request):
    TYPE: ClassVar[str] = "status"

    job_id: str

    def __post_init__(self) -> None:
        _require_str(self.job_id, "'job_id'")


@dataclass(frozen=True)
class ResultRequest(Request):
    """Fetch a job's result, waiting up to ``wait`` seconds server-side.

    An unfinished job answers with :class:`JobPending` (clients poll).
    ``forget=True`` evicts the job from the live session *and* the on-disk
    store after delivery.
    """

    TYPE: ClassVar[str] = "result"

    job_id: str
    wait: float = 0.0
    forget: bool = False

    def __post_init__(self) -> None:
        _require_str(self.job_id, "'job_id'")
        if isinstance(self.wait, bool) or not isinstance(self.wait, (int, float)) or self.wait < 0:
            raise BadRequest(f"'wait' must be a non-negative number, got {self.wait!r}")
        object.__setattr__(self, "wait", float(self.wait))
        if not isinstance(self.forget, bool):
            raise BadRequest("'forget' must be a boolean")


@dataclass(frozen=True)
class CancelRequest(Request):
    TYPE: ClassVar[str] = "cancel"

    job_id: str

    def __post_init__(self) -> None:
        _require_str(self.job_id, "'job_id'")


@dataclass(frozen=True)
class SpecsRequest(Request):
    TYPE: ClassVar[str] = "specs"


@dataclass(frozen=True)
class HealthRequest(Request):
    """Probe the server's liveness and warmth (also ``GET /healthz``).

    Besides uptime, job counts and recovery info, the answer carries the
    load-balancer warm-routing signals: ``queue_depth`` (queued records)
    and the hit-rate summaries of both persistent cache layers
    (``matrix_cache`` and ``pair_store``, each ``None`` when disabled).
    """

    TYPE: ClassVar[str] = "health"


@dataclass(frozen=True)
class CacheStatsRequest(Request):
    """Probe the server's persistent caches.

    Answers with ``enabled`` plus, when the matrix result cache is
    configured, its counters and on-disk state (entries, bytes,
    hits/extensions/misses, stores, evictions), and a ``pair_store``
    section carrying the pair-value store's own ``enabled`` flag and
    :meth:`PairStore.stats <repro.core.pairstore.PairStore.stats>` —
    the observability hook behind ``repro-iokast remote cache-stats``.
    """

    TYPE: ClassVar[str] = "cache-stats"


_REQUEST_TYPES: Dict[str, Type[Request]] = {
    request_class.TYPE: request_class
    for request_class in (
        SubmitMatrixRequest,
        SubmitAnalyzeRequest,
        FitModelRequest,
        ClassifyRequest,
        ModelsRequest,
        StatusRequest,
        ResultRequest,
        CancelRequest,
        SpecsRequest,
        HealthRequest,
        CacheStatsRequest,
    )
}


def parse_request(payload: Any) -> Request:
    """Validate a wire object and build the typed request it names.

    Raises :class:`BadRequest` for anything that is not a well-formed
    mapping with a known ``type``, and :class:`UnsupportedVersion` when the
    ``v`` field does not match :data:`PROTOCOL_VERSION` — version first, so
    newer clients get the actionable error even if their message shape also
    changed.
    """
    if not isinstance(payload, Mapping):
        raise BadRequest(f"request must be a JSON object, got {type(payload).__name__}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise UnsupportedVersion(
            f"protocol version {version!r} is not supported (this peer speaks v{PROTOCOL_VERSION})"
        )
    type_name = payload.get("type")
    if not isinstance(type_name, str) or type_name not in _REQUEST_TYPES:
        raise BadRequest(
            f"unknown request type {type_name!r}; known types: {', '.join(sorted(_REQUEST_TYPES))}"
        )
    # "token" is an envelope-level field (bearer auth for transports with
    # no header side channel, e.g. stdio) — never a request dataclass field.
    fields = {key: value for key, value in payload.items() if key not in ("v", "type", "token")}
    return _REQUEST_TYPES[type_name]._from_fields(fields)


def payload_token(payload: Any) -> Optional[str]:
    """The envelope-level bearer token of a wire object, if it carries one.

    Raises :class:`BadRequest` when a ``token`` field is present but not a
    string — a silently ignored malformed token would authenticate as the
    anonymous caller, which is the one thing auth must never do.
    """
    if not isinstance(payload, Mapping) or "token" not in payload:
        return None
    token = payload["token"]
    if not isinstance(token, str) or not token:
        raise BadRequest("'token' must be a non-empty string when present")
    return token


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def ok_response(type_name: str, **fields: Any) -> Dict[str, Any]:
    """A success response envelope."""
    return {"v": PROTOCOL_VERSION, "ok": True, "type": type_name, **fields}


def error_response(error: ServiceError) -> Dict[str, Any]:
    """The failure envelope for a typed service error."""
    return {"v": PROTOCOL_VERSION, "ok": False, "error": error.to_dict()}


def http_status_for_response(payload: Mapping[str, Any]) -> int:
    """The HTTP status a response envelope should travel with."""
    if payload.get("ok"):
        return 200
    error = payload.get("error")
    code = str(error.get("code", "internal")) if isinstance(error, Mapping) else "internal"
    return _ERROR_CODES.get(code, ServiceError).http_status


def check_response(payload: Any) -> Dict[str, Any]:
    """Validate a response envelope; re-raise the server's typed error.

    Returns the payload when ``ok`` is true; otherwise reconstructs the
    :class:`ServiceError` subclass named by the error code and raises it,
    so remote failures surface exactly like local ones.
    """
    if not isinstance(payload, Mapping):
        raise ServiceError(f"response must be a JSON object, got {type(payload).__name__}")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise UnsupportedVersion(
            f"response protocol version {version!r} is not supported (this peer speaks v{PROTOCOL_VERSION})"
        )
    if payload.get("ok"):
        return dict(payload)
    error = payload.get("error")
    raise ServiceError.from_dict(error if isinstance(error, Mapping) else {})


# ----------------------------------------------------------------------
# Line framing (stdio transport)
# ----------------------------------------------------------------------
def dump_message(payload: Mapping[str, Any]) -> str:
    """Serialise one message as a single compact JSON line (no newlines)."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True)


def load_message(line: str) -> Any:
    """Parse one framed line back into a payload (:class:`BadRequest` on junk)."""
    try:
        return json.loads(line)
    except json.JSONDecodeError as exc:
        raise BadRequest(f"message line is not valid JSON: {exc}") from exc
