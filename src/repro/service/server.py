"""The analysis server: one warm :class:`AnalysisSession` behind a transport.

:class:`AnalysisServer` is transport-agnostic — :meth:`AnalysisServer.handle`
maps one protocol request onto the session's ``submit()/result()/forget()``
lifecycle and the on-disk :class:`~repro.service.jobstore.JobStore` — and
two thin front ends drive it:

* **HTTP** — a stdlib ``ThreadingHTTPServer`` accepting ``POST /v1`` with
  one JSON request per call (plus ``GET /healthz`` for probes).  Threaded
  handlers all talk to the same session, so every client shares the warm
  engines and caches.
* **stdio** — :func:`serve_stdio`, one JSON message per line over a pipe;
  the single-host transport ``repro-iokast serve --stdio`` exposes.

Block-sharded matrix jobs
-------------------------
A ``submit-matrix`` request with ``shards=k`` splits the corpus index range
into ``k`` contiguous blocks (:func:`~repro.core.engine.plan_index_blocks`).
Every unordered block pair becomes one engine task — one
:meth:`~repro.core.engine.GramEngine.evaluate_pairs` call — and the
per-block raw values merge through
:meth:`~repro.core.engine.GramEngine.assemble_gram`, the same assembler the
engine's incremental extension uses.  Because raw pair values are
deterministic and assembly arithmetic is shared, the sharded matrix is
bit-identical to the monolithic one.

With ``distributed=True`` the blocks additionally become individually
*leasable* ``block`` records in the job store: pull-loop workers
(:class:`~repro.service.worker.Worker`, ``repro-iokast worker``) in other
processes or on other hosts claim them under the store's cross-process
file locks, and the server assembles the finished blocks — reclaiming any
block whose worker died and its lease expired — into the same
bit-identical payload.  When ``inline_blocks`` is on (the default) the
coordinating job also executes blocks itself, so a distributed job
completes even with zero external workers.

Job persistence and recovery
----------------------------
Every service job record carries its *input* (spec, encoded corpus,
evaluation options), so it is resumable: start-up recovery requeues
queued / expired-lease jobs and the server re-adopts them — a restart
re-runs interrupted work instead of dead-ending it.  Execution always
passes through :meth:`JobStore.claim_job`, so two servers sharing one
state dir never compute the same job twice.  A background maintenance
thread requeues expired leases, adopts orphaned queued jobs, and (when a
``job_ttl`` is set) garbage-collects terminal records so long-lived state
dirs stop growing without bound.

Result caching and request coalescing
-------------------------------------
The server keeps a persistent, signature-keyed
:class:`~repro.core.cachestore.MatrixCache` under
``state_dir/matrix-cache`` (shared with the session, and with any sibling
server on the same state dir).  Matrix jobs consult it before evaluating
anything: an identical ``(spec, corpus, normalized)`` request — to this
server, a restarted one, or a sibling — is served bit-identically with
zero kernel evaluations (``cache="hit"`` in the result envelope); a
corpus extending a cached one computes only the appended rows/blocks
(``cache="extended"``), and distributed jobs skip every block pair the
cached prefix already covers.  Identical *in-flight* submissions coalesce
onto the already-queued job (the submit response carries
``coalesced=true``), so a thundering herd of equal requests costs one
engine run.  ``use_cache=False`` opts a submission out entirely.

Streaming serving tier
----------------------
Next to the batch job path the server keeps a
:class:`~repro.streaming.store.ModelStore` under ``state_dir/models``:
``fit-model`` jobs freeze a :class:`~repro.streaming.model.LandmarkModel`
from an inline corpus (through the same result cache as matrix jobs) and
persist it; synchronous ``classify`` requests then score arriving traces
against only the model's ``m`` landmarks through a warm
:class:`~repro.streaming.scorer.StreamingScorer` — at most ``m`` kernel
evaluations per cold trace, zero per repeated one, because the scorer
shares the session's engines and persistent pair store with the batch
tier.  Per-model serve counters (requests, warm traces, kernel
evaluations, latency) surface in ``health``/``/healthz`` and
``cache-stats``.

Request pipeline, auth and tenancy
----------------------------------
Dispatch is layered, not monolithic: every request — HTTP, stdio, or an
in-process :meth:`AnalysisServer.handle` call — flows through the same
:mod:`~repro.service.middleware` chain (metrics/error boundary → parsing
→ bearer-token auth → tenant resolution → quotas/rate limit → tracing)
into a :class:`~repro.service.router.Router` that maps typed requests to
handler methods.  With an :class:`~repro.service.auth.Authenticator`
configured, tokens resolve to per-tenant namespaces
(``<state-dir>/tenants/<tenant>/`` — own job store, session, matrix
cache, pair store and model store; see
:mod:`~repro.service.tenancy`), so caches and models never leak across
tenants; quotas answer with typed ``rate-limited`` / ``quota-exceeded``
errors carrying ``retry_after``.  With auth disabled (the default) every
request is the *default tenant*, whose namespace is the state dir itself
— the exact pre-tenancy behaviour.  ``/healthz`` stays unauthenticated.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import tempfile
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Mapping, Optional, TextIO, Tuple

from repro.api.session import AnalysisSession, JobError, JobTimeout
from repro.api.spec import KernelSpec, KernelSpecError, coerce_spec, registered_kinds, registry_entry
from repro.core.cachestore import MatrixCache
from repro.obs.metrics import MetricsRegistry, render_fleet
from repro.obs.tracing import new_span_id, new_trace_id, trace_context
from repro.core.engine import decode_pair_values, plan_index_blocks, string_fingerprint
from repro.core.pairstore import PairStore
from repro.core.matrix import KernelMatrix
from repro.service.auth import Authenticator
from repro.service.jobstore import JobRecord, JobStore, JobStoreError, LeaseError
from repro.service.middleware import (
    RequestContext,
    auth_middleware,
    compose,
    metrics_middleware,
    parsing_middleware,
    quota_middleware,
    tenant_middleware,
    tracing_middleware,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BadRequest,
    CacheStatsRequest,
    CancelRequest,
    CannotCancel,
    ClassifyRequest,
    FitModelRequest,
    HealthRequest,
    JobFailed,
    JobPending,
    ModelsRequest,
    RequestTooLarge,
    ResultRequest,
    ServiceError,
    SpecsRequest,
    StatusRequest,
    SubmitAnalyzeRequest,
    SubmitMatrixRequest,
    UnknownJob,
    decode_corpus,
    dump_message,
    error_response,
    http_status_for_response,
    load_message,
    ok_response,
)
from repro.service.router import Router
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenantContext,
    TenantQuotas,
    TenantRegistry,
)
from repro.service.worker import _LeaseKeeper, execute_block_task
from repro.streaming.scorer import StreamingScorer
from repro.streaming.store import ModelStore
from repro.strings.tokens import WeightedString

__all__ = ["AnalysisServer", "serve_stdio"]

logger = logging.getLogger(__name__)

#: Sleep between coordinator polls while waiting on externally-leased blocks.
_BLOCK_POLL_SECONDS = 0.1

#: Default bound on one request body (HTTP ``POST /v1`` or one stdio line).
DEFAULT_MAX_REQUEST_BYTES = 64 * 1024 * 1024


class _ServerClosing(Exception):
    """Internal: a coordinating job observed the server shutting down."""


class AnalysisServer:
    """Protocol front end owning a single session and a persistent job store.

    Parameters
    ----------
    state_dir:
        Directory for the job store (records, payloads, locks,
        quarantine).  When omitted a private temporary directory is used —
        jobs then survive *server object* restarts only if the caller
        reuses the directory.
    session:
        An existing :class:`AnalysisSession` to serve.  When omitted the
        server creates (and owns, and closes) one from *n_jobs* /
        *executor* / *max_job_workers*.
    default_shards:
        Shard count applied to matrix jobs that do not ask for one
        explicitly (1 = monolithic evaluation).
    inline_blocks:
        Whether distributed jobs' coordinators also execute block tasks
        in-process.  On (the default), a distributed job completes with
        zero workers; off, block execution is left entirely to external
        ``repro-iokast worker`` processes (a dedicated-coordinator
        deployment).
    lease_seconds:
        Lease stamped on jobs this server claims (and on its inline block
        claims); renewed while coordinating.  Other processes may reclaim
        this server's work only after it dies and the lease lapses.
    job_ttl:
        When set, terminal store records (and retained session results)
        older than this many seconds are garbage-collected by the
        maintenance thread.
    gc_interval:
        Seconds between maintenance passes (lease requeue, orphan-job
        adoption, TTL sweep, result-cache sweep).
    result_cache:
        Whether to keep the persistent matrix result cache under
        ``state_dir/matrix-cache`` (on by default).  When a *session* with
        its own :class:`~repro.core.cachestore.MatrixCache` is passed in,
        that cache is used instead.
    max_cache_entries / cache_ttl:
        LRU bound and optional idle TTL of the result cache, enforced by
        the maintenance loop (and on every store).
    pair_store:
        Whether to keep the persistent pair-value store
        (:class:`~repro.core.pairstore.PairStore`) under
        ``state_dir/pair-store`` (on by default).  It memoises *individual*
        kernel values by content fingerprint, so reordered / subset /
        interleaved resubmissions of previously computed traces — which
        miss the matrix cache — skip every already-known kernel
        evaluation, on the monolithic, sharded and distributed paths alike
        (external workers share the same directory).  When a *session*
        with its own store is passed in, that store is used instead.
    max_pair_bytes / pair_ttl:
        Size bound and optional idle TTL of the pair store, enforced by
        the maintenance loop.
    authenticator:
        The bearer-token :class:`~repro.service.auth.Authenticator`.
        Omitted or :meth:`Authenticator.disabled`, every request is the
        default tenant and no token is required (the pre-auth behaviour).
    default_quotas:
        :class:`~repro.service.tenancy.TenantQuotas` applied to tenants
        without a per-tenant override from the tenants file.
    max_request_bytes:
        Upper bound on one request body; larger HTTP posts (and stdio
        lines) are refused with a typed ``request-too-large`` error
        before the body is read into memory.
    """

    def __init__(
        self,
        state_dir: Optional[str] = None,
        session: Optional[AnalysisSession] = None,
        n_jobs: int = 1,
        executor: str = "thread",
        max_job_workers: int = 2,
        default_shards: int = 1,
        inline_blocks: bool = True,
        lease_seconds: float = 900.0,
        job_ttl: Optional[float] = None,
        gc_interval: float = 30.0,
        result_cache: bool = True,
        max_cache_entries: int = 64,
        cache_ttl: Optional[float] = None,
        pair_store: bool = True,
        max_pair_bytes: Optional[int] = None,
        pair_ttl: Optional[float] = None,
        authenticator: Optional[Authenticator] = None,
        default_quotas: Optional[TenantQuotas] = None,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ) -> None:
        if default_shards < 1:
            raise ValueError(f"default_shards must be >= 1, got {default_shards}")
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        if job_ttl is not None and job_ttl < 0:
            raise ValueError(f"job_ttl must be >= 0 or None, got {job_ttl}")
        if gc_interval <= 0:
            raise ValueError(f"gc_interval must be > 0, got {gc_interval}")
        if max_request_bytes < 1024:
            raise ValueError(f"max_request_bytes must be >= 1024, got {max_request_bytes}")
        self._owns_session = session is None
        self.session = session if session is not None else AnalysisSession(
            n_jobs=n_jobs, executor=executor, max_job_workers=max_job_workers, job_ttl=job_ttl
        )
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if state_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-service-")
            state_dir = self._tempdir.name
        self.store = JobStore(state_dir)
        if result_cache and self.session.matrix_cache is None:
            self.session.matrix_cache = MatrixCache(
                os.path.join(self.store.root, "matrix-cache"),
                max_entries=max_cache_entries,
                ttl=cache_ttl,
            )
        if pair_store and self.session.pair_store is None:
            store_options: Dict[str, Any] = {"ttl": pair_ttl}
            if max_pair_bytes is not None:
                store_options["max_bytes"] = max_pair_bytes
            self.session.set_pair_store(
                PairStore(os.path.join(self.store.root, "pair-store"), **store_options)
            )
        #: Persistent landmark models (the streaming serving tier), shared
        #: through the state dir with workers executing ``fit-model`` jobs.
        self.model_store = ModelStore(os.path.join(self.store.root, "models"))
        self.default_shards = default_shards
        self.inline_blocks = inline_blocks
        self.lease_seconds = float(lease_seconds)
        self.job_ttl = job_ttl
        self.gc_interval = float(gc_interval)
        self.max_request_bytes = int(max_request_bytes)
        #: The auth decision point of the middleware chain.
        self.auth = authenticator if authenticator is not None else Authenticator.disabled()
        # Remembered construction knobs so lazily-built tenant namespaces
        # mirror the server's own session/cache configuration.
        self._session_config: Dict[str, Any] = {
            "n_jobs": n_jobs, "executor": executor, "max_job_workers": max_job_workers,
        }
        self._cache_config: Dict[str, Any] = {
            "result_cache": result_cache, "max_cache_entries": max_cache_entries,
            "cache_ttl": cache_ttl, "pair_store": pair_store,
            "max_pair_bytes": max_pair_bytes, "pair_ttl": pair_ttl,
        }
        #: Identity stamped into records this server claims.
        self.worker_id = f"server-{uuid.uuid4().hex[:8]}"
        #: Process-local metrics; ``GET /metrics`` renders this registry
        #: merged with every worker snapshot found under
        #: ``<state-dir>/metrics/`` (fleet-wide view, per-process origins).
        self.metrics = MetricsRegistry()
        self.metrics_dir = os.path.join(self.store.root, "metrics")
        self.metrics.add_collector(self._collect_metrics)
        self._started = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        # The default tenant wraps the server's own store/session/model
        # store (its namespace *is* the state dir); every other tenant is
        # built lazily under <state-dir>/tenants/<id>/ by _build_tenant.
        quota_overrides = self.auth.quota_overrides
        effective_defaults = default_quotas if default_quotas is not None else TenantQuotas()
        default_context = TenantContext(
            DEFAULT_TENANT,
            self.store.root,
            self.store,
            self.session,
            self.model_store,
            quotas=quota_overrides.get(DEFAULT_TENANT, effective_defaults),
            owns_session=False,  # close() handles the default session directly
        )
        self._tenants = TenantRegistry(
            self.store.root,
            default_context,
            self._build_tenant,
            default_quotas=effective_defaults,
            quota_overrides=quota_overrides,
        )
        #: The request pipeline every front end funnels through: one
        #: middleware chain (outermost first) ending in the router.
        self.router = Router()
        self._register_routes()
        self._pipeline = compose(
            [
                metrics_middleware(self.metrics),
                parsing_middleware(),
                auth_middleware(self.auth),
                tenant_middleware(self._tenants.context),
                quota_middleware(),
                tracing_middleware(),
            ],
            self.router.dispatch,
        )
        if self.store.recovery.quarantined or self.store.recovery.interrupted or self.store.recovery.requeued:
            logger.warning("%s", self.store.recovery.describe())
        # Wake every namespace already on disk, resume whatever recovery
        # put back on the queues, then keep the stores healthy in the
        # background.
        for tenant_id in self._tenants.discover():
            self._tenants.context(tenant_id)
        for context in self._tenants.contexts():
            self._adopt_queued_jobs(context)
        self._maintenance_stop = threading.Event()
        self._maintenance_thread = threading.Thread(
            target=self._maintenance_loop, name="repro-service-maintenance", daemon=True
        )
        self._maintenance_thread.start()

    def _build_tenant(
        self, tenant_id: str, root: str, quotas: Optional[TenantQuotas]
    ) -> TenantContext:
        """Construct one non-default tenant's namespace (registry factory).

        The layout under *root* mirrors the state dir exactly — job store
        at the root, ``matrix-cache``/``pair-store``/``models`` beside it —
        so every tool that understands a state dir (workers, ``gc``,
        sweeps) works on a tenant namespace unchanged.
        """
        store = JobStore(root)
        config = self._session_config
        session = AnalysisSession(
            n_jobs=config["n_jobs"],
            executor=config["executor"],
            max_job_workers=config["max_job_workers"],
            job_ttl=self.job_ttl,
        )
        caches = self._cache_config
        if caches["result_cache"]:
            session.matrix_cache = MatrixCache(
                os.path.join(root, "matrix-cache"),
                max_entries=caches["max_cache_entries"],
                ttl=caches["cache_ttl"],
            )
        if caches["pair_store"]:
            store_options: Dict[str, Any] = {"ttl": caches["pair_ttl"]}
            if caches["max_pair_bytes"] is not None:
                store_options["max_bytes"] = caches["max_pair_bytes"]
            session.set_pair_store(PairStore(os.path.join(root, "pair-store"), **store_options))
        model_store = ModelStore(os.path.join(root, "models"))
        if store.recovery.quarantined or store.recovery.interrupted or store.recovery.requeued:
            logger.warning("tenant %s: %s", tenant_id, store.recovery.describe())
        logger.info("tenant %r namespace ready at %s", tenant_id, root)
        return TenantContext(
            tenant_id, root, store, session, model_store, quotas=quotas, owns_session=True
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(
        self, payload: Any, token: Optional[str] = None, transport: str = "inproc"
    ) -> Dict[str, Any]:
        """Answer one wire request; every failure becomes a typed error envelope.

        The request runs the full middleware pipeline — metrics, parsing,
        auth, tenant resolution, quotas, tracing, then the router — so
        in-process callers are authenticated and rate-limited exactly like
        HTTP and stdio clients.  *token* is the transport-level bearer
        token (the HTTP front end passes the ``Authorization`` header's);
        an envelope-level ``token`` field is honoured when the transport
        supplied none.
        """
        return self._pipeline(RequestContext(payload=payload, token=token, transport=transport))

    def _register_routes(self) -> None:
        for request_type, handler in (
            (SubmitMatrixRequest, self._handle_submit_matrix),
            (SubmitAnalyzeRequest, self._handle_submit_analyze),
            (FitModelRequest, self._handle_fit_model),
            (ClassifyRequest, self._handle_classify),
            (ModelsRequest, self._handle_models),
            (StatusRequest, self._handle_status),
            (ResultRequest, self._handle_result),
            (CancelRequest, self._handle_cancel),
            (SpecsRequest, self._handle_specs),
            (HealthRequest, self._handle_health),
            (CacheStatsRequest, self._handle_cache_stats),
        ):
            self.router.register(request_type, handler)

    @property
    def matrix_cache(self) -> Optional[MatrixCache]:
        """The persistent result cache the session serves matrix jobs from."""
        return self.session.matrix_cache

    @property
    def pair_store(self) -> Optional[PairStore]:
        """The persistent pair-value store the session's engines consult."""
        return self.session.pair_store

    @property
    def tenants(self) -> TenantRegistry:
        """The tenant-namespace registry (the default tenant is always live)."""
        return self._tenants

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def _coerce_spec(self, raw: Any) -> KernelSpec:
        try:
            return coerce_spec(raw)
        except KernelSpecError as exc:
            raise BadRequest(f"invalid kernel spec: {exc}") from exc

    def _submission_key(
        self, tenant: TenantContext, spec: KernelSpec,
        strings: List[WeightedString], **options: Any
    ) -> str:
        """Content identity of one matrix submission (spec values + corpus + options)."""
        identity = {
            "signature": tenant.session.engine(spec).kernel_signature(),
            "fingerprints": [string_fingerprint(string) for string in strings],
            "names": [string.name for string in strings],
            "labels": [string.label for string in strings],
            **options,
        }
        return hashlib.sha256(
            json.dumps(identity, sort_keys=True, separators=(",", ":")).encode("utf-8")
        ).hexdigest()

    def _handle_submit_matrix(self, ctx: RequestContext) -> Dict[str, Any]:
        request = ctx.request
        assert isinstance(request, SubmitMatrixRequest)
        tenant = self._require_tenant(ctx)
        spec = self._coerce_spec(request.spec)
        strings = decode_corpus(request.strings)
        if not strings:
            raise BadRequest("submit-matrix requires a non-empty corpus")
        shards = request.shards if request.shards is not None else self.default_shards
        submission_key = self._submission_key(
            tenant,
            spec,
            strings,
            normalized=request.normalized,
            repair=request.repair,
            shards=shards,
            distributed=request.distributed,
            use_cache=request.use_cache,
        )
        # The trace follows the *request*; coalesced duplicates are answered
        # with the trace of the job actually doing the work, so their logs
        # still join up.  The submission key deliberately excludes the trace.
        trace_id = request.trace_id or new_trace_id()
        options = {
            "normalized": request.normalized,
            "repair": request.repair,
            "shards": shards,
            "distributed": request.distributed,
            "use_cache": request.use_cache,
            "examples": len(strings),
            "blocks": plan_index_blocks(len(strings), shards),
            "submission_key": submission_key,
            "tenant": tenant.tenant_id,
            "trace_id": trace_id,
            "span_id": new_span_id(),
        }
        # Coalesce identical in-flight submissions onto the job already
        # queued for them: the whole check-and-create runs under the
        # tenant's lock, so two racing equal submissions get one record and
        # one engine run.  Coalescing is per-tenant by construction — the
        # inflight map lives on the tenant — so equal submissions from two
        # tenants run twice, once in each namespace.
        with tenant.lock:
            existing_id = tenant.inflight.get(submission_key)
            if existing_id is not None:
                existing = self._unfinished_record(tenant, existing_id)
                if existing is not None:
                    tenant.result_waiters[existing.job_id] = (
                        tenant.result_waiters.get(existing.job_id, 1) + 1
                    )
                    return ok_response(
                        "job",
                        job_id=existing.job_id,
                        status=existing.status,
                        kind="matrix",
                        coalesced=True,
                        trace_id=existing.options.get("trace_id"),
                    )
                # The finished job's result_waiters entry (if any) stays:
                # its uncollected waiters still hold the old job id.
                del tenant.inflight[submission_key]
            record = tenant.store.create(
                "matrix",
                spec=spec.to_dict(),
                options=options,
                input={
                    "spec": spec.to_dict(),
                    "strings": list(request.strings),
                    "normalized": request.normalized,
                    "repair": request.repair,
                    "shards": shards,
                    "distributed": request.distributed,
                    "use_cache": request.use_cache,
                },
            )
            tenant.inflight[submission_key] = record.job_id
        self._start_record(tenant, record)
        return ok_response(
            "job", job_id=record.job_id, status="queued", kind="matrix", trace_id=trace_id
        )

    @staticmethod
    def _require_tenant(ctx: RequestContext) -> TenantContext:
        if ctx.tenant is None:
            raise ServiceError("request reached a handler without a resolved tenant")
        return ctx.tenant

    def _unfinished_record(self, tenant: TenantContext, job_id: str) -> Optional[JobRecord]:
        """The live (non-terminal) record for *job_id*, else ``None``."""
        try:
            record = tenant.store.get(job_id)
        except (KeyError, JobStoreError):
            return None
        return None if record.finished else record

    def _release_result_waiter(self, tenant: TenantContext, job_id: str) -> bool:
        """One waiter collected the result; whether the record may be dropped.

        Jobs with no waiter entry (analyze jobs, records adopted after a
        restart) behave as single-waiter: forget applies immediately.
        """
        with tenant.lock:
            remaining = tenant.result_waiters.get(job_id, 1) - 1
            if remaining > 0:
                tenant.result_waiters[job_id] = remaining
                return False
            tenant.result_waiters.pop(job_id, None)
            return True

    def _handle_submit_analyze(self, ctx: RequestContext) -> Dict[str, Any]:
        request = ctx.request
        assert isinstance(request, SubmitAnalyzeRequest)
        tenant = self._require_tenant(ctx)
        spec = self._coerce_spec(request.spec)
        strings = decode_corpus(request.strings)
        if not strings:
            raise BadRequest("submit-analyze requires a non-empty corpus")
        # Fail fast on specs the pipeline cannot drive (typed bad-request
        # at submit time instead of a failed job later).
        self._analyze_config(spec, request.n_clusters, request.n_components, request.linkage)
        trace_id = request.trace_id or new_trace_id()
        options = {
            "n_clusters": request.n_clusters,
            "n_components": request.n_components,
            "linkage": request.linkage,
            "examples": len(strings),
            "tenant": tenant.tenant_id,
            "trace_id": trace_id,
            "span_id": new_span_id(),
        }
        record = tenant.store.create(
            "analyze",
            spec=spec.to_dict(),
            options=options,
            input={
                "spec": spec.to_dict(),
                "strings": list(request.strings),
                "n_clusters": request.n_clusters,
                "n_components": request.n_components,
                "linkage": request.linkage,
            },
        )
        self._start_record(tenant, record)
        return ok_response(
            "job", job_id=record.job_id, status="queued", kind="analyze", trace_id=trace_id
        )

    def _analyze_config(self, spec: KernelSpec, n_clusters: int, n_components: int, linkage: str) -> Any:
        from repro.pipeline.config import ExperimentConfig, config_from_spec

        try:
            return config_from_spec(
                spec,
                base=ExperimentConfig(
                    n_clusters=n_clusters, n_components=n_components, linkage=linkage
                ),
            )
        except ValueError as exc:
            raise BadRequest(f"spec cannot drive the analysis pipeline: {exc}") from exc

    def _handle_fit_model(self, ctx: RequestContext) -> Dict[str, Any]:
        request = ctx.request
        assert isinstance(request, FitModelRequest)
        tenant = self._require_tenant(ctx)
        spec = self._coerce_spec(request.spec)
        strings = decode_corpus(request.strings)
        if not strings:
            raise BadRequest("fit-model requires a non-empty corpus")
        trace_id = request.trace_id or new_trace_id()
        options = {
            "model": request.name,
            "landmarks": request.landmarks,
            "strategy": request.strategy,
            "examples": len(strings),
            "tenant": tenant.tenant_id,
            "trace_id": trace_id,
            "span_id": new_span_id(),
        }
        record = tenant.store.create(
            "fit-model",
            spec=spec.to_dict(),
            options=options,
            input={
                "spec": spec.to_dict(),
                "strings": list(request.strings),
                "name": request.name,
                "landmarks": request.landmarks,
                "strategy": request.strategy,
                "seed": request.seed,
                "n_components": request.n_components,
                "n_clusters": request.n_clusters,
                "use_cache": request.use_cache,
            },
        )
        self._start_record(tenant, record)
        return ok_response(
            "job", job_id=record.job_id, status="queued", kind="fit-model", trace_id=trace_id
        )

    def _start_record(self, tenant: TenantContext, record: JobRecord) -> str:
        """Queue execution of a stored record on the tenant session's job pool.

        The queued callable *claims* the record before computing, so a
        record adopted by several servers sharing one state dir (or
        re-adopted after a restart) runs exactly once; the loser of the
        claim race simply returns.
        """
        job_id = record.job_id

        def run() -> None:
            claimed = tenant.store.claim_job(job_id, self.worker_id, self.lease_seconds)
            if claimed is None:
                return  # finished, cancelled, or legitimately owned elsewhere
            # Renew the lease for as long as the computation runs — without
            # this a job slower than lease_seconds would be requeued (and
            # double-computed by a sibling server) while still executing.
            keeper = _LeaseKeeper(tenant.store, job_id, self.worker_id, self.lease_seconds)
            keeper.start()
            trace_id = claimed.options.get("trace_id")
            span_id = claimed.options.get("span_id")
            started = time.perf_counter()
            evals_before = tenant.session.engine_counters()
            outcome = "done"
            try:
                with trace_context(trace_id, span_id):
                    logger.info(
                        "job %s (%s) started trace=%s", job_id, claimed.kind, trace_id,
                        extra={"job_id": job_id, "kind": claimed.kind, "event": "job-started"},
                    )
                    payload = self._payload_for_record(tenant, claimed)
                    tenant.store.store_result(job_id, payload, worker_id=self.worker_id)
            except _ServerClosing:
                # Shutdown mid-coordination: hand the job back so the next
                # server (or this one, restarted) resumes it.
                outcome = "released"
                with contextlib.suppress(JobStoreError, KeyError):
                    tenant.store.release(job_id, self.worker_id)
                return
            except LeaseError:
                # The claim was reclaimed while we computed; the current
                # owner's result wins — do not clobber its record.
                outcome = "lease-lost"
                logger.warning("job %s lost its lease mid-run; dropping this result", job_id)
                return
            except Exception as exc:
                outcome = "error"
                with contextlib.suppress(JobStoreError, KeyError):
                    tenant.store.mark_error(job_id, f"{type(exc).__name__}: {exc}")
                raise
            finally:
                keeper.stop()
                keeper.join(timeout=1.0)
                elapsed = time.perf_counter() - started
                deltas = {
                    key: value - evals_before.get(key, 0)
                    for key, value in tenant.session.engine_counters().items()
                }
                self.metrics.counter(
                    "repro_jobs_executed_total", "Jobs this process executed, by kind and outcome.",
                    kind=claimed.kind, outcome=outcome,
                ).inc()
                self.metrics.histogram(
                    "repro_job_seconds", "Job execution wall-clock by kind.", kind=claimed.kind
                ).observe(elapsed)
                with trace_context(trace_id, span_id):
                    logger.info(
                        "job %s (%s) %s in %.3fs trace=%s kernel_evals=%d store_hits=%d",
                        job_id, claimed.kind, outcome, elapsed, trace_id,
                        deltas.get("kernel_evals", 0), deltas.get("store_hits", 0),
                        extra={"job_id": job_id, "kind": claimed.kind, "event": "job-finished"},
                    )
            # Deliberately return nothing: results are always answered from
            # the store, and a returned payload would be pinned in session
            # memory for jobs no client ever polls.

        session_job = tenant.session.submit_work(f"service-{record.kind}", run)
        with tenant.lock:
            tenant.session_jobs[job_id] = session_job
        return session_job

    # ------------------------------------------------------------------
    # Job computation
    # ------------------------------------------------------------------
    def _payload_for_record(self, tenant: TenantContext, record: JobRecord) -> Dict[str, Any]:
        """Compute the stamped payload a claimed record describes.

        Everything needed comes from the record's persisted ``input``, so
        this works identically for freshly submitted jobs and for jobs
        requeued by recovery in a later server process.
        """
        if record.input is None:
            raise JobStoreError(f"job {record.job_id!r} carries no stored input")
        spec = self._coerce_spec(record.input["spec"])
        strings = decode_corpus(record.input["strings"])
        if record.kind == "matrix":
            if bool(record.input.get("distributed")):
                return self._distributed_matrix_payload(
                    tenant,
                    record.job_id,
                    spec,
                    strings,
                    normalized=bool(record.input.get("normalized", True)),
                    repair=bool(record.input.get("repair", True)),
                    shards=int(record.input.get("shards", 1)),
                    use_cache=bool(record.input.get("use_cache", True)),
                )
            return self._matrix_payload(
                tenant,
                record.job_id,
                spec,
                strings,
                normalized=bool(record.input.get("normalized", True)),
                repair=bool(record.input.get("repair", True)),
                shards=int(record.input.get("shards", 1)),
                use_cache=bool(record.input.get("use_cache", True)),
            )
        if record.kind == "analyze":
            config = self._analyze_config(
                spec,
                int(record.input.get("n_clusters", 3)),
                int(record.input.get("n_components", 2)),
                str(record.input.get("linkage", "single")),
            )
            return self._analyze_payload(tenant, record.job_id, config, strings)
        if record.kind == "fit-model":
            return self._fit_model_payload(tenant, record, spec, strings)
        raise JobStoreError(f"job {record.job_id!r} has unexecutable kind {record.kind!r}")

    def _matrix_payload(
        self,
        tenant: TenantContext,
        job_id: str,
        spec: KernelSpec,
        strings: List[WeightedString],
        normalized: bool,
        repair: bool,
        shards: int,
        use_cache: bool = True,
    ) -> Dict[str, Any]:
        """The stamped matrix payload, monolithic or block-sharded in-process.

        Both paths consult the persistent result cache first (unless
        *use_cache* is off): an exact corpus hit is served with zero
        kernel evaluations, a cached prefix restricts the evaluation to
        block pairs touching an appended index, and the outcome is stamped
        into the record (``options["cache"]``).  The sharded path issues
        one engine task per remaining unordered index-block pair and
        merges through the engine's assembler; values are bit-identical to
        :meth:`AnalysisSession.matrix` because every raw pair value comes
        from the same kernel code and caches.
        """
        engine = tenant.session.engine(spec)
        if shards <= 1:
            matrix, status = tenant.session.matrix_cached(
                spec, strings, normalized=normalized, repair=repair, use_cache=use_cache
            )
        else:
            matrix, status = self._sharded_matrix(
                tenant, spec, strings, normalized, repair, shards, use_cache,
                evaluate=lambda pairs: engine.evaluate_pairs(strings, pairs),
            )
        self._stamp_cache_status(tenant, job_id, status)
        return engine.matrix_payload(matrix, strings)

    def _cache_base(
        self, tenant: TenantContext, spec: KernelSpec,
        strings: List[WeightedString], normalized: bool, use_cache: bool
    ) -> Tuple[str, Optional[KernelMatrix]]:
        """Result-cache probe: ``(status, base)`` for a sharded evaluation.

        ``("hit", full matrix)`` on an exact corpus match, ``("extended",
        prefix matrix)`` when a cached prefix can seed the assembly,
        ``("miss"|"bypass", None)`` otherwise.
        """
        if not use_cache or tenant.session.matrix_cache is None:
            return "bypass", None
        found = tenant.session.matrix_cache_lookup(spec, strings, normalized=normalized)
        if found.status == "hit":
            return "hit", KernelMatrix.from_dict(found.payload)
        if found.status == "prefix":
            return "extended", KernelMatrix.from_dict(found.payload)
        return "miss", None

    def _sharded_matrix(
        self,
        tenant: TenantContext,
        spec: KernelSpec,
        strings: List[WeightedString],
        normalized: bool,
        repair: bool,
        shards: int,
        use_cache: bool,
        evaluate: Callable[[List[Tuple[int, int]]], Dict[Tuple[int, int], float]],
    ) -> Tuple[KernelMatrix, str]:
        """Cache-aware block-sharded evaluation through *evaluate*.

        *evaluate* receives the index pairs of one block pair and returns
        their raw kernel values — the in-process path hands them straight
        to the engine, and block pairs fully inside a cached prefix are
        skipped before *evaluate* ever sees them.
        """
        from repro.core.engine import block_index_pairs

        status, base = self._cache_base(tenant, spec, strings, normalized, use_cache)
        if status == "hit":
            assert base is not None
            return self._repaired(base, repair), status
        covered = len(base) if base is not None else 0
        raw_by_pair: Dict[Tuple[int, int], float] = {}
        blocks = plan_index_blocks(len(strings), shards)
        for first_index, first in enumerate(blocks):
            for second in blocks[first_index:]:
                if first[1] <= covered and second[1] <= covered:
                    continue  # the cached prefix already covers this block pair
                pairs = block_index_pairs(first, second)
                if pairs:
                    raw_by_pair.update(evaluate(pairs))
        matrix = self._assembled_matrix(tenant, spec, strings, raw_by_pair, normalized, base=base)
        if status != "bypass":
            tenant.session.matrix_cache_store(spec, strings, matrix)
        return self._repaired(matrix, repair), status

    @staticmethod
    def _repaired(matrix: KernelMatrix, repair: bool) -> KernelMatrix:
        if repair and not matrix.is_positive_semidefinite():
            return matrix.repaired()
        return matrix

    def _assembled_matrix(
        self,
        tenant: TenantContext,
        spec: KernelSpec,
        strings: List[WeightedString],
        raw_by_pair: Dict[Tuple[int, int], float],
        normalized: bool,
        base: Optional[KernelMatrix] = None,
    ) -> KernelMatrix:
        """The *pre-repair* matrix assembled from raw block results."""
        engine = tenant.session.engine(spec)
        values = engine.assemble_gram(strings, raw_by_pair, normalized=normalized, base=base)
        return KernelMatrix(
            values=values,
            names=tuple(string.name for string in strings),
            labels=tuple(string.label for string in strings),
            kernel_name=engine.kernel.name,
            normalized=normalized,
        )

    def _stamp_cache_status(self, tenant: TenantContext, job_id: str, status: str) -> None:
        """Record the cache outcome in the job's options (best effort)."""
        with contextlib.suppress(JobStoreError, KeyError):
            tenant.store.mutate(
                job_id,
                lambda current: {"options": {**current.options, "cache": status}},
            )

    def _distributed_matrix_payload(
        self,
        tenant: TenantContext,
        job_id: str,
        spec: KernelSpec,
        strings: List[WeightedString],
        normalized: bool,
        repair: bool,
        shards: int,
        use_cache: bool = True,
    ) -> Dict[str, Any]:
        """Coordinate a worker-pull sharded matrix job and assemble its result.

        One leasable ``block`` record is persisted per unordered
        index-block pair (idempotently — a requeued coordination reuses
        the children that already exist, including finished ones).  The
        coordinator then drains the queue: claiming and executing blocks
        inline (when ``inline_blocks``), requeueing blocks whose worker's
        lease expired, and waiting on blocks leased to live external
        workers — until every block is ``done`` — then merges the raw pair
        values through the engine assembler.  Raw values are deterministic
        and JSON floats round-trip exactly, so the payload is
        bit-identical to the in-process path no matter who computed which
        block.

        The result cache short-circuits the coordination: an exact corpus
        hit returns the cached payload without creating a single block
        record, and a cached prefix drops every block pair both of whose
        blocks lie inside it — workers only ever see the appended work.
        """
        engine = tenant.session.engine(spec)
        status, base = self._cache_base(tenant, spec, strings, normalized, use_cache)
        if status == "hit":
            assert base is not None
            self._stamp_cache_status(tenant, job_id, status)
            return engine.matrix_payload(self._repaired(base, repair), strings)
        covered = len(base) if base is not None else 0
        blocks = plan_index_blocks(len(strings), shards)
        spec_dict = spec.to_dict()
        # Children inherit the parent's trace id (each with a span of its
        # own), so a worker claiming a block logs under the same trace the
        # client submitted.
        try:
            trace_id = tenant.store.get(job_id).options.get("trace_id")
        except (KeyError, JobStoreError):
            trace_id = None
        existing: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], JobRecord] = {}
        for child in tenant.store.records(kind="block"):
            if child.options.get("parent") == job_id:
                key = (tuple(child.options["first"]), tuple(child.options["second"]))
                existing[key] = child
        child_ids: List[str] = []
        for first_index, first in enumerate(blocks):
            for second in blocks[first_index:]:
                if first[1] <= covered and second[1] <= covered:
                    continue  # the cached prefix already covers this block pair
                key = (tuple(first), tuple(second))
                child = existing.get(key)
                if child is None:
                    child_options: Dict[str, Any] = {
                        "parent": job_id, "first": list(first), "second": list(second),
                        "tenant": tenant.tenant_id,
                    }
                    if trace_id is not None:
                        child_options["trace_id"] = trace_id
                        child_options["span_id"] = new_span_id()
                    child = tenant.store.create("block", spec=spec_dict, options=child_options)
                child_ids.append(child.job_id)
        corpus_cache = {job_id: strings}
        done_ids: set = set()
        try:
            while True:
                if self._maintenance_stop.is_set():
                    # The wait could otherwise outlive close() forever when
                    # no worker ever drains the queue.
                    raise _ServerClosing()
                # Only unfinished children are re-read — done is terminal,
                # so finished blocks never need another disk round trip.
                pending = [
                    tenant.store.get(child_id) for child_id in child_ids if child_id not in done_ids
                ]
                failed = [
                    child for child in pending if child.status in ("error", "cancelled", "interrupted")
                ]
                if failed:
                    raise JobStoreError(
                        f"block task {failed[0].job_id!r} ended as {failed[0].status}: {failed[0].error}"
                    )
                done_ids.update(child.job_id for child in pending if child.status == "done")
                if len(done_ids) == len(child_ids):
                    break
                progressed = False
                if self.inline_blocks:
                    # Claim directly from the known child list (queued
                    # children and expired leases of dead workers alike) —
                    # no full store scan per iteration.
                    now = time.time()
                    candidate = next((child for child in pending if child.claimable(now)), None)
                    if candidate is not None:
                        task = tenant.store.claim_job(candidate.job_id, self.worker_id, self.lease_seconds)
                        if task is not None:
                            execute_block_task(tenant.store, task, tenant.session, corpus_cache=corpus_cache)
                            progressed = True
                if not progressed:
                    # Every remaining block is leased to a live worker (or
                    # inline execution is off): wait for their results;
                    # expired leases are reclaimed by the workers' own
                    # claim scans and the maintenance tick.
                    time.sleep(_BLOCK_POLL_SECONDS)
        except _ServerClosing:
            raise  # shutdown: blocks stay claimable for the next server
        except Exception:
            # The job cannot finish: stop workers from burning time on the
            # surviving blocks and keep the state dir free of orphans.
            self._abandon_blocks(tenant, child_ids)
            raise
        raw_by_pair: Dict[Tuple[int, int], float] = {}
        block_workers = set()
        for child_id in child_ids:
            child = tenant.store.get(child_id)
            if child.worker_id:
                block_workers.add(child.worker_id)
            raw_by_pair.update(decode_pair_values(tenant.store.load_result(child_id)["pairs"]))
        matrix = self._assembled_matrix(tenant, spec, strings, raw_by_pair, normalized, base=base)
        if status != "bypass":
            tenant.session.matrix_cache_store(spec, strings, matrix)
        self._stamp_cache_status(tenant, job_id, status)
        payload = engine.matrix_payload(self._repaired(matrix, repair), strings)
        # Record who computed the blocks (observability), then drop the
        # finished children — their values live on inside the payload.
        with contextlib.suppress(JobStoreError, KeyError):
            tenant.store.mutate(
                job_id,
                lambda current: {"options": {**current.options, "workers": sorted(block_workers)}},
            )
        for child_id in child_ids:
            tenant.store.forget(child_id)
        return payload

    def _abandon_blocks(self, tenant: TenantContext, child_ids: List[str]) -> None:
        """Best-effort cancel + drop of a failed job's surviving block tasks."""
        for child_id in child_ids:
            with contextlib.suppress(JobStoreError, KeyError):
                tenant.store.mark_cancelled(child_id)
            with contextlib.suppress(JobStoreError, KeyError):
                tenant.store.forget(child_id)

    def _fit_model_payload(
        self, tenant: TenantContext, record: JobRecord,
        spec: KernelSpec, strings: List[WeightedString]
    ) -> Dict[str, Any]:
        """Fit, persist and summarise one landmark model (the ``fit-model`` body).

        The full Gram goes through the session's result cache like any
        matrix job (outcome stamped into the record); the frozen model is
        written to the shared :class:`ModelStore` and any warm scorer for
        the same name is dropped so the next ``classify`` serves the fresh
        fit.  The job payload is the small model summary — clients load
        the model itself through the store (or just classify against it).
        """
        model, status = tenant.session.fit_landmark_model(
            spec,
            strings,
            name=str(record.input["name"]),
            landmarks=int(record.input.get("landmarks", 16)),
            strategy=str(record.input.get("strategy", "kcenter")),
            seed=int(record.input.get("seed", 2017)),
            n_components=int(record.input.get("n_components", 2)),
            n_clusters=record.input.get("n_clusters"),
            use_cache=bool(record.input.get("use_cache", True)),
        )
        path = tenant.model_store.save(model)
        self._stamp_cache_status(tenant, record.job_id, status)
        with tenant.lock:
            tenant.scorers.pop(model.name, None)
        summary = model.summary()
        summary["path"] = path
        summary["cache"] = status
        return summary

    def _analyze_payload(
        self, tenant: TenantContext, job_id: str, config: Any, strings: List[WeightedString]
    ) -> Dict[str, Any]:
        from repro.pipeline.report import summarise_result

        # The matrix stage inside the pipeline goes through the session's
        # result cache; probe it up front so the analyze record (and its
        # result envelope) reports the same hit/extended/miss outcome the
        # matrix path does.
        if tenant.session.matrix_cache is None:
            status = "bypass"
        else:
            found = tenant.session.matrix_cache_lookup(
                config.kernel_spec(), strings, normalized=True
            )
            status = {"hit": "hit", "prefix": "extended"}.get(found.status, "miss")
        self._stamp_cache_status(tenant, job_id, status)
        result = tenant.session.analyze(config, strings=strings)
        return {
            "config": config.describe(),
            "metrics": {name: float(value) for name, value in result.metrics.items()},
            "assignments": [int(assignment) for assignment in result.assignments],
            "names": [string.name for string in result.strings],
            "labels": [label for label in result.labels],
            "summary": summarise_result(result, title="service analyze"),
        }

    # ------------------------------------------------------------------
    # Streaming serving (landmark models)
    # ------------------------------------------------------------------
    def _scorer(self, tenant: TenantContext, name: str) -> StreamingScorer:
        """The tenant's warm scorer for *name*, reloaded when its file changed.

        Raises the store's typed errors (``model-not-found`` when no such
        model exists, ``model-damaged`` after quarantining a broken file);
        a syntactically invalid name is a ``bad-request``.
        """
        try:
            path = tenant.model_store.path(name)
        except ValueError as exc:
            raise BadRequest(str(exc)) from exc
        try:
            mtime = os.path.getmtime(path)
        except OSError:
            mtime = -1.0  # no file: let load() raise the typed not-found
        with tenant.lock:
            cached = tenant.scorers.get(name)
            if cached is not None and cached[0] == mtime:
                return cached[1]
        scorer = StreamingScorer(tenant.model_store.load(name), tenant.session)
        with tenant.lock:
            tenant.scorers[name] = (mtime, scorer)
        return scorer

    def _handle_classify(self, ctx: RequestContext) -> Dict[str, Any]:
        request = ctx.request
        assert isinstance(request, ClassifyRequest)
        tenant = self._require_tenant(ctx)
        strings = decode_corpus(request.strings)
        if not strings:
            raise BadRequest("classify requires at least one trace")
        scorer = self._scorer(tenant, request.name)
        engine = scorer.engine
        started = time.perf_counter()
        results: List[Dict[str, Any]] = []
        evals_total = 0
        warm_traces = 0
        try:
            for string in strings:
                before = engine.cache_info()["kernel_evals"]
                if request.embed:
                    outcome, embedding = scorer.classify_with_embedding(string)
                else:
                    outcome, embedding = scorer.classify(string), None
                evals = engine.cache_info()["kernel_evals"] - before
                evals_total += evals
                if evals == 0:
                    warm_traces += 1
                entry: Dict[str, Any] = {
                    "name": string.name,
                    "label": outcome.label,
                    "scores": {label: float(score) for label, score in outcome.scores.items()},
                    "kernel_evals": evals,
                    "warm": evals == 0,
                }
                if embedding is not None:
                    entry["embedding"] = [float(value) for value in embedding]
                results.append(entry)
        except ValueError as exc:  # e.g. a model with no labelled landmarks
            raise BadRequest(str(exc)) from exc
        elapsed = time.perf_counter() - started
        self._note_model_request(
            tenant, request.name, traces=len(strings), warm=warm_traces,
            evals=evals_total, seconds=elapsed,
        )
        self.metrics.histogram(
            "repro_model_serve_seconds", "Classify request latency by model.",
            model=request.name,
        ).observe(elapsed)
        with trace_context(request.trace_id):
            logger.debug(
                "classify model=%s traces=%d warm=%d kernel_evals=%d elapsed=%.4fs trace=%s",
                request.name, len(strings), warm_traces, evals_total, elapsed,
                request.trace_id,
                extra={"model": request.name, "event": "classify"},
            )
        response = ok_response(
            "classify",
            model=request.name,
            model_id=scorer.model.model_id,
            results=results,
            kernel_evals=evals_total,
            warm_traces=warm_traces,
            elapsed_seconds=elapsed,
        )
        if request.trace_id is not None:
            response["trace_id"] = request.trace_id
        return response

    def _note_model_request(
        self, tenant: TenantContext, name: str,
        traces: int, warm: int, evals: int, seconds: float
    ) -> None:
        with tenant.lock:
            metrics = tenant.model_metrics.setdefault(
                name,
                {"requests": 0, "traces": 0, "warm_traces": 0,
                 "kernel_evals": 0, "total_seconds": 0.0},
            )
            metrics["requests"] += 1
            metrics["traces"] += traces
            metrics["warm_traces"] += warm
            metrics["kernel_evals"] += evals
            metrics["total_seconds"] += seconds

    @staticmethod
    def _served_metrics(metrics: Optional[Dict[str, float]]) -> Dict[str, Any]:
        """JSON-ready serve counters with derived rates (zeros when unserved)."""
        if not metrics:
            metrics = {}
        requests = int(metrics.get("requests", 0))
        traces = int(metrics.get("traces", 0))
        warm = int(metrics.get("warm_traces", 0))
        return {
            "requests": requests,
            "traces": traces,
            "warm_traces": warm,
            "kernel_evals": int(metrics.get("kernel_evals", 0)),
            "warm_rate": warm / traces if traces else None,
            "avg_latency_ms": (
                float(metrics.get("total_seconds", 0.0)) / requests * 1000.0
                if requests else None
            ),
        }

    def _handle_models(self, ctx: RequestContext) -> Dict[str, Any]:
        tenant = self._require_tenant(ctx)
        entries = tenant.model_store.entries()
        with tenant.lock:
            metrics = {name: dict(values) for name, values in tenant.model_metrics.items()}
        for entry in entries:
            entry["metrics"] = self._served_metrics(metrics.get(entry.get("name")))
        return ok_response("models", models=entries, count=len(entries))

    # ------------------------------------------------------------------
    # Maintenance: lease requeue, orphan adoption, TTL garbage collection
    # ------------------------------------------------------------------
    def _adopt_queued_jobs(self, tenant: TenantContext) -> List[str]:
        """Schedule queued store records this server is not already running.

        Covers jobs requeued by recovery and jobs orphaned by another
        (dead) server sharing the state dir.  Block tasks are skipped —
        they are executed through the claim path by coordinators and
        workers, never adopted into the session pool.  Queued jobs with no
        stored input predate input persistence and cannot be resumed; they
        are dead-ended as ``interrupted`` so clients get a definite answer
        instead of an eternal ``queued``.
        """
        adopted: List[str] = []
        for record in tenant.store.records():
            if record.status != "queued" or record.kind == "block":
                continue
            with tenant.lock:
                if record.job_id in tenant.session_jobs:
                    continue
            if record.input is None:
                with contextlib.suppress(JobStoreError, KeyError):
                    tenant.store.update(
                        record.job_id,
                        status="interrupted",
                        error="interrupted: queued job carries no stored input to resume from",
                    )
                continue
            self._start_record(tenant, record)
            adopted.append(record.job_id)
        return adopted

    def _maintenance_tick(self) -> None:
        # Namespaces created on disk by a sibling server since the last
        # tick get woken here, so their orphaned jobs are adopted too.
        for tenant_id in self._tenants.discover():
            if self._tenants.peek(tenant_id) is None:
                self._tenants.context(tenant_id)
        for tenant in self._tenants.contexts():
            self._maintain_tenant(tenant)

    def _maintain_tenant(self, tenant: TenantContext) -> None:
        requeued = tenant.store.requeue_expired()
        if requeued:
            logger.info(
                "tenant %s: requeued %d expired-lease job(s): %s",
                tenant.tenant_id, len(requeued), requeued,
            )
        self._adopt_queued_jobs(tenant)
        if self.job_ttl is not None:
            swept = tenant.store.sweep(self.job_ttl)
            if swept:
                logger.info("swept %d expired job(s) from the state dir", len(swept))
                with tenant.lock:
                    for job_id in swept:
                        tenant.session_jobs.pop(job_id, None)
                        tenant.result_waiters.pop(job_id, None)
        tenant.session.sweep_jobs()
        if tenant.session.matrix_cache is not None:
            evicted = tenant.session.matrix_cache.sweep()
            if evicted:
                logger.info("evicted %d result-cache entr(ies)", len(evicted))
        if tenant.session.pair_store is not None:
            dropped = tenant.session.pair_store.sweep()
            if dropped:
                logger.info("evicted %d pair-store segment(s)", len(dropped))
        # Drop coalescing entries whose job finished or vanished — a later
        # identical submission must get a fresh job (usually a cache hit) —
        # and waiter counts whose record no longer exists at all.
        with tenant.lock:
            stale = [
                key for key, job_id in tenant.inflight.items()
                if self._unfinished_record(tenant, job_id) is None
            ]
            for key in stale:
                del tenant.inflight[key]
            orphaned = []
            for job_id in tenant.result_waiters:
                try:
                    tenant.store.get(job_id)
                except KeyError:
                    orphaned.append(job_id)
                except JobStoreError:
                    pass  # unreadable, not gone: keep the count
            for job_id in orphaned:
                del tenant.result_waiters[job_id]

    def _maintenance_loop(self) -> None:
        while not self._maintenance_stop.wait(self.gc_interval):
            try:
                self._maintenance_tick()
            except Exception:  # noqa: BLE001 - maintenance must never die
                logger.exception("maintenance pass failed")

    # ------------------------------------------------------------------
    # Job queries
    # ------------------------------------------------------------------
    def _record(self, tenant: TenantContext, job_id: str) -> JobRecord:
        """*job_id*'s record in the tenant's own store — a job id from a
        different tenant is indistinguishable from a nonexistent one, so
        job ids cannot be used to probe across namespaces."""
        try:
            return tenant.store.get(job_id)
        except KeyError:
            raise UnknownJob(f"no job {job_id!r}", details={"job_id": job_id}) from None
        except JobStoreError as exc:
            raise ServiceError(f"job record {job_id!r} unreadable: {exc}", details={"job_id": job_id}) from exc

    def _reap_session_job(self, tenant: TenantContext, job_id: str) -> None:
        """Drop the finished session-side handle backing a store job."""
        with tenant.lock:
            session_job = tenant.session_jobs.get(job_id)
        if session_job is None:
            return
        if tenant.session.forget(session_job):
            with tenant.lock:
                tenant.session_jobs.pop(job_id, None)

    def _handle_status(self, ctx: RequestContext) -> Dict[str, Any]:
        request = ctx.request
        assert isinstance(request, StatusRequest)
        tenant = self._require_tenant(ctx)
        record = self._record(tenant, request.job_id)
        if record.finished:
            self._reap_session_job(tenant, record.job_id)
        response = ok_response(
            "status",
            job_id=record.job_id,
            kind=record.kind,
            status=record.status,
            error=record.error,
        )
        if "cache" in record.options:
            response["cache"] = record.options["cache"]
        if "trace_id" in record.options:
            response["trace_id"] = record.options["trace_id"]
        return response

    def _wait_for_record(self, tenant: TenantContext, job_id: str, wait: float) -> JobRecord:
        """Wait (bounded) for a record to finish, session-side or store-side.

        Jobs running in this process finish through their session future;
        jobs owned by another process (a worker or a second server on the
        same state dir) are polled in the store until the wait elapses.
        """
        deadline = time.monotonic() + max(0.0, wait)
        record = self._record(tenant, job_id)
        if record.finished:
            return record
        with tenant.lock:
            session_job = tenant.session_jobs.get(job_id)
        if session_job is not None:
            try:
                tenant.session.result(session_job, timeout=wait)
            except JobTimeout:
                pass
            except (JobError, KeyError):
                pass  # the job callable already wrote the error to the store
        # Poll the store for whatever wait remains.  This covers jobs owned
        # by another process outright, and the claim-race case where this
        # server's session future resolved instantly as a no-op while a
        # sibling server is still computing — returning early there would
        # turn the client's bounded wait into a zero-delay busy loop.
        while True:
            record = self._record(tenant, job_id)
            remaining = deadline - time.monotonic()
            if record.finished or remaining <= 0:
                return record
            time.sleep(min(_BLOCK_POLL_SECONDS, max(0.01, remaining)))

    def _handle_result(self, ctx: RequestContext) -> Dict[str, Any]:
        request = ctx.request
        assert isinstance(request, ResultRequest)
        tenant = self._require_tenant(ctx)
        record = self._wait_for_record(tenant, request.job_id, request.wait)
        if record.status == "done":
            try:
                payload = tenant.store.load_result(record.job_id)
            except JobStoreError as exc:
                raise JobFailed(str(exc), details={"job_id": record.job_id}) from exc
            response = ok_response(
                "result", job_id=record.job_id, kind=record.kind, payload=payload
            )
            if "cache" in record.options:
                # Envelope-level stamp: the payload itself stays bit-identical
                # whether it was computed cold or served from the cache.
                response["cache"] = record.options["cache"]
            if "trace_id" in record.options:
                response["trace_id"] = record.options["trace_id"]
            self._reap_session_job(tenant, record.job_id)
            if request.forget and self._release_result_waiter(tenant, record.job_id):
                tenant.store.forget(record.job_id)
            return response
        if record.status in ("error", "interrupted", "cancelled"):
            self._reap_session_job(tenant, record.job_id)
            raise JobFailed(
                record.error or f"job {record.job_id!r} ended as {record.status}",
                details={"job_id": record.job_id, "status": record.status},
            )
        raise JobPending(
            f"job {record.job_id!r} is {record.status}",
            details={"job_id": record.job_id, "status": record.status},
        )

    def _handle_cancel(self, ctx: RequestContext) -> Dict[str, Any]:
        request = ctx.request
        assert isinstance(request, CancelRequest)
        tenant = self._require_tenant(ctx)
        record = self._record(tenant, request.job_id)
        if record.finished:
            raise CannotCancel(
                f"job {record.job_id!r} already ended as {record.status}",
                details={"job_id": record.job_id, "status": record.status},
            )
        with tenant.lock:
            session_job = tenant.session_jobs.get(record.job_id)
        if session_job is not None:
            if not tenant.session.cancel(session_job):
                raise CannotCancel(
                    f"job {record.job_id!r} already started and cannot be cancelled",
                    details={"job_id": record.job_id, "status": record.status},
                )
            try:
                tenant.store.mark_cancelled(record.job_id)
            except JobStoreError as exc:
                raise CannotCancel(str(exc), details={"job_id": record.job_id}) from exc
        else:
            # No local future (e.g. the record belongs to a dead sibling
            # server).  Cancel store-side in one atomic mutate: the
            # queued-check and the flip happen under the record lock, so a
            # claimant racing us either loses (sees cancelled) or wins
            # (we report cannot-cancel) — never both.
            def cancel_if_still_queued(current: JobRecord) -> Dict[str, Any]:
                if current.status != "queued":
                    raise JobStoreError(
                        f"job {current.job_id!r} already started and cannot be cancelled"
                    )
                return {"status": "cancelled", "worker_id": None, "lease_expires_at": None}

            try:
                tenant.store.mutate(record.job_id, cancel_if_still_queued)
            except (JobStoreError, KeyError) as exc:
                raise CannotCancel(str(exc), details={"job_id": record.job_id}) from exc
        self._reap_session_job(tenant, record.job_id)
        return ok_response("cancel", job_id=record.job_id, status="cancelled")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _handle_specs(self, ctx: RequestContext) -> Dict[str, Any]:
        tenant = self._require_tenant(ctx)
        kinds = []
        for kind in registered_kinds():
            entry = registry_entry(kind)
            kinds.append(
                {
                    "kind": kind,
                    "description": entry.description,
                    "composite": entry.composite,
                    "defaults": dict(entry.defaults),
                }
            )
        return ok_response(
            "specs",
            kinds=kinds,
            warm=[spec.to_dict() for spec in tenant.session.specs()],
        )

    @staticmethod
    def _hit_rate(hits: int, misses: int) -> Optional[float]:
        total = hits + misses
        return hits / total if total else None

    def _tenant_health_summary(self, tenant: TenantContext) -> Dict[str, Any]:
        """One tenant's line in the per-namespace health/gc summaries."""
        counts: Dict[str, int] = {}
        for record in tenant.store.records():
            counts[record.status] = counts.get(record.status, 0) + 1
        cache_entries = (
            tenant.session.matrix_cache.stats()["entries"]
            if tenant.session.matrix_cache is not None else 0
        )
        return {
            "root": tenant.root,
            "jobs": counts,
            "queue_depth": counts.get("queued", 0),
            "matrix_cache_entries": cache_entries,
            "models": tenant.model_store.stats()["models"],
        }

    def _handle_health(self, ctx: RequestContext) -> Dict[str, Any]:
        tenant = self._require_tenant(ctx)
        counts: Dict[str, int] = {}
        for record in tenant.store.records():
            counts[record.status] = counts.get(record.status, 0) + 1
        # Warm-routing signals for load balancers: how deep the queue is
        # and how warm each persistent cache layer runs on this replica.
        matrix_health: Optional[Dict[str, Any]] = None
        if tenant.session.matrix_cache is not None:
            stats = tenant.session.matrix_cache.stats()
            matrix_health = {
                "hits": stats["hits"],
                "prefix_hits": stats["prefix_hits"],
                "misses": stats["misses"],
                "entries": stats["entries"],
                "hit_rate": self._hit_rate(stats["hits"] + stats["prefix_hits"], stats["misses"]),
            }
        pair_health: Optional[Dict[str, Any]] = None
        if tenant.session.pair_store is not None:
            counters = tenant.session.pair_store.counters()
            pair_health = {
                "hits": counters["hits"],
                "misses": counters["misses"],
                "hit_rate": self._hit_rate(counters["hits"], counters["misses"]),
            }
        # Streaming tier: stored models plus aggregate serve counters —
        # warm_rate is the share of classified traces that cost zero
        # kernel evaluations.
        model_stats = tenant.model_store.stats()
        with tenant.lock:
            totals: Dict[str, float] = {
                "requests": 0, "traces": 0, "warm_traces": 0,
                "kernel_evals": 0, "total_seconds": 0.0,
            }
            for metrics in tenant.model_metrics.values():
                for key in totals:
                    totals[key] += metrics.get(key, 0)
        models_health = {
            "count": model_stats["models"],
            "quarantined": model_stats["quarantined"],
            **self._served_metrics(totals),
        }
        response = ok_response(
            "health",
            status="ok",
            protocol=PROTOCOL_VERSION,
            uptime_seconds=time.time() - self._started,
            started_at=self._started,
            pid=os.getpid(),
            state_dir=self.store.root,
            tenant=tenant.tenant_id,
            auth=self.auth.enabled,
            jobs=counts,
            queue_depth=counts.get("queued", 0),
            warm_specs=len(tenant.session.specs()),
            worker_id=self.worker_id,
            result_cache=tenant.session.matrix_cache is not None,
            matrix_cache=matrix_health,
            pair_store=pair_health,
            models=models_health,
            recovered_quarantined=len(self.store.recovery.quarantined),
            recovered_interrupted=len(self.store.recovery.interrupted),
            recovered_requeued=len(self.store.recovery.requeued),
        )
        # When tenancy is live, surface a per-namespace roll-up (counts
        # only, never payloads) so operators see the whole fleet at once.
        if self._tenants.multi_tenant or self.auth.enabled:
            response["tenants"] = {
                context.tenant_id: self._tenant_health_summary(context)
                for context in self._tenants.contexts()
            }
        return response

    def _handle_cache_stats(self, ctx: RequestContext) -> Dict[str, Any]:
        tenant = self._require_tenant(ctx)
        pair_section = (
            {"enabled": True, **tenant.session.pair_store.stats()}
            if tenant.session.pair_store is not None
            else {"enabled": False}
        )
        with tenant.lock:
            served = {
                name: self._served_metrics(metrics)
                for name, metrics in tenant.model_metrics.items()
            }
        models_section = {"enabled": True, **tenant.model_store.stats(), "served": served}
        if tenant.session.matrix_cache is None:
            return ok_response(
                "cache-stats", enabled=False, tenant=tenant.tenant_id,
                pair_store=pair_section, models=models_section,
            )
        return ok_response(
            "cache-stats",
            enabled=True,
            tenant=tenant.tenant_id,
            pair_store=pair_section,
            models=models_section,
            **tenant.session.matrix_cache.stats(),
        )

    # ------------------------------------------------------------------
    # Metrics (/metrics)
    # ------------------------------------------------------------------
    def _collect_metrics(self, registry: MetricsRegistry) -> None:
        """Pull point-in-time state into the registry before every render.

        Instrumenting every read path of the engine and the stores would
        scatter registry handles through the hot loops; instead the layers
        keep their own cheap counters and this collector mirrors them into
        Prometheus families at scrape time.
        """
        registry.gauge("repro_uptime_seconds", "Seconds since this process started.").set(
            time.time() - self._started
        )
        registry.gauge(
            "repro_process_start_time_seconds", "Unix time this process started."
        ).set(self._started)
        contexts = self._tenants.contexts()
        registry.gauge("repro_tenants", "Live tenant namespaces in this process.").set(
            len(contexts)
        )
        total_queued = 0
        for tenant in contexts:
            tenant_id = tenant.tenant_id
            counts: Dict[str, int] = {}
            for record in tenant.store.records():
                counts[record.status] = counts.get(record.status, 0) + 1
            total_queued += counts.get("queued", 0)
            for status, count in counts.items():
                registry.gauge(
                    "repro_jobs", "Job records in the store by status and tenant.",
                    status=status, tenant=tenant_id,
                ).set(count)
            for key, value in tenant.session.engine_counters().items():
                registry.counter(
                    f"repro_engine_{key}_total", "Warm-engine counters summed across specs.",
                    tenant=tenant_id,
                ).set_total(value)
            if tenant.session.matrix_cache is not None:
                for key, value in tenant.session.matrix_cache.counters().items():
                    registry.counter(
                        f"repro_matrix_cache_{key}_total", "Persistent matrix result-cache counters.",
                        tenant=tenant_id,
                    ).set_total(value)
            if tenant.session.pair_store is not None:
                for key, value in tenant.session.pair_store.counters().items():
                    registry.counter(
                        f"repro_pair_store_{key}_total", "Persistent pair-value store counters.",
                        tenant=tenant_id,
                    ).set_total(value)
            for key, value in tenant.store.counters().items():
                registry.counter(
                    f"repro_jobstore_{key}_total", "Job-store lifecycle counters (this process).",
                    tenant=tenant_id,
                ).set_total(value)
            with tenant.lock:
                model_metrics = {
                    name: dict(values) for name, values in tenant.model_metrics.items()
                }
            for name, values in model_metrics.items():
                registry.counter(
                    "repro_model_requests_total", "Classify requests served, by model.",
                    model=name, tenant=tenant_id,
                ).set_total(values.get("requests", 0))
                registry.counter(
                    "repro_model_traces_total", "Traces classified, by model.",
                    model=name, tenant=tenant_id,
                ).set_total(values.get("traces", 0))
                registry.counter(
                    "repro_model_warm_traces_total",
                    "Traces classified with zero kernel evaluations, by model.",
                    model=name, tenant=tenant_id,
                ).set_total(values.get("warm_traces", 0))
                registry.counter(
                    "repro_model_kernel_evals_total",
                    "Kernel evaluations spent serving, by model.",
                    model=name, tenant=tenant_id,
                ).set_total(values.get("kernel_evals", 0))
        registry.gauge("repro_queue_depth", "Queued job records across all tenants.").set(
            total_queued
        )

    def _read_worker_snapshots(self) -> List[Dict[str, Any]]:
        """Metric snapshots workers persisted under ``<state-dir>/metrics/``.

        Unreadable or foreign files are skipped — a half-written snapshot
        must never break a scrape (writes are atomic, but be defensive).
        """
        sources: List[Dict[str, Any]] = []
        try:
            names = sorted(os.listdir(self.metrics_dir))
        except OSError:
            return sources
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.metrics_dir, name), "r", encoding="utf-8") as handle:
                    snapshot = json.load(handle)
            except (OSError, ValueError):
                continue
            if not isinstance(snapshot, Mapping):
                continue
            origin = snapshot.get("origin")
            families = snapshot.get("families")
            if isinstance(origin, str) and isinstance(families, list):
                sources.append({"origin": origin, "families": families})
        return sources

    def metrics_text(self) -> str:
        """The fleet-wide Prometheus page behind ``GET /metrics``.

        This server's registry plus every worker snapshot in the shared
        state dir, each sample labelled with its ``origin`` process.
        """
        sources = [{"origin": self.worker_id, "families": self.metrics.snapshot()}]
        sources.extend(self._read_worker_snapshots())
        return render_fleet(sources)

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    def start_http(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and serve HTTP on a background thread; returns (host, port).

        ``port=0`` binds an ephemeral port — the returned port is the real
        one, which tests and the CLI's ``--port-file`` rely on.
        """
        if self._httpd is not None:
            # repro: lint-ok[REP005] operator lifecycle misuse in-process; never reaches the wire encoder
            raise RuntimeError("HTTP front end already started")
        self._httpd = _build_http_server(self, host, port)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        return self.http_address()

    def http_address(self) -> Tuple[str, int]:
        """The bound (host, port) of the HTTP front end."""
        if self._httpd is None:
            # repro: lint-ok[REP005] operator lifecycle misuse in-process; never reaches the wire encoder
            raise RuntimeError("HTTP front end is not running")
        address = self._httpd.server_address
        return str(address[0]), int(address[1])

    def serve_http_forever(self, host: str = "127.0.0.1", port: int = 0,
                           ready: Optional[Callable[[str, int], None]] = None) -> None:
        """Blocking HTTP serve loop (the CLI's ``serve`` command).

        *ready* is called with the bound address after the socket exists but
        before the first request is accepted — the hook the CLI uses to
        write its ``--port-file``.
        """
        self._httpd = _build_http_server(self, host, port)
        bound_host, bound_port = self.http_address()
        if ready is not None:
            ready(bound_host, bound_port)
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self._httpd = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the front ends, the maintenance thread, every tenant session
        this server built, and (when owned) the default session."""
        self._maintenance_stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=5)
            self._http_thread = None
        self._maintenance_thread.join(timeout=5)
        self._tenants.close()
        if self._owns_session:
            self.session.shutdown()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "AnalysisServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"AnalysisServer(state_dir={self.store.root!r}, jobs={len(self.store.records())})"


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _ServiceHTTPHandler(BaseHTTPRequestHandler):
    """One JSON request per POST; GET /healthz for load-balancer probes."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # Set by _build_http_server on the server class.
    analysis_server: AnalysisServer

    def _respond(self, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(http_status_for_response(payload))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _bearer_token(self) -> Optional[str]:
        """The ``Authorization: Bearer <token>`` header's token, if any."""
        header = self.headers.get("Authorization")
        if header is None:
            return None
        scheme, _, credentials = header.partition(" ")
        if scheme.lower() != "bearer":
            return None
        return credentials.strip() or None

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") not in ("", "/v1"):
            self._respond(error_response(BadRequest(f"unknown endpoint {self.path!r}; POST /v1")))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._respond(error_response(BadRequest("Content-Length header is not an integer")))
            return
        # Refuse oversized bodies before reading a single byte of them:
        # an unbounded read would let one client balloon server memory.
        limit = self.analysis_server.max_request_bytes
        if length > limit:
            self.close_connection = True  # the unread body poisons the connection
            self._respond(error_response(RequestTooLarge(
                f"request body of {length} bytes exceeds the server's limit of {limit}",
                details={"max_request_bytes": limit, "content_length": length},
            )))
            return
        try:
            body = self.rfile.read(length).decode("utf-8")
            payload = load_message(body)
        except (ValueError, UnicodeDecodeError) as exc:
            self._respond(error_response(BadRequest(f"request body is not JSON: {exc}")))
            return
        except BadRequest as exc:
            self._respond(error_response(exc))
            return
        self._respond(
            self.analysis_server.handle(payload, token=self._bearer_token(), transport="http")
        )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") in ("/healthz", "/v1/health"):
            self._respond(
                self.analysis_server.handle(
                    HealthRequest().to_payload(), token=self._bearer_token(), transport="http"
                )
            )
            return
        if self.path.rstrip("/") == "/metrics":
            body = self.analysis_server.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._respond(error_response(BadRequest(f"unknown endpoint {self.path!r}; POST /v1")))

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("http %s - %s", self.address_string(), format % args)

    def log_error(self, format: str, *args: Any) -> None:  # noqa: A002
        # BaseHTTPRequestHandler funnels errors through log_message, which
        # the override above demotes to DEBUG — route them to WARNING so
        # misbehaving clients (bad request lines, oversized headers,
        # mid-body disconnects) stay diagnosable at default log levels.
        logger.warning("http %s - %s", self.address_string(), format % args)


def _build_http_server(analysis_server: AnalysisServer, host: str, port: int) -> ThreadingHTTPServer:
    handler = type("BoundServiceHTTPHandler", (_ServiceHTTPHandler,), {"analysis_server": analysis_server})
    httpd = ThreadingHTTPServer((host, port), handler)
    httpd.daemon_threads = True
    return httpd


# ----------------------------------------------------------------------
# stdio front end
# ----------------------------------------------------------------------
def serve_stdio(server: AnalysisServer, input_stream: TextIO, output_stream: TextIO) -> int:
    """Serve line-framed protocol messages until *input_stream* hits EOF.

    Every input line is one request, every output line one response —
    including a typed error envelope for lines that are not valid JSON, so
    a confused client always gets an answer.  Returns the number of
    messages served.
    """
    served = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        if len(line) > server.max_request_bytes:
            response: Dict[str, Any] = error_response(RequestTooLarge(
                f"request line of {len(line)} bytes exceeds the server's limit "
                f"of {server.max_request_bytes}",
                details={"max_request_bytes": server.max_request_bytes},
            ))
        else:
            try:
                payload = load_message(line)
            except BadRequest as exc:
                response = error_response(exc)
            else:
                response = server.handle(payload, transport="stdio")
        output_stream.write(dump_message(response) + "\n")
        output_stream.flush()
        served += 1
    return served
