"""The analysis server: one warm :class:`AnalysisSession` behind a transport.

:class:`AnalysisServer` is transport-agnostic — :meth:`AnalysisServer.handle`
maps one protocol request onto the session's ``submit()/result()/forget()``
lifecycle and the on-disk :class:`~repro.service.jobstore.JobStore` — and
two thin front ends drive it:

* **HTTP** — a stdlib ``ThreadingHTTPServer`` accepting ``POST /v1`` with
  one JSON request per call (plus ``GET /healthz`` for probes).  Threaded
  handlers all talk to the same session, so every client shares the warm
  engines and caches.
* **stdio** — :func:`serve_stdio`, one JSON message per line over a pipe;
  the single-host transport ``repro-iokast serve --stdio`` exposes.

Block-sharded matrix jobs
-------------------------
A ``submit-matrix`` request with ``shards=k`` splits the corpus index range
into ``k`` contiguous blocks (:func:`~repro.core.engine.plan_index_blocks`).
Every unordered block pair becomes one engine task — one
:meth:`~repro.core.engine.GramEngine.evaluate_pairs` call, scheduled over
the engine's worker pool — and the per-block raw values merge through
:meth:`~repro.core.engine.GramEngine.assemble_gram`, the same assembler the
engine's incremental extension uses.  Because raw pair values are
deterministic and assembly arithmetic is shared, the sharded matrix is
bit-identical to the monolithic one; the shard plan is recorded in the job
record for observability.

Job persistence
---------------
Every job writes its lifecycle through the store *from inside the job
callable* (queued on submit, running at start, the stamped payload plus
``done`` — or ``error`` — at the end), so a finished job's result is
answerable by a fresh server process pointed at the same state directory
even after the original process is gone.
"""

from __future__ import annotations

import json
import logging
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Mapping, Optional, TextIO, Tuple

from repro.api.session import AnalysisSession, JobError, JobTimeout
from repro.api.spec import KernelSpec, KernelSpecError, coerce_spec, registered_kinds, registry_entry
from repro.core.engine import block_index_pairs, plan_index_blocks
from repro.core.matrix import KernelMatrix
from repro.service.jobstore import JobRecord, JobStore, JobStoreError
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BadRequest,
    CancelRequest,
    CannotCancel,
    HealthRequest,
    JobFailed,
    JobPending,
    ResultRequest,
    ServiceError,
    SpecsRequest,
    StatusRequest,
    SubmitAnalyzeRequest,
    SubmitMatrixRequest,
    UnknownJob,
    decode_corpus,
    dump_message,
    error_response,
    http_status_for_response,
    load_message,
    ok_response,
    parse_request,
)
from repro.strings.tokens import WeightedString

__all__ = ["AnalysisServer", "serve_stdio"]

logger = logging.getLogger(__name__)


class AnalysisServer:
    """Protocol front end owning a single session and a persistent job store.

    Parameters
    ----------
    state_dir:
        Directory for the job store (records, payloads, quarantine).  When
        omitted a private temporary directory is used — jobs then survive
        *server object* restarts only if the caller reuses the directory.
    session:
        An existing :class:`AnalysisSession` to serve.  When omitted the
        server creates (and owns, and closes) one from *n_jobs* /
        *executor* / *max_job_workers*.
    default_shards:
        Shard count applied to matrix jobs that do not ask for one
        explicitly (1 = monolithic evaluation).
    """

    def __init__(
        self,
        state_dir: Optional[str] = None,
        session: Optional[AnalysisSession] = None,
        n_jobs: int = 1,
        executor: str = "thread",
        max_job_workers: int = 2,
        default_shards: int = 1,
    ) -> None:
        if default_shards < 1:
            raise ValueError(f"default_shards must be >= 1, got {default_shards}")
        self._owns_session = session is None
        self.session = session if session is not None else AnalysisSession(
            n_jobs=n_jobs, executor=executor, max_job_workers=max_job_workers
        )
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if state_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-service-")
            state_dir = self._tempdir.name
        self.store = JobStore(state_dir)
        self.default_shards = default_shards
        self._session_jobs: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._started = time.time()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        if self.store.recovery.quarantined or self.store.recovery.interrupted:
            logger.warning("%s", self.store.recovery.describe())

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, payload: Any) -> Dict[str, Any]:
        """Answer one wire request; every failure becomes a typed error envelope."""
        try:
            request = parse_request(payload)
            handler = self._handlers()[type(request)]
            return handler(request)
        except ServiceError as exc:
            return error_response(exc)
        except Exception as exc:  # noqa: BLE001 - the wire must always get an envelope
            logger.exception("unhandled error serving request")
            return error_response(ServiceError(f"internal error: {type(exc).__name__}: {exc}"))

    def _handlers(self) -> Dict[type, Callable[[Any], Dict[str, Any]]]:
        return {
            SubmitMatrixRequest: self._handle_submit_matrix,
            SubmitAnalyzeRequest: self._handle_submit_analyze,
            StatusRequest: self._handle_status,
            ResultRequest: self._handle_result,
            CancelRequest: self._handle_cancel,
            SpecsRequest: self._handle_specs,
            HealthRequest: self._handle_health,
        }

    # ------------------------------------------------------------------
    # Job submission
    # ------------------------------------------------------------------
    def _coerce_spec(self, raw: Any) -> KernelSpec:
        try:
            return coerce_spec(raw)
        except KernelSpecError as exc:
            raise BadRequest(f"invalid kernel spec: {exc}") from exc

    def _enqueue(
        self,
        kind: str,
        spec: KernelSpec,
        options: Mapping[str, Any],
        work: Callable[[str], Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Create the durable record, then queue the store-writing job."""
        record = self.store.create(kind, spec=spec.to_dict(), options=options)
        job_id = record.job_id

        def run() -> None:
            self.store.mark_running(job_id)
            try:
                payload = work(job_id)
            except Exception as exc:
                self.store.mark_error(job_id, f"{type(exc).__name__}: {exc}")
                raise
            self.store.store_result(job_id, payload)
            # Deliberately return nothing: results are always answered from
            # the store, and a returned payload would be pinned in session
            # memory for jobs no client ever polls.

        session_job = self.session.submit_work(f"service-{kind}", run)
        with self._lock:
            self._session_jobs[job_id] = session_job
        return ok_response("job", job_id=job_id, status="queued", kind=kind)

    def _handle_submit_matrix(self, request: SubmitMatrixRequest) -> Dict[str, Any]:
        spec = self._coerce_spec(request.spec)
        strings = decode_corpus(request.strings)
        if not strings:
            raise BadRequest("submit-matrix requires a non-empty corpus")
        shards = request.shards if request.shards is not None else self.default_shards
        options = {
            "normalized": request.normalized,
            "repair": request.repair,
            "shards": shards,
            "examples": len(strings),
            "blocks": plan_index_blocks(len(strings), shards),
        }
        return self._enqueue(
            "matrix",
            spec,
            options,
            lambda job_id: self._matrix_payload(
                spec, strings, request.normalized, request.repair, shards
            ),
        )

    def _handle_submit_analyze(self, request: SubmitAnalyzeRequest) -> Dict[str, Any]:
        from repro.pipeline.config import ExperimentConfig, config_from_spec

        spec = self._coerce_spec(request.spec)
        strings = decode_corpus(request.strings)
        if not strings:
            raise BadRequest("submit-analyze requires a non-empty corpus")
        try:
            config = config_from_spec(
                spec,
                base=ExperimentConfig(
                    n_clusters=request.n_clusters,
                    n_components=request.n_components,
                    linkage=request.linkage,
                ),
            )
        except ValueError as exc:
            raise BadRequest(f"spec cannot drive the analysis pipeline: {exc}") from exc
        options = {
            "n_clusters": request.n_clusters,
            "n_components": request.n_components,
            "linkage": request.linkage,
            "examples": len(strings),
        }
        return self._enqueue(
            "analyze",
            spec,
            options,
            lambda job_id: self._analyze_payload(config, strings),
        )

    # ------------------------------------------------------------------
    # Job computation
    # ------------------------------------------------------------------
    def _matrix_payload(
        self,
        spec: KernelSpec,
        strings: List[WeightedString],
        normalized: bool,
        repair: bool,
        shards: int,
    ) -> Dict[str, Any]:
        """The stamped matrix payload, monolithic or block-sharded.

        The sharded path issues one engine task per unordered index-block
        pair and merges through the engine's assembler; values are
        bit-identical to :meth:`AnalysisSession.matrix` because every raw
        pair value comes from the same kernel code and caches.
        """
        engine = self.session.engine(spec)
        if shards <= 1:
            matrix = self.session.matrix(spec, strings, normalized=normalized, repair=repair)
        else:
            blocks = plan_index_blocks(len(strings), shards)
            raw_by_pair: Dict[Tuple[int, int], float] = {}
            for first_index, first in enumerate(blocks):
                for second in blocks[first_index:]:
                    pairs = block_index_pairs(first, second)
                    if pairs:
                        raw_by_pair.update(engine.evaluate_pairs(strings, pairs))
            values = engine.assemble_gram(strings, raw_by_pair, normalized=normalized)
            matrix = KernelMatrix(
                values=values,
                names=tuple(string.name for string in strings),
                labels=tuple(string.label for string in strings),
                kernel_name=engine.kernel.name,
                normalized=normalized,
            )
            if repair and not matrix.is_positive_semidefinite():
                matrix = matrix.repaired()
        return engine.matrix_payload(matrix, strings)

    def _analyze_payload(self, config: Any, strings: List[WeightedString]) -> Dict[str, Any]:
        from repro.pipeline.report import summarise_result

        result = self.session.analyze(config, strings=strings)
        return {
            "config": config.describe(),
            "metrics": {name: float(value) for name, value in result.metrics.items()},
            "assignments": [int(assignment) for assignment in result.assignments],
            "names": [string.name for string in result.strings],
            "labels": [label for label in result.labels],
            "summary": summarise_result(result, title="service analyze"),
        }

    # ------------------------------------------------------------------
    # Job queries
    # ------------------------------------------------------------------
    def _record(self, job_id: str) -> JobRecord:
        try:
            return self.store.get(job_id)
        except KeyError:
            raise UnknownJob(f"no job {job_id!r}", details={"job_id": job_id}) from None
        except JobStoreError as exc:
            raise ServiceError(f"job record {job_id!r} unreadable: {exc}", details={"job_id": job_id}) from exc

    def _reap_session_job(self, job_id: str) -> None:
        """Drop the finished session-side handle backing a store job."""
        with self._lock:
            session_job = self._session_jobs.get(job_id)
        if session_job is None:
            return
        if self.session.forget(session_job):
            with self._lock:
                self._session_jobs.pop(job_id, None)

    def _handle_status(self, request: StatusRequest) -> Dict[str, Any]:
        record = self._record(request.job_id)
        if record.finished:
            self._reap_session_job(record.job_id)
        return ok_response(
            "status",
            job_id=record.job_id,
            kind=record.kind,
            status=record.status,
            error=record.error,
        )

    def _handle_result(self, request: ResultRequest) -> Dict[str, Any]:
        record = self._record(request.job_id)
        if not record.finished:
            with self._lock:
                session_job = self._session_jobs.get(request.job_id)
            if session_job is not None:
                try:
                    self.session.result(session_job, timeout=request.wait)
                except JobTimeout:
                    pass
                except (JobError, KeyError):
                    pass  # the job callable already wrote the error to the store
            record = self._record(request.job_id)
        if record.status == "done":
            try:
                payload = self.store.load_result(record.job_id)
            except JobStoreError as exc:
                raise JobFailed(str(exc), details={"job_id": record.job_id}) from exc
            response = ok_response(
                "result", job_id=record.job_id, kind=record.kind, payload=payload
            )
            self._reap_session_job(record.job_id)
            if request.forget:
                self.store.forget(record.job_id)
            return response
        if record.status in ("error", "interrupted", "cancelled"):
            self._reap_session_job(record.job_id)
            raise JobFailed(
                record.error or f"job {record.job_id!r} ended as {record.status}",
                details={"job_id": record.job_id, "status": record.status},
            )
        raise JobPending(
            f"job {record.job_id!r} is {record.status}",
            details={"job_id": record.job_id, "status": record.status},
        )

    def _handle_cancel(self, request: CancelRequest) -> Dict[str, Any]:
        record = self._record(request.job_id)
        if record.finished:
            raise CannotCancel(
                f"job {record.job_id!r} already ended as {record.status}",
                details={"job_id": record.job_id, "status": record.status},
            )
        with self._lock:
            session_job = self._session_jobs.get(record.job_id)
        cancelled = session_job is not None and self.session.cancel(session_job)
        if not cancelled:
            raise CannotCancel(
                f"job {record.job_id!r} already started and cannot be cancelled",
                details={"job_id": record.job_id, "status": record.status},
            )
        self.store.mark_cancelled(record.job_id)
        self._reap_session_job(record.job_id)
        return ok_response("cancel", job_id=record.job_id, status="cancelled")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _handle_specs(self, request: SpecsRequest) -> Dict[str, Any]:
        kinds = []
        for kind in registered_kinds():
            entry = registry_entry(kind)
            kinds.append(
                {
                    "kind": kind,
                    "description": entry.description,
                    "composite": entry.composite,
                    "defaults": dict(entry.defaults),
                }
            )
        return ok_response(
            "specs",
            kinds=kinds,
            warm=[spec.to_dict() for spec in self.session.specs()],
        )

    def _handle_health(self, request: HealthRequest) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for record in self.store.records():
            counts[record.status] = counts.get(record.status, 0) + 1
        return ok_response(
            "health",
            status="ok",
            protocol=PROTOCOL_VERSION,
            uptime_seconds=time.time() - self._started,
            state_dir=self.store.root,
            jobs=counts,
            warm_specs=len(self.session.specs()),
            recovered_quarantined=len(self.store.recovery.quarantined),
            recovered_interrupted=len(self.store.recovery.interrupted),
        )

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    def start_http(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and serve HTTP on a background thread; returns (host, port).

        ``port=0`` binds an ephemeral port — the returned port is the real
        one, which tests and the CLI's ``--port-file`` rely on.
        """
        if self._httpd is not None:
            raise RuntimeError("HTTP front end already started")
        self._httpd = _build_http_server(self, host, port)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service-http", daemon=True
        )
        self._http_thread.start()
        return self.http_address()

    def http_address(self) -> Tuple[str, int]:
        """The bound (host, port) of the HTTP front end."""
        if self._httpd is None:
            raise RuntimeError("HTTP front end is not running")
        address = self._httpd.server_address
        return str(address[0]), int(address[1])

    def serve_http_forever(self, host: str = "127.0.0.1", port: int = 0,
                           ready: Optional[Callable[[str, int], None]] = None) -> None:
        """Blocking HTTP serve loop (the CLI's ``serve`` command).

        *ready* is called with the bound address after the socket exists but
        before the first request is accepted — the hook the CLI uses to
        write its ``--port-file``.
        """
        self._httpd = _build_http_server(self, host, port)
        bound_host, bound_port = self.http_address()
        if ready is not None:
            ready(bound_host, bound_port)
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self._httpd = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the HTTP front end and (when owned) the session."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=5)
            self._http_thread = None
        if self._owns_session:
            self.session.shutdown()
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    def __enter__(self) -> "AnalysisServer":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"AnalysisServer(state_dir={self.store.root!r}, jobs={len(self.store.records())})"


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------
class _ServiceHTTPHandler(BaseHTTPRequestHandler):
    """One JSON request per POST; GET /healthz for load-balancer probes."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # Set by _build_http_server on the server class.
    analysis_server: AnalysisServer

    def _respond(self, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(http_status_for_response(payload))
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") not in ("", "/v1"):
            self._respond(error_response(BadRequest(f"unknown endpoint {self.path!r}; POST /v1")))
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = self.rfile.read(length).decode("utf-8")
            payload = load_message(body)
        except (ValueError, UnicodeDecodeError) as exc:
            self._respond(error_response(BadRequest(f"request body is not JSON: {exc}")))
            return
        except BadRequest as exc:
            self._respond(error_response(exc))
            return
        self._respond(self.analysis_server.handle(payload))

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path.rstrip("/") in ("/healthz", "/v1/health"):
            self._respond(self.analysis_server.handle(HealthRequest().to_payload()))
            return
        self._respond(error_response(BadRequest(f"unknown endpoint {self.path!r}; POST /v1")))

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("http %s - %s", self.address_string(), format % args)


def _build_http_server(analysis_server: AnalysisServer, host: str, port: int) -> ThreadingHTTPServer:
    handler = type("BoundServiceHTTPHandler", (_ServiceHTTPHandler,), {"analysis_server": analysis_server})
    httpd = ThreadingHTTPServer((host, port), handler)
    httpd.daemon_threads = True
    return httpd


# ----------------------------------------------------------------------
# stdio front end
# ----------------------------------------------------------------------
def serve_stdio(server: AnalysisServer, input_stream: TextIO, output_stream: TextIO) -> int:
    """Serve line-framed protocol messages until *input_stream* hits EOF.

    Every input line is one request, every output line one response —
    including a typed error envelope for lines that are not valid JSON, so
    a confused client always gets an answer.  Returns the number of
    messages served.
    """
    served = 0
    for line in input_stream:
        line = line.strip()
        if not line:
            continue
        try:
            payload = load_message(line)
        except BadRequest as exc:
            response: Dict[str, Any] = error_response(exc)
        else:
            response = server.handle(payload)
        output_stream.write(dump_message(response) + "\n")
        output_stream.flush()
        served += 1
    return served
