"""Parameter sweeps over the cut weight (and other experiment knobs).

Section 4.1: "The selected cut weight values were the following:
{2^1, 2^2, ..., 2^n} : n = 10."  The sweep utilities rerun the pipeline for
every cut weight on a *fixed* corpus and string encoding (so only the kernel
changes), collecting the clustering-quality metrics and the kernel-matrix
computation time.  They back experiments E6 and E7 in DESIGN.md:

* with byte information, small cut weights already give the three-group
  clustering and the cost grows as the cut weight shrinks;
* without byte information, small cut weights only separate category B and
  larger cut weights are needed to recover three groups.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pipeline.config import ExperimentConfig
from repro.pipeline.pipeline import AnalysisPipeline, AnalysisResult
from repro.strings.interner import TokenInterner
from repro.strings.tokens import WeightedString
from repro.traces.model import IOTrace

__all__ = ["PAPER_CUT_WEIGHTS", "SweepPoint", "SweepResult", "cut_weight_sweep"]

#: The paper's cut-weight grid: powers of two from 2 to 1024.
PAPER_CUT_WEIGHTS: Tuple[int, ...] = tuple(2**exponent for exponent in range(1, 11))


@dataclass(frozen=True)
class SweepPoint:
    """Metrics collected for one cut weight."""

    cut_weight: int
    metrics: Dict[str, float]
    kernel_seconds: float
    n_clusters: int

    def metric(self, name: str) -> float:
        """Shortcut accessor for one metric value."""
        return self.metrics[name]


@dataclass
class SweepResult:
    """All sweep points plus the shared configuration."""

    config: ExperimentConfig
    points: List[SweepPoint] = field(default_factory=list)

    def cut_weights(self) -> List[int]:
        """The swept cut weights in order."""
        return [point.cut_weight for point in self.points]

    def series(self, metric: str) -> List[float]:
        """One metric across the sweep, in cut-weight order."""
        return [point.metrics[metric] for point in self.points]

    def best_point(self, metric: str = "adjusted_rand_index") -> SweepPoint:
        """The sweep point maximising *metric* (ties go to the larger cut weight)."""
        if not self.points:
            raise ValueError("sweep produced no points")
        return max(self.points, key=lambda point: (point.metrics[metric], point.cut_weight))

    def as_rows(self) -> List[Dict[str, float]]:
        """Flat rows (one dict per cut weight) for reports and benchmarks."""
        rows: List[Dict[str, float]] = []
        for point in self.points:
            row: Dict[str, float] = {"cut_weight": float(point.cut_weight), "kernel_seconds": point.kernel_seconds}
            row.update(point.metrics)
            rows.append(row)
        return rows


def cut_weight_sweep(
    base_config: Optional[ExperimentConfig] = None,
    cut_weights: Sequence[int] = PAPER_CUT_WEIGHTS,
    traces: Optional[Sequence[IOTrace]] = None,
    strings: Optional[Sequence[WeightedString]] = None,
    session: Optional[object] = None,
) -> SweepResult:
    """Run the pipeline once per cut weight and collect the metrics.

    The corpus and the string encoding are computed once and shared across
    all cut weights (only the kernel changes), matching how the paper's sweep
    is defined and keeping the comparison of computation times meaningful.

    Parameters
    ----------
    base_config:
        Experiment configuration; its ``cut_weight`` field is overridden by
        every value of *cut_weights*.
    cut_weights:
        The grid to sweep (paper default: powers of two, 2..1024).
    traces:
        Optional pre-built corpus (so callers can reuse one corpus across
        several sweeps, e.g. byte-info on vs off).
    strings:
        Optional pre-encoded strings; takes precedence over *traces*.
    session:
        Optional :class:`~repro.api.session.AnalysisSession`.  When given,
        each sweep point's matrix comes from the session's warm engine for
        that cut weight's kernel spec (all sharing the session interner), so
        repeated or interleaved sweeps reuse each other's pair caches.
        Without one, a sweep-local token interner provides the same sharing
        within this sweep only.
    """
    base_config = base_config or ExperimentConfig()
    base_pipeline = AnalysisPipeline(base_config)

    if strings is None:
        trace_list = list(traces) if traces is not None else base_pipeline.build_traces()
        strings = base_pipeline.encode(trace_list)
    string_list = list(strings)

    # One token interner for the whole sweep: the integer encoding of the
    # corpus does not depend on the cut weight, so every sweep point's kernel
    # reuses the same literal → id space instead of re-interning the corpus.
    interner = TokenInterner() if session is None else None

    result = SweepResult(config=base_config)
    for cut_weight in cut_weights:
        config = base_config.with_cut_weight(cut_weight)
        pipeline = AnalysisPipeline(config, session=session)
        kernel = config.build_kernel(interner=interner) if session is None else None
        start = time.perf_counter()
        matrix = pipeline.compute_matrix(string_list, kernel=kernel)
        kernel_seconds = time.perf_counter() - start
        analysis: AnalysisResult = pipeline.analyse_matrix(matrix, string_list)
        result.points.append(
            SweepPoint(
                cut_weight=cut_weight,
                metrics=dict(analysis.metrics),
                kernel_seconds=kernel_seconds,
                n_clusters=int(analysis.metrics["n_clusters"]),
            )
        )
    return result
