"""End-to-end experiment pipeline, parameter sweeps and canned experiments."""

from repro.pipeline.config import KERNEL_CHOICES, ExperimentConfig, make_kernel
from repro.pipeline.experiments import (
    DEFAULT_SEED,
    experiment_cut_weight_sweep,
    experiment_fig6_kpca_kast,
    experiment_fig7_hclust_kast,
    experiment_fig8_kpca_blended,
    experiment_fig9_hclust_blended,
    experiment_kspectrum_baseline,
    experiment_nobytes_variant,
    experiment_worked_example,
    paper_corpus,
    paper_strings,
    worked_example_strings,
)
from repro.pipeline.pipeline import (
    PAPER_EXPECTED_PARTITION,
    AnalysisPipeline,
    AnalysisResult,
    run_experiment,
)
from repro.pipeline.report import cluster_report, format_table, summarise_result, summarise_sweep
from repro.pipeline.sweep import PAPER_CUT_WEIGHTS, SweepPoint, SweepResult, cut_weight_sweep

__all__ = [
    "KERNEL_CHOICES",
    "ExperimentConfig",
    "make_kernel",
    "DEFAULT_SEED",
    "experiment_cut_weight_sweep",
    "experiment_fig6_kpca_kast",
    "experiment_fig7_hclust_kast",
    "experiment_fig8_kpca_blended",
    "experiment_fig9_hclust_blended",
    "experiment_kspectrum_baseline",
    "experiment_nobytes_variant",
    "experiment_worked_example",
    "paper_corpus",
    "paper_strings",
    "worked_example_strings",
    "PAPER_EXPECTED_PARTITION",
    "AnalysisPipeline",
    "AnalysisResult",
    "run_experiment",
    "cluster_report",
    "format_table",
    "summarise_result",
    "summarise_sweep",
    "PAPER_CUT_WEIGHTS",
    "SweepPoint",
    "SweepResult",
    "cut_weight_sweep",
]
