"""Textual reports over analysis results.

The paper presents its evaluation as scatter plots (Kernel PCA) and
dendrograms (hierarchical clustering).  The reproduction is numeric, so these
helpers render the same information as plain-text tables and summaries: the
benchmark harness prints them, EXPERIMENTS.md quotes them and the CLI exposes
them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.pipeline.pipeline import AnalysisResult
from repro.pipeline.sweep import SweepResult

__all__ = ["format_table", "summarise_result", "summarise_sweep", "cluster_report"]


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered_rows.append([_format_cell(row.get(column, "")) for column in columns])
    widths = [
        max(len(str(column)), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(rendered[i].ljust(widths[i]) for i in range(len(columns)))
        for rendered in rendered_rows
    ]
    return "\n".join([header, separator, *body])


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def cluster_report(result: AnalysisResult) -> str:
    """Describe the flat clustering: composition and purity of each cluster."""
    composition = result.cluster_composition()
    lines: List[str] = []
    for cluster in sorted(composition):
        counts = composition[cluster]
        total = sum(counts.values())
        parts = ", ".join(f"{label}: {count}" for label, count in sorted(counts.items()))
        majority = max(counts.values()) / total if total else 0.0
        lines.append(f"cluster {cluster}: {total} examples ({parts}) majority={majority:.2f}")
    return "\n".join(lines)


def summarise_result(result: AnalysisResult, title: str = "") -> str:
    """One readable block summarising an experiment run."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"configuration : {result.config.describe()}")
    lines.append(f"examples      : {len(result.labels)}")
    metric_rows = [{"metric": name, "value": value} for name, value in sorted(result.metrics.items())]
    lines.append(format_table(metric_rows, columns=("metric", "value")))
    lines.append("")
    lines.append("cluster composition:")
    lines.append(cluster_report(result))
    if result.kpca.eigenvalues.size:
        variance = ", ".join(f"{value:.3f}" for value in result.kpca.explained_variance_ratio)
        lines.append(f"kernel PCA explained variance ratio: {variance}")
    return "\n".join(lines)


def summarise_sweep(sweep: SweepResult, title: str = "") -> str:
    """Render a cut-weight sweep as a table (one row per cut weight)."""
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(f"configuration : {sweep.config.describe()} (cut weight swept)")
    columns = (
        "cut_weight",
        "adjusted_rand_index",
        "purity",
        "nmi",
        "silhouette",
        "misplacements_vs_expected",
        "separation_ratio",
        "kernel_seconds",
    )
    lines.append(format_table(sweep.as_rows(), columns=columns))
    return "\n".join(lines)
