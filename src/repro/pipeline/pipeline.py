"""End-to-end analysis pipeline: traces → strings → kernel matrix → analysis.

This is the orchestration layer every experiment, example and benchmark goes
through.  Given an :class:`~repro.pipeline.config.ExperimentConfig` it

1. builds (or accepts) a labelled trace corpus;
2. converts every trace to a weighted string (with or without byte
   information, with the configured compaction);
3. computes the normalised kernel matrix and repairs negative eigenvalues;
4. runs Kernel PCA and hierarchical clustering on the matrix;
5. evaluates the clustering against the ground-truth labels and against the
   expected label partition (``{A} {B} {C, D}`` for the paper's main result).

The returned :class:`AnalysisResult` carries every intermediate artefact so
callers can inspect embeddings, dendrograms or individual similarities.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.matrix import KernelMatrix, compute_kernel_matrix
from repro.kernels.base import StringKernel
from repro.learn.hierarchical import ClusteringResult, HierarchicalClustering
from repro.learn.kpca import KernelPCA, KernelPCAResult
from repro.learn.metrics import (
    adjusted_rand_index,
    cluster_label_composition,
    clusters_exactly_match_partition,
    misplacement_count,
    normalized_mutual_information,
    purity,
    silhouette_from_distances,
)
from repro.pipeline.config import ExperimentConfig
from repro.strings.encoder import StringEncoder
from repro.strings.tokens import WeightedString
from repro.traces.model import IOTrace
from repro.workloads.corpus import build_corpus

__all__ = ["AnalysisResult", "AnalysisPipeline", "run_experiment", "PAPER_EXPECTED_PARTITION"]

#: The grouping the paper reports for the Kast kernel with byte information:
#: categories A and B separate on their own while C and D form one cluster.
PAPER_EXPECTED_PARTITION: Tuple[Tuple[str, ...], ...] = (("A",), ("B",), ("C", "D"))


@dataclass
class AnalysisResult:
    """Everything produced by one end-to-end experiment run."""

    config: ExperimentConfig
    strings: List[WeightedString]
    kernel_matrix: KernelMatrix
    kpca: KernelPCAResult
    clustering: ClusteringResult
    labels: Tuple[Optional[str], ...]
    metrics: Dict[str, float] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def assignments(self) -> Tuple[int, ...]:
        """Flat cluster assignments."""
        return self.clustering.assignments

    def cluster_composition(self) -> Dict[int, Dict[str, int]]:
        """Label composition of every cluster."""
        return cluster_label_composition(self.assignments, list(self.labels))

    def matches_expected_partition(
        self, expected: Sequence[Sequence[str]] = PAPER_EXPECTED_PARTITION
    ) -> bool:
        """Whether the flat clustering equals the expected label partition exactly."""
        return clusters_exactly_match_partition(self.assignments, list(self.labels), expected)

    def misplacements(self, expected: Sequence[Sequence[str]] = PAPER_EXPECTED_PARTITION) -> int:
        """Number of examples placed outside their expected group's cluster."""
        return misplacement_count(self.assignments, list(self.labels), expected)

    def separation_ratio(self) -> float:
        """How cleanly the retained clusters separate in the dendrogram.

        Ratio between the smallest merge height *undone* by the flat cut and
        the largest merge height *kept*.  Values well above 1 mean the chosen
        number of clusters corresponds to a clear gap in the dendrogram; a
        value near 1 means the cut is arbitrary (the paper's observation for
        the weaker kernels).
        """
        dendrogram = self.clustering.dendrogram
        heights = dendrogram.heights()
        if not heights:
            return 1.0
        kept = self.config.n_clusters
        boundary = len(heights) - (kept - 1)
        kept_heights = heights[:boundary]
        undone_heights = heights[boundary:]
        if not undone_heights:
            return 1.0
        largest_kept = max(kept_heights) if kept_heights else 0.0
        smallest_undone = min(undone_heights)
        if largest_kept <= 0.0:
            return float("inf") if smallest_undone > 0 else 1.0
        return smallest_undone / largest_kept


class AnalysisPipeline:
    """Run the full trace-comparison pipeline for one configuration.

    Parameters
    ----------
    config:
        The experiment configuration (defaults to the paper's main setting).
    session:
        Optional :class:`~repro.api.session.AnalysisSession`.  When given,
        the kernel-matrix stage goes through the session's warm per-spec
        engines (shared pair caches, shared token interner, the session's
        worker policy) instead of building a throwaway kernel and engine.
        :meth:`AnalysisSession.analyze` constructs pipelines this way.
    """

    def __init__(self, config: Optional[ExperimentConfig] = None, session: Optional[object] = None) -> None:
        self.config = config or ExperimentConfig()
        self.session = session

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------
    def build_traces(self) -> List[IOTrace]:
        """Build the labelled trace corpus configured for this experiment."""
        return build_corpus(self.config.corpus)

    def encode(self, traces: Sequence[IOTrace]) -> List[WeightedString]:
        """Convert traces to weighted strings using the configured representation."""
        encoder = StringEncoder(
            emit_level_up=self.config.emit_level_up,
            include_bytes_in_literal=self.config.use_byte_information,
            use_byte_information=self.config.use_byte_information,
            compaction=self.config.compaction,
        )
        return encoder.encode_corpus(list(traces))

    def compute_matrix(
        self,
        strings: Sequence[WeightedString],
        kernel: Optional[StringKernel] = None,
        cache_path: Optional[str] = None,
    ) -> KernelMatrix:
        """Compute the normalised, PSD-repaired kernel matrix.

        The computation goes through the :class:`~repro.core.engine.GramEngine`
        with the configured worker count.  *kernel* overrides the configured
        kernel (the cut-weight sweep passes kernels sharing one token
        interner); *cache_path* enables the engine's on-disk matrix
        persistence.  With a bound session (and no kernel override) the
        matrix comes from the session's warm engine for this configuration's
        kernel spec — note the session's execution policy (its ``n_jobs``
        and ``executor``) then applies, not this configuration's ``n_jobs``.
        """
        if kernel is None and self.session is not None:
            return self.session.matrix(
                self.config.kernel_spec(),
                list(strings),
                normalized=True,
                repair=True,
                cache_path=cache_path,
            )
        if kernel is None:
            kernel = self.config.build_kernel()
        return compute_kernel_matrix(
            list(strings),
            kernel,
            normalized=True,
            repair=True,
            n_jobs=self.config.n_jobs,
            cache_path=cache_path,
        )

    def analyse_matrix(
        self,
        matrix: KernelMatrix,
        strings: Sequence[WeightedString],
        timings: Optional[Dict[str, float]] = None,
    ) -> AnalysisResult:
        """Run Kernel PCA + clustering + metrics on an existing kernel matrix."""
        timings = dict(timings or {})

        start = time.perf_counter()
        kpca = KernelPCA(n_components=self.config.n_components).fit(matrix)
        timings["kpca_seconds"] = time.perf_counter() - start

        start = time.perf_counter()
        clustering = HierarchicalClustering(linkage=self.config.linkage).fit_predict(
            matrix, n_clusters=self.config.n_clusters
        )
        timings["clustering_seconds"] = time.perf_counter() - start

        labels = matrix.labels
        label_list = [label if label is not None else "?" for label in labels]
        assignments = list(clustering.assignments)
        distances = matrix.to_distance_matrix()
        metrics = {
            "purity": purity(assignments, label_list),
            "adjusted_rand_index": adjusted_rand_index(assignments, label_list),
            "nmi": normalized_mutual_information(assignments, label_list),
            "silhouette": silhouette_from_distances(distances, assignments),
            "n_clusters": float(max(assignments) + 1 if assignments else 0),
        }
        result = AnalysisResult(
            config=self.config,
            strings=list(strings),
            kernel_matrix=matrix,
            kpca=kpca,
            clustering=clustering,
            labels=labels,
            metrics=metrics,
            timings=timings,
        )
        metrics["misplacements_vs_expected"] = float(result.misplacements())
        metrics["separation_ratio"] = result.separation_ratio()
        return result

    # ------------------------------------------------------------------
    # One-call entry points
    # ------------------------------------------------------------------
    def run(self, traces: Optional[Sequence[IOTrace]] = None) -> AnalysisResult:
        """Run the full pipeline; builds the corpus unless *traces* is given."""
        timings: Dict[str, float] = {}

        start = time.perf_counter()
        trace_list = list(traces) if traces is not None else self.build_traces()
        timings["corpus_seconds"] = time.perf_counter() - start

        start = time.perf_counter()
        strings = self.encode(trace_list)
        timings["encoding_seconds"] = time.perf_counter() - start

        start = time.perf_counter()
        matrix = self.compute_matrix(strings)
        timings["kernel_matrix_seconds"] = time.perf_counter() - start

        return self.analyse_matrix(matrix, strings, timings)

    def run_on_strings(self, strings: Sequence[WeightedString]) -> AnalysisResult:
        """Run the matrix + analysis stages on pre-encoded strings."""
        timings: Dict[str, float] = {}
        start = time.perf_counter()
        matrix = self.compute_matrix(strings)
        timings["kernel_matrix_seconds"] = time.perf_counter() - start
        return self.analyse_matrix(matrix, strings, timings)


def run_experiment(config: Optional[ExperimentConfig] = None, traces: Optional[Sequence[IOTrace]] = None) -> AnalysisResult:
    """Convenience wrapper: build a pipeline for *config* and run it."""
    return AnalysisPipeline(config).run(traces)
