"""Canned experiments: one function per figure / claim of the paper.

Each ``experiment_*`` function reproduces one row of the per-experiment index
in DESIGN.md and returns the full :class:`~repro.pipeline.pipeline.AnalysisResult`
(or sweep result), so the benchmark harness, EXPERIMENTS.md and the examples
all share the same code path.

The corpus and its string encodings are cached per (seed, byte-info) pair:
the paper evaluates many kernels and cut weights on the *same* 110 examples,
and recomputing them for every benchmark would only add noise to the timing
measurements.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.core.kast import KastSpectrumKernel
from repro.pipeline.config import ExperimentConfig
from repro.pipeline.pipeline import PAPER_EXPECTED_PARTITION, AnalysisPipeline, AnalysisResult
from repro.pipeline.sweep import PAPER_CUT_WEIGHTS, SweepResult, cut_weight_sweep
from repro.strings.tokens import WeightedString
from repro.traces.model import IOTrace
from repro.workloads.corpus import CorpusConfig, build_corpus

__all__ = [
    "paper_corpus",
    "paper_strings",
    "worked_example_strings",
    "experiment_worked_example",
    "experiment_fig6_kpca_kast",
    "experiment_fig7_hclust_kast",
    "experiment_fig8_kpca_blended",
    "experiment_fig9_hclust_blended",
    "experiment_nobytes_variant",
    "experiment_cut_weight_sweep",
    "experiment_kspectrum_baseline",
    "DEFAULT_SEED",
]

#: Seed used by every canned experiment (any value works; this one is the
#: paper's publication year for memorability).
DEFAULT_SEED = 2017


# ----------------------------------------------------------------------
# Shared corpus / encoding caches
# ----------------------------------------------------------------------
@lru_cache(maxsize=8)
def paper_corpus(seed: int = DEFAULT_SEED) -> Tuple[IOTrace, ...]:
    """The 110-example corpus of section 4.1 (cached per seed)."""
    return tuple(build_corpus(CorpusConfig.paper(seed=seed)))


@lru_cache(maxsize=16)
def paper_strings(seed: int = DEFAULT_SEED, use_byte_information: bool = True) -> Tuple[WeightedString, ...]:
    """The corpus encoded as weighted strings (cached per seed and byte switch)."""
    config = ExperimentConfig(
        use_byte_information=use_byte_information,
        corpus=CorpusConfig.paper(seed=seed),
    )
    pipeline = AnalysisPipeline(config)
    return tuple(pipeline.encode(list(paper_corpus(seed))))


def _run(config: ExperimentConfig, seed: int) -> AnalysisResult:
    strings = paper_strings(seed, config.use_byte_information)
    return AnalysisPipeline(config).run_on_strings(list(strings))


# ----------------------------------------------------------------------
# E1 — the worked example of section 3.2
# ----------------------------------------------------------------------
def worked_example_strings() -> Tuple[WeightedString, WeightedString]:
    """Two weighted strings reproducing the quantities of the paper's worked example.

    The published figures (Figs. 3-5) with the exact token sequences of
    strings A and B are not included in the available text, so the
    reproduction constructs a pair realising every number the text does
    give for a cut weight of 4:

    * ``weight_{w>=4}(A) = 64`` and ``weight_{w>=4}(B) = 52`` (Eqs. 1-2);
    * exactly three shared substrings S1, S2, S3 (Figs. 3-5), where S1 has
      one occurrence in A and two in B, S2 has two occurrences in each
      string and S3 has a nested occurrence inside S1 plus an independent
      one;
    * per-string feature weights ``{19, 13, 15}`` and ``{35, 11, 14}``
      (Eqs. 3-10);
    * raw kernel value 1018 (Eq. 11) and normalised value
      ``1018 / (64 * 52) = 0.3059`` (Eq. 13).

    S1 is the three-token substring ``read[64] write[32] read[16]``, S2 is
    ``lseek[0] write[8]`` and S3 is the single token ``write[32]`` (which
    also occurs inside S1, exactly the nesting the example needs: its
    appearance inside B's second S1 occurrence has weight 3, below the cut,
    and therefore does not count).
    """
    string_a = WeightedString.parse(
        "open[0]:16 read[64]:6 write[32]:9 read[16]:4 stat[0]:15 "
        "lseek[0]:4 write[8]:3 flush[0]:2 lseek[0]:2 write[8]:4 close[0]:1 write[32]:6",
        name="example_A",
    )
    string_b = WeightedString.parse(
        "truncate[0]:6 read[64]:5 write[32]:8 read[16]:4 append[0]:3 lseek[0]:4 write[8]:2 "
        "rewind[0]:2 read[64]:7 write[32]:3 read[16]:8 fsync[0]:1 lseek[0]:1 write[8]:4 "
        "readv[0]:2 write[32]:6",
        name="example_B",
    )
    return string_a, string_b


def experiment_worked_example() -> Dict[str, object]:
    """E1: evaluate the Kast kernel on the worked-example pair (cut weight 4)."""
    string_a, string_b = worked_example_strings()
    kernel = KastSpectrumKernel(cut_weight=4, normalization="weight")
    embedding = kernel.embed(string_a, string_b)
    return {
        "weight_a": float(kernel.string_weight(string_a)),
        "weight_b": float(kernel.string_weight(string_b)),
        "n_features": float(len(embedding)),
        "kernel_value": float(embedding.kernel_value),
        "normalized_value": kernel.normalized_value(string_a, string_b),
        "feature_weights_a": tuple(sorted(embedding.vector_a)),
        "feature_weights_b": tuple(sorted(embedding.vector_b)),
    }


# ----------------------------------------------------------------------
# E2-E5 — the four figures
# ----------------------------------------------------------------------
def experiment_fig6_kpca_kast(
    seed: int = DEFAULT_SEED, cut_weight: int = 2, n_jobs: int = 1, backend: str = "numpy"
) -> AnalysisResult:
    """E2 / Figure 6: Kernel PCA of the Kast kernel matrix (byte info, cut weight 2)."""
    config = ExperimentConfig(
        kernel="kast", cut_weight=cut_weight, corpus=CorpusConfig.paper(seed=seed), n_jobs=n_jobs, backend=backend
    )
    return _run(config, seed)


def experiment_fig7_hclust_kast(
    seed: int = DEFAULT_SEED, cut_weight: int = 2, n_jobs: int = 1, backend: str = "numpy"
) -> AnalysisResult:
    """E3 / Figure 7: single-linkage clustering of the Kast kernel matrix."""
    config = ExperimentConfig(
        kernel="kast",
        cut_weight=cut_weight,
        n_clusters=3,
        linkage="single",
        corpus=CorpusConfig.paper(seed=seed),
        n_jobs=n_jobs,
        backend=backend,
    )
    return _run(config, seed)


def experiment_fig8_kpca_blended(
    seed: int = DEFAULT_SEED, cut_weight: int = 2, n_jobs: int = 1, backend: str = "numpy"
) -> AnalysisResult:
    """E4 / Figure 8: Kernel PCA of the Blended Spectrum kernel matrix.

    *backend* is accepted for CLI uniformity; the blended kernel ignores it.
    """
    config = ExperimentConfig(
        kernel="blended", cut_weight=cut_weight, corpus=CorpusConfig.paper(seed=seed), n_jobs=n_jobs, backend=backend
    )
    return _run(config, seed)


def experiment_fig9_hclust_blended(
    seed: int = DEFAULT_SEED, cut_weight: int = 2, n_clusters: int = 2, n_jobs: int = 1, backend: str = "numpy"
) -> AnalysisResult:
    """E5 / Figure 9: single-linkage clustering of the Blended Spectrum kernel matrix.

    The paper reports only two meaningful groups for this baseline: Flash I/O
    (A) on its own and everything else together, hence the default cut at two
    clusters.
    """
    config = ExperimentConfig(
        kernel="blended",
        cut_weight=cut_weight,
        n_clusters=n_clusters,
        linkage="single",
        corpus=CorpusConfig.paper(seed=seed),
        n_jobs=n_jobs,
        backend=backend,
    )
    return _run(config, seed)


# ----------------------------------------------------------------------
# E6-E8 — textual claims
# ----------------------------------------------------------------------
def experiment_nobytes_variant(
    seed: int = DEFAULT_SEED,
    cut_weights: Tuple[int, ...] = PAPER_CUT_WEIGHTS,
    n_jobs: int = 1,
    backend: str = "numpy",
) -> SweepResult:
    """E6: Kast kernel on byte-free strings across the cut-weight grid."""
    config = ExperimentConfig(
        kernel="kast",
        use_byte_information=False,
        n_clusters=3,
        corpus=CorpusConfig.paper(seed=seed),
        n_jobs=n_jobs,
        backend=backend,
    )
    strings = paper_strings(seed, use_byte_information=False)
    return cut_weight_sweep(config, cut_weights=cut_weights, strings=list(strings))


def experiment_cut_weight_sweep(
    seed: int = DEFAULT_SEED,
    cut_weights: Tuple[int, ...] = PAPER_CUT_WEIGHTS,
    n_jobs: int = 1,
    backend: str = "numpy",
) -> SweepResult:
    """E7: Kast kernel on byte-carrying strings across the cut-weight grid."""
    config = ExperimentConfig(
        kernel="kast", n_clusters=3, corpus=CorpusConfig.paper(seed=seed), n_jobs=n_jobs, backend=backend
    )
    strings = paper_strings(seed, use_byte_information=True)
    return cut_weight_sweep(config, cut_weights=cut_weights, strings=list(strings))


def experiment_kspectrum_baseline(seed: int = DEFAULT_SEED, k: int = 3) -> AnalysisResult:
    """E8: the plain k-spectrum kernel baseline the paper discards."""
    config = ExperimentConfig(
        kernel="spectrum",
        spectrum_k=k,
        n_clusters=3,
        corpus=CorpusConfig.paper(seed=seed),
    )
    return _run(config, seed)
