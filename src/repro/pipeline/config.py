"""Configuration objects for end-to-end experiments.

An :class:`ExperimentConfig` fixes every choice the paper's evaluation
varies: which kernel, which cut weight, whether byte information is kept,
how many clusters to extract and with which linkage, and how the corpus is
built.  The pipeline (:mod:`repro.pipeline.pipeline`) consumes it and the
experiment registry (:mod:`repro.pipeline.experiments`) provides the canned
configurations behind each figure of the paper.

Kernel construction is delegated to the declarative spec registry
(:mod:`repro.api.spec`): :meth:`ExperimentConfig.kernel_spec` maps the
experiment knobs onto the configured kernel kind's canonical
:class:`~repro.api.spec.KernelSpec`, and :meth:`ExperimentConfig.build_kernel`
instantiates it through :func:`~repro.api.spec.kernel_from_spec`.  The
legacy :func:`make_kernel` helper remains as a thin deprecated shim over the
same path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.api.spec import KernelSpec, kernel_choices, kernel_from_spec, make_spec
from repro.core.kast import KAST_BACKENDS
from repro.kernels.base import StringKernel
from repro.strings.interner import TokenInterner
from repro.tree.compaction import CompactionConfig
from repro.workloads.corpus import CorpusConfig

__all__ = ["ExperimentConfig", "make_kernel", "config_from_spec", "KERNEL_CHOICES"]

#: Kernel identifiers accepted by the experiment configuration and the CLI.
#: An import-time snapshot of :func:`repro.api.kernel_choices` kept for
#: backwards compatibility — code that must see kinds registered *after*
#: import (plugins) should call ``kernel_choices()`` directly, as the CLI
#: parser and :func:`config_from_spec` do.
KERNEL_CHOICES = kernel_choices()


def _spec_for(
    kind: str,
    cut_weight: int = 2,
    spectrum_k: int = 3,
    blended_weighted: bool = False,
    backend: str = "numpy",
) -> KernelSpec:
    """Map the experiment-level knobs onto one kind's canonical spec.

    The cut weight maps onto each kernel's natural "granularity" parameter:
    it is the Kast kernel's cut weight and the blended kernel's minimum
    occurrence weight; the plain spectrum and bag kernels have no equivalent
    and ignore it (which is also why the paper found them hard to tune).
    """
    kind = kind.lower()
    if kind == "kast":
        return make_spec("kast", cut_weight=cut_weight, backend=backend)
    if kind == "blended":
        return make_spec("blended", max_length=spectrum_k, weighted=blended_weighted, min_weight=cut_weight)
    if kind == "spectrum":
        return make_spec("spectrum", k=spectrum_k, weighted=blended_weighted)
    # Remaining (non-composite) registered kinds take their registry
    # defaults; unknown kinds raise through make_spec.
    return make_spec(kind)


def make_kernel(
    kind: str,
    cut_weight: int = 2,
    spectrum_k: int = 3,
    blended_weighted: bool = False,
    backend: str = "numpy",
    interner: Optional[TokenInterner] = None,
) -> StringKernel:
    """Deprecated shim: instantiate the kernel named *kind*.

    .. deprecated::
        Use :func:`repro.api.make_spec` + :func:`repro.api.kernel_from_spec`
        (or an :class:`~repro.api.session.AnalysisSession`) instead; this
        wrapper survives only for pre-registry callers and simply delegates
        to the spec registry.
    """
    warnings.warn(
        "make_kernel is deprecated; build a KernelSpec via repro.api.make_spec and "
        "instantiate it with repro.api.kernel_from_spec (or use AnalysisSession)",
        DeprecationWarning,
        stacklevel=2,
    )
    spec = _spec_for(
        kind,
        cut_weight=cut_weight,
        spectrum_k=spectrum_k,
        blended_weighted=blended_weighted,
        backend=backend,
    )
    return kernel_from_spec(spec, interner=interner)


def config_from_spec(spec: KernelSpec, base: Optional["ExperimentConfig"] = None) -> "ExperimentConfig":
    """Experiment configuration whose kernel knobs realise *spec* exactly.

    The inverse of :meth:`ExperimentConfig.kernel_spec` for the user-facing
    kernel kinds.  Specs the experiment knobs cannot express faithfully —
    composite specs, or parameters with no config equivalent set to
    non-default values (e.g. the blended kernel's ``decay``, the Kast
    kernel's ablation flags) — are rejected rather than silently altered;
    run those through an :class:`~repro.api.session.AnalysisSession`
    instead.
    """
    base = base if base is not None else ExperimentConfig()
    kind = spec.kind
    if spec.children:
        raise ValueError(
            f"composite kernel spec {spec.kind!r} cannot be expressed as an ExperimentConfig; "
            "use AnalysisSession.matrix with the spec directly"
        )
    if kind == "kast":
        config = replace(
            base,
            kernel="kast",
            cut_weight=int(spec.get("cut_weight", 2)),
            backend=str(spec.get("backend", "numpy")),
        )
    elif kind == "blended":
        config = replace(
            base,
            kernel="blended",
            cut_weight=int(spec.get("min_weight", 1)),
            spectrum_k=int(spec.get("max_length", 3)),
            blended_weighted=bool(spec.get("weighted", True)),
        )
    elif kind == "spectrum":
        config = replace(
            base,
            kernel="spectrum",
            spectrum_k=int(spec.get("k", 3)),
            blended_weighted=bool(spec.get("weighted", True)),
        )
    elif kind in kernel_choices():
        config = replace(base, kernel=kind)
    else:
        raise ValueError(f"kernel kind {kind!r} is not an experiment-level choice {kernel_choices()}")
    # Round-trip check: the configuration must reproduce the canonical spec,
    # otherwise the spec carries values the experiment knobs cannot express.
    canonical = make_spec(kind, **spec.params_dict)
    realised = config.kernel_spec()
    if realised != canonical:
        dropped = sorted(set(canonical.params) - set(realised.params))
        raise ValueError(
            f"spec parameters {[name for name, _ in dropped]} of kind {kind!r} have no "
            "ExperimentConfig equivalent; use AnalysisSession with the spec directly"
        )
    return config


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one clustering experiment end to end."""

    #: Kernel identifier (see :data:`KERNEL_CHOICES`).
    kernel: str = "kast"
    #: Cut weight (Kast) / minimum occurrence weight (blended).
    cut_weight: int = 2
    #: Substring length bound for the spectrum/blended baselines.
    spectrum_k: int = 3
    #: Whether the blended/spectrum baselines weight occurrences by token weight.
    blended_weighted: bool = False
    #: Keep the byte information in the string representation (paper's main variant).
    use_byte_information: bool = True
    #: Emit [LEVEL_UP] tokens (ablation switch).
    emit_level_up: bool = True
    #: Tree compaction configuration (ablation switch).
    compaction: CompactionConfig = field(default_factory=CompactionConfig.paper)
    #: Corpus construction parameters.
    corpus: CorpusConfig = field(default_factory=CorpusConfig.paper)
    #: Number of kernel principal components to compute.
    n_components: int = 2
    #: Number of flat clusters to extract from the dendrogram.
    n_clusters: int = 3
    #: Linkage method for hierarchical clustering (paper uses single linkage).
    linkage: str = "single"
    #: Candidate-search backend for the Kast kernel (see :data:`KAST_BACKENDS`).
    backend: str = "numpy"
    #: Worker threads for Gram-matrix construction (1 = serial).
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.backend not in KAST_BACKENDS:
            raise ValueError(f"backend must be one of {KAST_BACKENDS}, got {self.backend!r}")
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")

    def kernel_spec(self) -> KernelSpec:
        """The canonical :class:`~repro.api.spec.KernelSpec` of this configuration.

        This is the single source of truth for kernel construction, engine
        persistence signatures and process-worker reconstruction.
        """
        return _spec_for(
            self.kernel,
            cut_weight=self.cut_weight,
            spectrum_k=self.spectrum_k,
            blended_weighted=self.blended_weighted,
            backend=self.backend,
        )

    def build_kernel(self, interner: Optional[TokenInterner] = None) -> StringKernel:
        """Instantiate the configured kernel through the spec registry.

        *interner* (Kast kernel only) lets callers share one token-id space
        across several kernels — the cut-weight sweep uses this so prepared
        string encodings carry over between sweep points.
        """
        return kernel_from_spec(self.kernel_spec(), interner=interner)

    def with_cut_weight(self, cut_weight: int) -> "ExperimentConfig":
        """Copy of this configuration with a different cut weight."""
        return replace(self, cut_weight=cut_weight)

    def with_kernel(self, kernel: str) -> "ExperimentConfig":
        """Copy of this configuration with a different kernel."""
        return replace(self, kernel=kernel)

    def with_n_jobs(self, n_jobs: int) -> "ExperimentConfig":
        """Copy of this configuration with a different worker count."""
        return replace(self, n_jobs=n_jobs)

    def with_backend(self, backend: str) -> "ExperimentConfig":
        """Copy of this configuration with a different Kast search backend."""
        return replace(self, backend=backend)

    def without_byte_information(self) -> "ExperimentConfig":
        """Copy of this configuration using the byte-free string variant."""
        return replace(self, use_byte_information=False)

    def describe(self) -> str:
        """Short human-readable summary used in reports."""
        byte_text = "bytes" if self.use_byte_information else "no-bytes"
        return (
            f"kernel={self.kernel} cut_weight={self.cut_weight} {byte_text} "
            f"linkage={self.linkage} clusters={self.n_clusters}"
        )
