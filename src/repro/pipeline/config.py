"""Configuration objects for end-to-end experiments.

An :class:`ExperimentConfig` fixes every choice the paper's evaluation
varies: which kernel, which cut weight, whether byte information is kept,
how many clusters to extract and with which linkage, and how the corpus is
built.  The pipeline (:mod:`repro.pipeline.pipeline`) consumes it and the
experiment registry (:mod:`repro.pipeline.experiments`) provides the canned
configurations behind each figure of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.kast import KAST_BACKENDS, KastSpectrumKernel
from repro.kernels.bag import BagOfCharactersKernel, BagOfWordsKernel
from repro.kernels.base import StringKernel
from repro.kernels.blended import BlendedSpectrumKernel
from repro.kernels.spectrum import SpectrumKernel
from repro.strings.interner import TokenInterner
from repro.tree.compaction import CompactionConfig
from repro.workloads.corpus import CorpusConfig

__all__ = ["ExperimentConfig", "make_kernel", "KERNEL_CHOICES"]

#: Kernel identifiers accepted by :func:`make_kernel` and the CLI.
KERNEL_CHOICES = ("kast", "blended", "spectrum", "bag-of-characters", "bag-of-words")


def make_kernel(
    kind: str,
    cut_weight: int = 2,
    spectrum_k: int = 3,
    blended_weighted: bool = False,
    backend: str = "numpy",
    interner: Optional[TokenInterner] = None,
) -> StringKernel:
    """Instantiate the kernel named *kind* with the experiment's parameters.

    The cut weight maps onto each kernel's natural "granularity" parameter:
    it is the Kast kernel's cut weight and the blended kernel's minimum
    occurrence weight; the plain spectrum and bag kernels have no equivalent
    and ignore it (which is also why the paper found them hard to tune).
    *backend* and *interner* configure the Kast kernel's candidate-search
    implementation (see :class:`~repro.core.kast.KastSpectrumKernel`); the
    other kernels ignore them.
    """
    kind = kind.lower()
    if kind == "kast":
        return KastSpectrumKernel(cut_weight=cut_weight, backend=backend, interner=interner)
    if kind == "blended":
        return BlendedSpectrumKernel(max_length=spectrum_k, weighted=blended_weighted, min_weight=cut_weight)
    if kind == "spectrum":
        return SpectrumKernel(k=spectrum_k, weighted=blended_weighted)
    if kind == "bag-of-characters":
        return BagOfCharactersKernel()
    if kind == "bag-of-words":
        return BagOfWordsKernel()
    raise ValueError(f"unknown kernel kind {kind!r}; choose from {KERNEL_CHOICES}")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one clustering experiment end to end."""

    #: Kernel identifier (see :data:`KERNEL_CHOICES`).
    kernel: str = "kast"
    #: Cut weight (Kast) / minimum occurrence weight (blended).
    cut_weight: int = 2
    #: Substring length bound for the spectrum/blended baselines.
    spectrum_k: int = 3
    #: Whether the blended/spectrum baselines weight occurrences by token weight.
    blended_weighted: bool = False
    #: Keep the byte information in the string representation (paper's main variant).
    use_byte_information: bool = True
    #: Emit [LEVEL_UP] tokens (ablation switch).
    emit_level_up: bool = True
    #: Tree compaction configuration (ablation switch).
    compaction: CompactionConfig = field(default_factory=CompactionConfig.paper)
    #: Corpus construction parameters.
    corpus: CorpusConfig = field(default_factory=CorpusConfig.paper)
    #: Number of kernel principal components to compute.
    n_components: int = 2
    #: Number of flat clusters to extract from the dendrogram.
    n_clusters: int = 3
    #: Linkage method for hierarchical clustering (paper uses single linkage).
    linkage: str = "single"
    #: Candidate-search backend for the Kast kernel (see :data:`KAST_BACKENDS`).
    backend: str = "numpy"
    #: Worker threads for Gram-matrix construction (1 = serial).
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.backend not in KAST_BACKENDS:
            raise ValueError(f"backend must be one of {KAST_BACKENDS}, got {self.backend!r}")
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")

    def build_kernel(self, interner: Optional[TokenInterner] = None) -> StringKernel:
        """Instantiate the configured kernel.

        *interner* (Kast kernel only) lets callers share one token-id space
        across several kernels — the cut-weight sweep uses this so prepared
        string encodings carry over between sweep points.
        """
        return make_kernel(
            self.kernel,
            cut_weight=self.cut_weight,
            spectrum_k=self.spectrum_k,
            blended_weighted=self.blended_weighted,
            backend=self.backend,
            interner=interner,
        )

    def with_cut_weight(self, cut_weight: int) -> "ExperimentConfig":
        """Copy of this configuration with a different cut weight."""
        return replace(self, cut_weight=cut_weight)

    def with_kernel(self, kernel: str) -> "ExperimentConfig":
        """Copy of this configuration with a different kernel."""
        return replace(self, kernel=kernel)

    def with_n_jobs(self, n_jobs: int) -> "ExperimentConfig":
        """Copy of this configuration with a different worker count."""
        return replace(self, n_jobs=n_jobs)

    def with_backend(self, backend: str) -> "ExperimentConfig":
        """Copy of this configuration with a different Kast search backend."""
        return replace(self, backend=backend)

    def without_byte_information(self) -> "ExperimentConfig":
        """Copy of this configuration using the byte-free string variant."""
        return replace(self, use_byte_information=False)

    def describe(self) -> str:
        """Short human-readable summary used in reports."""
        byte_text = "bytes" if self.use_byte_information else "no-bytes"
        return (
            f"kernel={self.kernel} cut_weight={self.cut_weight} {byte_text} "
            f"linkage={self.linkage} clusters={self.n_clusters}"
        )
