"""The frozen :class:`LandmarkModel` and its fitting routine.

A landmark model is everything the online scorer needs to serve one trace
in O(m): the kernel spec (declarative, registry-resolvable), the ``m``
landmark strings with their content fingerprints and *raw* self values
(so normalisation denominators never cost a kernel evaluation at serve
time), the labels driving nearest-centroid classification, and the
Nyström/kPCA factorisation of the landmark Gram ``W`` — eigenvalues,
eigenvectors and the centring statistics that make the out-of-sample
projection ``x ↦ centred(c(x)) · U · Λ^(−1/2)`` reproducible bit for bit.

The model is a plain frozen dataclass of JSON-representable fields:
picklable, round-trippable through :meth:`LandmarkModel.to_json` /
:meth:`LandmarkModel.from_json`, and stamped with a content-derived
``model_id`` so two fits from the same cached Gram agree byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api.spec import KernelSpec, coerce_spec
from repro.core.engine import string_fingerprint
from repro.learn.kpca import KernelPCA
from repro.strings.tokens import WeightedString

__all__ = ["LandmarkModel", "fit_landmark_model", "encode_landmarks", "decode_landmarks"]

#: Current on-disk/wire format version of the model payload.
MODEL_FORMAT = 1


def encode_landmarks(strings: Sequence[WeightedString]) -> Tuple[Dict[str, Any], ...]:
    """Landmark strings in their compact round-trippable form."""
    items: List[Dict[str, Any]] = []
    for string in strings:
        item: Dict[str, Any] = {"name": string.name, "tokens": string.to_text()}
        if string.label is not None:
            item["label"] = string.label
        items.append(item)
    return tuple(items)


def decode_landmarks(items: Sequence[Mapping[str, Any]]) -> List[WeightedString]:
    """Rebuild the weighted strings of :func:`encode_landmarks` output."""
    strings: List[WeightedString] = []
    for position, item in enumerate(items):
        label = item.get("label")
        strings.append(
            WeightedString.parse(
                str(item["tokens"]),
                name=str(item.get("name", f"landmark{position}")),
                label=str(label) if label is not None else None,
            )
        )
    return strings


@dataclass(frozen=True)
class LandmarkModel:
    """A frozen, servable landmark/Nyström model.

    Attributes
    ----------
    name:
        Store key the model is persisted and addressed under.
    kernel_spec:
        :meth:`KernelSpec.to_dict` payload; :meth:`spec` resolves it
        against the live registry (and fails typed when the kind is gone).
    kernel_signature:
        The spec's value-relevant signature — the pair-store namespace the
        scorer shares with the batch path.
    strategy / seed:
        How the landmarks were selected (reproducibility stamp).
    landmarks:
        Encoded landmark strings (:func:`encode_landmarks` form).
    fingerprints:
        Content fingerprints of the landmarks, aligned with ``landmarks``.
    self_values:
        Raw ``k(l, l)`` per landmark — carried in the model so a fresh
        scorer primes its engine instead of re-evaluating them.
    labels:
        Per-landmark classification labels (corpus labels, or fitted
        ``cluster-<i>`` pseudo-labels when the corpus is unlabelled).
    projection:
        Nyström/kPCA factorisation of the landmark Gram: ``eigenvalues``,
        ``eigenvectors`` (m × d, column-major lists), ``column_means``,
        ``total_mean`` and ``n_components``.
    fitted:
        Free-form fit metadata (corpus size, result-cache outcome, fitted
        cluster inertia, …) — informational, excluded from ``model_id``.
    """

    name: str
    kernel_spec: Dict[str, Any]
    kernel_signature: str
    strategy: str
    seed: int
    landmarks: Tuple[Dict[str, Any], ...]
    fingerprints: Tuple[str, ...]
    self_values: Tuple[float, ...]
    labels: Tuple[Optional[str], ...]
    projection: Dict[str, Any]
    fitted: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (len(self.landmarks) == len(self.fingerprints) == len(self.self_values) == len(self.labels)):
            raise ValueError("landmarks/fingerprints/self_values/labels lengths disagree")
        if not self.landmarks:
            raise ValueError("a landmark model needs at least one landmark")

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of landmarks (the per-request kernel-evaluation budget)."""
        return len(self.landmarks)

    @property
    def model_id(self) -> str:
        """Content-derived identity: signature + landmarks + factorisation."""
        identity = {
            "kernel_signature": self.kernel_signature,
            "fingerprints": list(self.fingerprints),
            "strategy": self.strategy,
            "seed": self.seed,
            "labels": list(self.labels),
            "projection": self.projection,
        }
        canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def spec(self) -> KernelSpec:
        """Resolve the stored spec payload against the live kernel registry.

        Raises :class:`~repro.api.spec.KernelSpecError` when the kind was
        unregistered since the model was fitted — the store turns that
        into a typed, quarantining service error.
        """
        return coerce_spec(self.kernel_spec)

    def landmark_strings(self) -> List[WeightedString]:
        """The landmark corpus, decoded (labels as stored in ``labels``)."""
        strings = decode_landmarks(self.landmarks)
        return [
            string if string.label == label else string.with_label(label)
            for string, label in zip(strings, self.labels)
        ]

    def summary(self) -> Dict[str, Any]:
        """Small JSON-ready description (listings, job payloads)."""
        return {
            "name": self.name,
            "model_id": self.model_id,
            "landmarks": self.m,
            "strategy": self.strategy,
            "seed": self.seed,
            "kernel_signature": self.kernel_signature,
            "kernel_kind": str(self.kernel_spec.get("kind", "?")),
            "n_components": int(self.projection.get("n_components", 0)),
            "labels": sorted({label for label in self.labels if label is not None}),
            "fitted": dict(self.fitted),
        }

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": MODEL_FORMAT,
            "name": self.name,
            "kernel_spec": self.kernel_spec,
            "kernel_signature": self.kernel_signature,
            "strategy": self.strategy,
            "seed": self.seed,
            "landmarks": [dict(item) for item in self.landmarks],
            "fingerprints": list(self.fingerprints),
            "self_values": [float(value) for value in self.self_values],
            "labels": list(self.labels),
            "projection": self.projection,
            "fitted": dict(self.fitted),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LandmarkModel":
        if not isinstance(payload, Mapping):
            raise ValueError(f"model payload must be a mapping, got {type(payload).__name__}")
        version = payload.get("format", MODEL_FORMAT)
        if version != MODEL_FORMAT:
            raise ValueError(f"unsupported model format {version!r} (this build speaks {MODEL_FORMAT})")
        try:
            return cls(
                name=str(payload["name"]),
                kernel_spec=dict(payload["kernel_spec"]),
                kernel_signature=str(payload["kernel_signature"]),
                strategy=str(payload["strategy"]),
                seed=int(payload["seed"]),
                landmarks=tuple(dict(item) for item in payload["landmarks"]),
                fingerprints=tuple(str(item) for item in payload["fingerprints"]),
                self_values=tuple(float(value) for value in payload["self_values"]),
                labels=tuple(
                    None if label is None else str(label) for label in payload["labels"]
                ),
                projection=dict(payload["projection"]),
                fitted=dict(payload.get("fitted", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"model payload is malformed: {exc}") from exc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "LandmarkModel":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"model payload is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)


def _projection_payload(kpca: KernelPCA, n_components: int) -> Dict[str, Any]:
    """Freeze a fitted :class:`KernelPCA` into JSON-representable lists."""
    result = kpca._result
    assert result is not None and kpca._column_means is not None
    return {
        "n_components": int(n_components),
        "eigenvalues": [float(value) for value in result.eigenvalues],
        "eigenvectors": [[float(value) for value in row] for row in result.eigenvectors],
        "column_means": [float(value) for value in kpca._column_means],
        "total_mean": float(kpca._total_mean),
    }


def fit_landmark_model(
    session: Any,
    spec: Any,
    strings: Sequence[WeightedString],
    name: str,
    landmarks: int = 16,
    strategy: str = "kcenter",
    seed: int = 2017,
    n_components: int = 2,
    n_clusters: Optional[int] = None,
    use_cache: bool = True,
) -> Tuple[LandmarkModel, str]:
    """Fit a landmark model from a corpus through an :class:`AnalysisSession`.

    The full (normalised, *pre-repair*) Gram comes from the session's
    result-cache-aware path, so refitting on a corpus the cache already
    holds costs zero kernel evaluations; the returned second element is
    the cache outcome (``"hit"`` / ``"extended"`` / ``"miss"`` /
    ``"bypass"``).  The matrix stays un-repaired on purpose: the scorer
    re-evaluates cross rows through the kernel itself, and fitting on
    repaired (perturbed) values would break the landmark==corpus
    equivalence with the engine's raw evaluations.

    Labels: landmark labels come from the corpus.  When *n_clusters* is
    given — or no corpus example carries a label — a kernel k-means run
    over the full Gram supplies fitted ``cluster-<i>`` pseudo-labels
    (the "fitted cluster centroids" serving mode).
    """
    from repro.streaming.landmarks import select_landmarks

    string_list = list(strings)
    if not string_list:
        raise ValueError("cannot fit a landmark model from an empty corpus")
    resolved = session.spec(spec)
    matrix, cache_status = session.matrix_cached(
        resolved, string_list, normalized=True, repair=False, use_cache=use_cache
    )
    values = matrix.values

    cluster_meta: Dict[str, Any] = {}
    labels: List[Optional[str]] = [string.label for string in string_list]
    if n_clusters is not None or not any(label is not None for label in labels):
        from repro.learn.kkmeans import KernelKMeans

        clusters = max(1, int(n_clusters) if n_clusters is not None else 3)
        fitted = KernelKMeans(n_clusters=clusters, seed=seed).fit_predict(values)
        labels = [f"cluster-{assignment}" for assignment in fitted.assignments]
        cluster_meta = {
            "n_clusters": clusters,
            "inertia": float(fitted.inertia),
            "converged": bool(fitted.converged),
        }

    indices = select_landmarks(values, landmarks, strategy=strategy, seed=seed)
    landmark_strings = [string_list[index] for index in indices]
    landmark_labels = [labels[index] for index in indices]
    engine = session.engine(resolved)
    self_values = engine.self_values(landmark_strings)

    landmark_gram = values[np.ix_(indices, indices)]
    kpca = KernelPCA(n_components=max(1, int(n_components)))
    kpca.fit(landmark_gram)

    fitted_meta: Dict[str, Any] = {
        "corpus_size": len(string_list),
        "cache": cache_status,
        "requested_landmarks": int(landmarks),
    }
    if cluster_meta:
        fitted_meta["clustering"] = cluster_meta

    model = LandmarkModel(
        name=str(name),
        kernel_spec=resolved.to_dict(),
        kernel_signature=engine.kernel_signature(),
        strategy=strategy,
        seed=int(seed),
        landmarks=encode_landmarks(landmark_strings),
        fingerprints=tuple(string_fingerprint(string) for string in landmark_strings),
        self_values=tuple(float(value) for value in self_values),
        labels=tuple(landmark_labels),
        projection=_projection_payload(kpca, n_components),
        fitted=fitted_meta,
    )
    return model, cache_status
