"""The online scorer: O(m) classify/embed of one arriving trace.

A :class:`StreamingScorer` binds a frozen :class:`LandmarkModel` to a live
:class:`~repro.api.session.AnalysisSession`.  Construction primes the
session's warm engine with the model's landmark self values (zero kernel
evaluations, ever, for the denominators), and every request then reduces
to one batched landmark-row evaluation through the engine's two cache
layers:

* a **cold** trace costs exactly ``m`` kernel evaluations (the cross row
  against the landmarks — classification is scale-invariant in the
  query's own self value, so it is never computed);
* a **repeated** trace costs zero — the in-memory pair cache serves it in
  session, and the shared persistent pair store serves it across
  processes and restarts.

That accounting is observable through
:meth:`GramEngine.cache_info <repro.core.engine.GramEngine.cache_info>`,
which is how the acceptance tests pin it down.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.learn.classify import ClassificationResult
from repro.streaming.model import LandmarkModel
from repro.strings.tokens import WeightedString

__all__ = ["StreamingScorer"]


class StreamingScorer:
    """Serve classify/embed requests against only the model's landmarks.

    Parameters
    ----------
    model:
        The frozen landmark model to serve.
    session:
        The warm session whose engine (and pair store) evaluations go
        through — typically the server's session, shared with the batch
        matrix path so the two tiers warm each other's caches.
    """

    def __init__(self, model: LandmarkModel, session: Any) -> None:
        self.model = model
        self.session = session
        self.spec = model.spec()
        self.engine = session.engine(self.spec)
        self.landmarks = model.landmark_strings()
        # The model carries the raw landmark self values: prime the engine
        # (and write any the shared pair store is missing) so serving never
        # re-evaluates k(l, l).
        self.engine.prime_self_values(self.landmarks, model.self_values)
        self._inv_sqrt_self = np.asarray(
            [1.0 / math.sqrt(value) if value > 0 else 0.0 for value in model.self_values],
            dtype=float,
        )
        self._label_groups: Dict[str, List[int]] = {}
        for index, label in enumerate(model.labels):
            if label is not None:
                self._label_groups.setdefault(label, []).append(index)
        projection = model.projection
        self._eigenvalues = np.asarray(projection["eigenvalues"], dtype=float)
        self._eigenvectors = np.asarray(projection["eigenvectors"], dtype=float)
        self._column_means = np.asarray(projection["column_means"], dtype=float)
        self._total_mean = float(projection["total_mean"])
        with np.errstate(divide="ignore", invalid="ignore"):
            self._inv_sqrt_eigenvalues = np.where(
                self._eigenvalues > 0, 1.0 / np.sqrt(self._eigenvalues), 0.0
            )

    # ------------------------------------------------------------------
    # Kernel plumbing
    # ------------------------------------------------------------------
    def cross_row(self, string: WeightedString) -> np.ndarray:
        """Raw ``k(string, landmark_j)`` for every landmark (one batched row)."""
        return np.asarray(self.engine.evaluate_row(string, self.landmarks), dtype=float)

    def _normalized_row(self, string: WeightedString, raw: Optional[np.ndarray] = None) -> np.ndarray:
        """Cosine-normalised cross row (needs the query's self value)."""
        if raw is None:
            raw = self.cross_row(string)
        self_value = self.engine.self_value(string)
        query_scale = 1.0 / math.sqrt(self_value) if self_value > 0 else 0.0
        return raw * self._inv_sqrt_self * query_scale

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def embed(self, string: WeightedString) -> np.ndarray:
        """Nyström/kPCA coordinates of one trace (``n_components`` floats).

        Applies the model's frozen out-of-sample projection to the
        normalised landmark cross row — with the landmark set equal to the
        fitting corpus this reproduces the full-Gram kernel-PCA embedding
        exactly (up to eigenvector sign).
        """
        row = self._normalized_row(string)[None, :]
        centred = row - row.mean(axis=1, keepdims=True) - self._column_means[None, :] + self._total_mean
        return (centred @ self._eigenvectors * self._inv_sqrt_eigenvalues[None, :])[0]

    def classify(self, string: WeightedString) -> ClassificationResult:
        """Nearest-centroid label of one trace, in exactly ``m`` evaluations.

        Scores are the mean *query-scale-invariant* similarity per label:
        ``mean_l raw(q, l) / sqrt(k(l, l))`` — the cosine score times the
        constant ``sqrt(k(q, q))``, so the ranking (and the prediction) is
        identical to :class:`~repro.learn.classify.KernelNearestCentroid`
        while the query's own self value is never evaluated.
        """
        if not self._label_groups:
            raise ValueError(f"model {self.model.name!r} carries no labelled landmarks")
        raw = self.cross_row(string)
        partial = raw * self._inv_sqrt_self
        scores = {
            label: float(np.mean(partial[indices]))
            for label, indices in self._label_groups.items()
        }
        best = max(scores.items(), key=lambda item: (item[1], item[0]))
        return ClassificationResult(label=best[0], scores=scores)

    def classify_with_embedding(
        self, string: WeightedString
    ) -> Tuple[ClassificationResult, np.ndarray]:
        """Classify and embed in one pass over a single shared cross row."""
        result = self.classify(string)
        # The cross row is warm in the engine cache now; the embedding pays
        # only the query self value on top.
        return result, self.embed(string)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"StreamingScorer(model={self.model.name!r}, m={self.model.m})"
