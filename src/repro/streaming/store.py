"""Persistent landmark-model store under ``<state-dir>/models/``.

One model is one self-describing JSON file ``<name>.model.json`` holding a
checksum-stamped envelope::

    {"format": 1, "checksum": "<sha256 of the canonical model JSON>",
     "model": {...}}

Writes follow the :mod:`~repro.core.cachestore` discipline — unique-temp
atomic rename with fsync, so servers and workers sharing one state dir
never observe a torn model.  Loads verify the checksum and re-resolve the
kernel spec against the live registry; anything that fails — damaged
bytes, a stale checksum, a spec whose kernel kind was unregistered — is
*quarantined* (moved aside, never re-served) and raised as a typed
:class:`~repro.service.protocol.ServiceError` so clients get a structured
``model-damaged`` answer instead of a bare traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import uuid
from typing import Any, Dict, List, Optional

from repro.core.atomicio import write_text_atomic
from repro.streaming.model import LandmarkModel

__all__ = ["ModelStore", "MODEL_NAME_PATTERN", "valid_model_name"]

#: Names are path components: portable, no separators, no dotfiles.
MODEL_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

_SUFFIX = ".model.json"


def valid_model_name(name: Any) -> bool:
    """Whether *name* is usable as a model store key."""
    return isinstance(name, str) and bool(MODEL_NAME_PATTERN.match(name))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _model_errors():
    """The typed service errors, imported lazily to avoid an import cycle.

    ``repro.service`` imports the server, which constructs this store —
    importing :mod:`repro.service.protocol` at module level here would
    re-enter that package initialisation when ``repro.streaming`` is the
    first import.
    """
    from repro.service.protocol import ModelDamaged, ModelNotFound

    return ModelNotFound, ModelDamaged


def _require_registered(spec: Any) -> None:
    """Fail (KernelSpecError) unless every kind in the spec tree is registered.

    ``coerce_spec`` is deliberately lazy about registration, so a model
    fitted under a kernel kind that has since been unregistered would
    otherwise load fine and blow up mid-request inside the scorer.
    """
    from repro.api.spec import registry_entry

    registry_entry(spec.kind)
    for child in spec.children:
        _require_registered(child)


class ModelStore:
    """Directory of checksum-stamped landmark models, keyed by name."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._quarantine_dir = os.path.join(self.root, "quarantine")

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path(self, name: str) -> str:
        if not valid_model_name(name):
            raise ValueError(
                f"invalid model name {name!r}: must match {MODEL_NAME_PATTERN.pattern}"
            )
        return os.path.join(self.root, f"{name}{_SUFFIX}")

    def _quarantine(self, path: str) -> Optional[str]:
        """Move a damaged file aside; its new path (None when already gone)."""
        os.makedirs(self._quarantine_dir, exist_ok=True)
        target = os.path.join(
            self._quarantine_dir, f"{os.path.basename(path)}.{uuid.uuid4().hex[:8]}"
        )
        try:
            os.replace(path, target)
        except OSError:
            return None
        return target

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, model: LandmarkModel) -> str:
        """Atomically persist *model* under its name; returns the file path."""
        path = self.path(model.name)
        body = model.to_json()
        envelope = {
            "format": 1,
            "checksum": _digest(body),
            "model": json.loads(body),
        }
        write_text_atomic(path, json.dumps(envelope, sort_keys=True) + "\n")
        return path

    def load(self, name: str) -> LandmarkModel:
        """Load one model, verifying its stamp and its kernel spec.

        Raises :class:`~repro.service.protocol.ModelNotFound` when no such
        model exists, and :class:`~repro.service.protocol.ModelDamaged`
        (after quarantining the file) when the payload is unreadable, its
        checksum does not match, or its kernel kind is no longer
        registered.
        """
        model_not_found, model_damaged = _model_errors()
        path = self.path(name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except FileNotFoundError:
            raise model_not_found(
                f"no model named {name!r}", details={"model": name}
            ) from None
        except OSError as exc:
            raise model_damaged(
                f"model {name!r} is unreadable: {exc}", details={"model": name}
            ) from exc

        def damaged(reason: str) -> Exception:
            quarantined = self._quarantine(path)
            return model_damaged(
                f"model {name!r} is damaged and was quarantined: {reason}",
                details={"model": name, "reason": reason, "quarantined": quarantined},
            )

        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            raise damaged(f"invalid JSON: {exc}") from exc
        if not isinstance(envelope, dict) or "model" not in envelope or "checksum" not in envelope:
            raise damaged("envelope is missing its 'model'/'checksum' stamp")
        body = json.dumps(envelope["model"], sort_keys=True, separators=(",", ":"))
        if _digest(body) != envelope["checksum"]:
            raise damaged("checksum mismatch")
        try:
            model = LandmarkModel.from_dict(envelope["model"])
        except ValueError as exc:
            raise damaged(f"malformed payload: {exc}") from exc
        try:
            _require_registered(model.spec())
        except Exception as exc:  # KernelSpecError, kept duck-typed on purpose
            raise damaged(f"kernel spec no longer resolvable: {exc}") from exc
        return model

    def delete(self, name: str) -> bool:
        """Remove one model; whether a file was removed."""
        try:
            os.remove(self.path(name))
        except FileNotFoundError:
            return False
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Stored model names, sorted."""
        found = []
        try:
            entries = os.listdir(self.root)
        except OSError:
            return []
        for entry in entries:
            if entry.endswith(_SUFFIX) and valid_model_name(entry[: -len(_SUFFIX)]):
                found.append(entry[: -len(_SUFFIX)])
        return sorted(found)

    def entries(self) -> List[Dict[str, Any]]:
        """One summary per stored model (damaged files flagged, not raised).

        Listing is read-only: a damaged entry is reported with its error
        but left in place — quarantine happens on :meth:`load`, where the
        caller actually asked to *serve* the model.
        """
        _, model_damaged = _model_errors()
        summaries: List[Dict[str, Any]] = []
        for name in self.names():
            path = self.path(name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    envelope = json.load(handle)
                body = json.dumps(envelope["model"], sort_keys=True, separators=(",", ":"))
                if _digest(body) != envelope.get("checksum"):
                    raise ValueError("checksum mismatch")
                model = LandmarkModel.from_dict(envelope["model"])
            except Exception as exc:  # noqa: BLE001 - a listing must not fail
                summaries.append({"name": name, "damaged": True, "error": str(exc)})
                continue
            summary = model.summary()
            summary["damaged"] = False
            try:
                summary["payload_bytes"] = os.path.getsize(path)
            except OSError:
                pass
            summaries.append(summary)
        return summaries

    def stats(self) -> Dict[str, Any]:
        """Counts and on-disk footprint (the ``cache-stats`` section)."""
        total_bytes = 0
        count = 0
        for name in self.names():
            count += 1
            try:
                total_bytes += os.path.getsize(self.path(name))
            except OSError:
                pass
        quarantined = 0
        try:
            quarantined = len(os.listdir(self._quarantine_dir))
        except OSError:
            pass
        return {
            "root": self.root,
            "models": count,
            "payload_bytes": total_bytes,
            "quarantined": quarantined,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ModelStore(root={self.root!r}, models={len(self.names())})"
