"""Landmark selection strategies over a cached full Gram matrix.

All three strategies consume only the (normalised) Gram array — no feature
vectors — so they work for every kernel the registry can build, and all are
deterministic for a given ``(gram, count, seed)``: refitting a model from
the same cached matrix selects the same landmarks, which keeps model ids
and persisted payloads stable across sessions.

* ``uniform`` — seeded uniform sample; the classical Nyström baseline.
* ``kcenter`` — farthest-point greedy in the kernel-induced metric
  ``d²(i, j) = k(i,i) + k(j,j) − 2·k(i,j)``; covers the corpus geometry
  with a small ``m`` (2-approximation of the optimal k-center cover).
* ``leverage`` — ranks examples by their subspace leverage scores (mass of
  the leading ``m`` eigenvectors), the importance-sampling criterion of
  the Nyström approximation literature.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Union

import numpy as np

__all__ = ["LANDMARK_STRATEGIES", "select_landmarks"]

#: Strategy names accepted by :func:`select_landmarks` (and the wire protocol).
LANDMARK_STRATEGIES = ("uniform", "kcenter", "leverage")


def _as_gram(gram: Union[np.ndarray, Sequence[Sequence[float]]]) -> np.ndarray:
    values = np.asarray(gram, dtype=float)
    if values.ndim != 2 or values.shape[0] != values.shape[1]:
        raise ValueError(f"gram must be a square matrix, got shape {values.shape}")
    return values


def _select_uniform(count: int, size: int, seed: int) -> List[int]:
    return sorted(random.Random(seed).sample(range(size), count))


def _select_kcenter(values: np.ndarray, count: int, seed: int) -> List[int]:
    size = values.shape[0]
    diagonal = np.diag(values)
    start = random.Random(seed).randrange(size)
    chosen = [start]
    # Squared kernel-induced distance from every example to its nearest
    # chosen landmark, updated incrementally as landmarks are added.
    nearest = diagonal + diagonal[start] - 2.0 * values[start]
    nearest[start] = -np.inf
    for _ in range(count - 1):
        farthest = int(np.argmax(nearest))
        chosen.append(farthest)
        candidate = diagonal + diagonal[farthest] - 2.0 * values[farthest]
        nearest = np.minimum(nearest, candidate)
        nearest[farthest] = -np.inf
    return sorted(chosen)


def _select_leverage(values: np.ndarray, count: int) -> List[int]:
    # Leverage of example i w.r.t. the rank-m subspace: sum over the top-m
    # eigenvectors u_k of u_k[i]².  Deterministic top-m selection (score
    # descending, index ascending) keeps refits reproducible.
    eigenvalues, eigenvectors = np.linalg.eigh(values)
    order = np.argsort(eigenvalues)[::-1][:count]
    scores = np.sum(eigenvectors[:, order] ** 2, axis=1)
    ranked = sorted(range(values.shape[0]), key=lambda index: (-scores[index], index))
    return sorted(ranked[:count])


def select_landmarks(
    gram: Union[np.ndarray, Sequence[Sequence[float]]],
    count: int,
    strategy: str = "kcenter",
    seed: int = 2017,
) -> List[int]:
    """Indices of *count* landmark examples chosen from a full Gram matrix.

    Returns a sorted index list (ascending); ``count`` larger than the
    corpus is clamped to it, so ``count >= n`` always selects the whole
    corpus — the degenerate case where the Nyström embedding reproduces
    the full-Gram kernel PCA exactly.
    """
    if strategy not in LANDMARK_STRATEGIES:
        raise ValueError(
            f"unknown landmark strategy {strategy!r}; choose one of {', '.join(LANDMARK_STRATEGIES)}"
        )
    if count < 1:
        raise ValueError(f"landmark count must be >= 1, got {count}")
    values = _as_gram(gram)
    size = values.shape[0]
    if size == 0:
        raise ValueError("cannot select landmarks from an empty gram matrix")
    count = min(count, size)
    if count == size:
        return list(range(size))
    if strategy == "uniform":
        return _select_uniform(count, size, seed)
    if strategy == "kcenter":
        return _select_kcenter(values, count, seed)
    return _select_leverage(values, count)
