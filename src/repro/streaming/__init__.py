"""Streaming serving path: landmark/Nyström models for live traces.

The batch pipeline computes full O(n²) Gram matrices; this package adds the
second serving tier the ROADMAP names, where per-request cost is O(m) in a
fixed landmark count instead of O(n) in corpus size:

1. :func:`~repro.streaming.landmarks.select_landmarks` picks ``m``
   representative corpus examples from a cached full Gram (uniform,
   k-center greedy, or leverage-score strategies);
2. :func:`~repro.streaming.model.fit_landmark_model` freezes them — with
   the kernel spec, raw self values, a Nyström/kPCA factorisation of the
   landmark Gram and the landmark labels — into a picklable, JSON
   round-trippable :class:`~repro.streaming.model.LandmarkModel`;
3. :class:`~repro.streaming.store.ModelStore` persists models under
   ``<state-dir>/models/`` with the same atomic-rename + sha256 stamping
   discipline as the matrix result cache;
4. :class:`~repro.streaming.scorer.StreamingScorer` classifies/embeds each
   arriving trace against only the ``m`` landmarks through the warm
   :class:`~repro.core.engine.GramEngine` and the shared pair store — a
   repeated trace costs *zero* kernel evaluations.

The service layer exposes the same tier over the wire (``fit-model`` /
``classify`` / ``models`` protocol messages and the
``repro-iokast model`` CLI).
"""

from repro.streaming.landmarks import LANDMARK_STRATEGIES, select_landmarks
from repro.streaming.model import LandmarkModel, fit_landmark_model
from repro.streaming.scorer import StreamingScorer
from repro.streaming.store import ModelStore

__all__ = [
    "LANDMARK_STRATEGIES",
    "select_landmarks",
    "LandmarkModel",
    "fit_landmark_model",
    "StreamingScorer",
    "ModelStore",
]
