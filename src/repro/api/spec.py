"""Declarative kernel specifications and the kernel-factory registry.

Kernels used to exist only as live :class:`~repro.kernels.base.StringKernel`
instances built by ad-hoc glue, which meant they could not be pickled to a
process pool, could not produce a principled persistence signature, and every
entry point re-implemented its own construction path.  This module reifies
the kernel *configuration* as data:

* :class:`KernelSpec` — a frozen, hashable, picklable dataclass naming a
  kernel kind, its parameters and (for combinators) its child specs.  Specs
  round-trip losslessly through ``dict`` and JSON, so they can be stored in
  experiment manifests, shipped over the wire, or handed to worker processes.
* the **registry** — every kernel kind registers a factory
  (:func:`register_kernel`); :func:`kernel_from_spec` instantiates a live
  kernel from a spec and :func:`spec_from_kernel` recovers the canonical spec
  from a live kernel.  Adding a kernel to the library is one registration:
  the CLI choices, :data:`~repro.pipeline.config.KERNEL_CHOICES` and the
  persistence signatures all derive from it.
* :func:`spec_signature` — the canonical serialization of a spec minus its
  declared value-irrelevant parameters (e.g. the Kast kernel's ``backend``,
  whose two implementations produce identical values).  The
  :class:`~repro.core.engine.GramEngine` stamps persisted matrices with this
  signature, so a stale on-disk matrix is detected whenever any
  value-affecting field changes.

Canonical specs
---------------
A spec is *canonical* when every parameter the kind accepts is present with
a normalised value.  :func:`make_spec` and :func:`spec_from_kernel` always
produce canonical specs, and for those the round-trip identity

    ``spec_from_kernel(kernel_from_spec(spec)) == spec``

holds exactly.  :func:`kernel_from_spec` also accepts *partial* specs
(missing parameters take the registered defaults), which keeps hand-written
JSON convenient.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.core.kast import KastSpectrumKernel
from repro.kernels.bag import BagOfCharactersKernel, BagOfWordsKernel
from repro.kernels.base import StringKernel
from repro.kernels.blended import BlendedSpectrumKernel
from repro.kernels.composite import NormalizedKernel, ProductKernel, ScaledKernel, SumKernel
from repro.kernels.spectrum import SpectrumKernel
from repro.strings.interner import TokenInterner

__all__ = [
    "KernelSpec",
    "KernelSpecError",
    "register_kernel",
    "registered_kinds",
    "kernel_choices",
    "kernel_from_spec",
    "spec_from_kernel",
    "make_spec",
    "spec_signature",
]

#: JSON-representable scalar parameter values.
ParamValue = Union[str, int, float, bool, None]

_SCALAR_TYPES = (str, int, float, bool, type(None))


class KernelSpecError(ValueError):
    """Raised for malformed specs, unknown kinds or invalid parameters."""


def _check_scalar(name: str, value: Any) -> ParamValue:
    if not isinstance(value, _SCALAR_TYPES):
        raise KernelSpecError(
            f"spec parameter {name!r} must be a JSON scalar (str/int/float/bool/None), "
            f"got {type(value).__name__}"
        )
    return value


@dataclass(frozen=True)
class KernelSpec:
    """Frozen, declarative description of one kernel configuration.

    Attributes
    ----------
    kind:
        Registered kernel kind (case-insensitive; stored lower-cased).
    params:
        Scalar parameters as a key-sorted tuple of ``(name, value)`` pairs.
        A mapping may be passed at construction time; it is normalised to
        the sorted-tuple form so equality and hashing are order-independent.
    children:
        Child specs for combinator kinds (``sum``, ``product``, ``scaled``,
        ``normalized``); empty for leaf kernels.
    """

    kind: str
    params: Tuple[Tuple[str, ParamValue], ...] = ()
    children: Tuple["KernelSpec", ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.kind, str) or not self.kind:
            raise KernelSpecError(f"spec kind must be a non-empty string, got {self.kind!r}")
        object.__setattr__(self, "kind", self.kind.lower())
        raw = self.params.items() if isinstance(self.params, Mapping) else tuple(self.params)
        items = []
        seen = set()
        for name, value in raw:
            name = str(name)
            if name in seen:
                raise KernelSpecError(f"duplicate spec parameter {name!r}")
            seen.add(name)
            items.append((name, _check_scalar(name, value)))
        object.__setattr__(self, "params", tuple(sorted(items)))
        children = tuple(self.children)
        for child in children:
            if not isinstance(child, KernelSpec):
                raise KernelSpecError(f"spec children must be KernelSpec instances, got {type(child).__name__}")
        object.__setattr__(self, "children", children)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    @property
    def params_dict(self) -> Dict[str, ParamValue]:
        """The parameters as a plain dict (copy)."""
        return dict(self.params)

    def get(self, name: str, default: ParamValue = None) -> ParamValue:
        """Value of parameter *name*, or *default* when absent."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    def replace(self, **params: ParamValue) -> "KernelSpec":
        """Copy of this spec with the given parameters overridden."""
        merged = self.params_dict
        merged.update(params)
        return KernelSpec(self.kind, merged, self.children)

    def with_children(self, children: Sequence["KernelSpec"]) -> "KernelSpec":
        """Copy of this spec with different child specs."""
        return KernelSpec(self.kind, self.params, tuple(children))

    # ------------------------------------------------------------------
    # dict / JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data representation (inverse of :meth:`from_dict`)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        if self.params:
            payload["params"] = self.params_dict
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "KernelSpec":
        """Rebuild a spec from :meth:`to_dict` output (extra keys rejected)."""
        if not isinstance(payload, Mapping):
            raise KernelSpecError(f"spec payload must be a mapping, got {type(payload).__name__}")
        unknown = set(payload) - {"kind", "params", "children"}
        if unknown:
            raise KernelSpecError(f"unknown spec payload keys: {sorted(unknown)}")
        if "kind" not in payload:
            raise KernelSpecError("spec payload is missing the 'kind' key")
        params = payload.get("params", {})
        if not isinstance(params, Mapping):
            raise KernelSpecError(f"spec 'params' must be a mapping, got {type(params).__name__}")
        children = payload.get("children", ())
        if isinstance(children, (str, bytes)) or not isinstance(children, Sequence):
            raise KernelSpecError(f"spec 'children' must be a sequence, got {type(children).__name__}")
        return cls(
            kind=str(payload["kind"]),
            params=dict(params),
            children=tuple(cls.from_dict(child) for child in children),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON text (inverse of :meth:`from_json`)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "KernelSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise KernelSpecError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def canonical(self) -> str:
        """Deterministic compact serialization (sorted keys, no whitespace).

        Two equal specs always canonicalise to the same string, so this is a
        stable content key for caches and manifests.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def signature(self) -> str:
        """Persistence signature: see :func:`spec_signature`."""
        return spec_signature(self)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return self.canonical()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegisteredKernel:
    """One entry of the kernel-kind registry."""

    #: Registered kind name (lower-case).
    kind: str
    #: ``factory(params, children, interner) -> StringKernel`` where *params*
    #: is the defaults-merged parameter dict and *children* the already-built
    #: child kernels.
    factory: Callable[[Dict[str, ParamValue], Tuple[StringKernel, ...], Optional[TokenInterner]], StringKernel]
    #: Full parameter schema: every accepted parameter with its default.
    defaults: Tuple[Tuple[str, ParamValue], ...] = ()
    #: Kernel class instances of this kind (for :func:`spec_from_kernel`).
    kernel_class: Optional[type] = None
    #: ``to_spec(kernel) -> KernelSpec`` recovering the canonical spec.
    to_spec: Optional[Callable[[StringKernel], "KernelSpec"]] = None
    #: Parameters that do not affect kernel *values* (excluded from the
    #: persistence signature, e.g. the Kast kernel's ``backend``).
    signature_exempt: frozenset = frozenset()
    #: Whether the kind takes child specs (combinators).
    composite: bool = False
    #: Whether the kind appears in ``KERNEL_CHOICES`` / CLI choice lists.
    choice: bool = True
    #: One-line human description (CLI help, docs).
    description: str = ""


_REGISTRY: "Dict[str, RegisteredKernel]" = {}


def register_kernel(
    kind: str,
    factory: Callable[..., StringKernel],
    *,
    defaults: Optional[Mapping[str, ParamValue]] = None,
    kernel_class: Optional[type] = None,
    to_spec: Optional[Callable[[StringKernel], KernelSpec]] = None,
    signature_exempt: Sequence[str] = (),
    composite: bool = False,
    choice: Optional[bool] = None,
    description: str = "",
    replace: bool = False,
) -> RegisteredKernel:
    """Register a kernel kind with the spec registry.

    Parameters
    ----------
    kind:
        Kind name (stored lower-case; must be unique unless *replace*).
    factory:
        ``factory(params, children, interner)`` building a live kernel from
        the defaults-merged parameter dict and pre-built child kernels.
    defaults:
        Complete parameter schema — every accepted parameter mapped to its
        default value.  Unknown parameters in a spec are rejected.
    kernel_class / to_spec:
        Enable :func:`spec_from_kernel` for this kind: instances of
        *kernel_class* (including subclasses) are mapped back to their
        canonical spec by *to_spec*.
    signature_exempt:
        Parameter names excluded from :func:`spec_signature` because they do
        not affect kernel values.
    composite:
        Whether the kind consumes child specs.
    choice:
        Whether the kind is offered as a user-facing choice (CLI,
        ``KERNEL_CHOICES``).  Defaults to ``not composite``.
    description:
        One-line description used in CLI help.
    replace:
        Allow overwriting an existing registration.
    """
    kind = kind.lower()
    if kind in _REGISTRY and not replace:
        raise KernelSpecError(f"kernel kind {kind!r} is already registered")
    entry = RegisteredKernel(
        kind=kind,
        factory=factory,
        defaults=tuple(sorted((defaults or {}).items())),
        kernel_class=kernel_class,
        to_spec=to_spec,
        signature_exempt=frozenset(signature_exempt),
        composite=composite,
        choice=not composite if choice is None else choice,
        description=description,
    )
    _REGISTRY[kind] = entry
    return entry


def registry_entry(kind: str) -> RegisteredKernel:
    """The registry entry for *kind* (:class:`KernelSpecError` if unknown)."""
    entry = _REGISTRY.get(kind.lower())
    if entry is None:
        raise KernelSpecError(
            f"unknown kernel kind {kind!r}; registered kinds: {', '.join(sorted(_REGISTRY))}"
        )
    return entry


def registered_kinds(choices_only: bool = False) -> Tuple[str, ...]:
    """All registered kind names in registration order."""
    return tuple(kind for kind, entry in _REGISTRY.items() if entry.choice or not choices_only)


def kernel_choices() -> Tuple[str, ...]:
    """The user-facing kernel kinds (CLI / ``KERNEL_CHOICES``)."""
    return registered_kinds(choices_only=True)


def _merge_params(entry: RegisteredKernel, spec_params: Mapping[str, ParamValue]) -> Dict[str, ParamValue]:
    """Defaults-merged, type-normalised parameters; unknown names rejected."""
    defaults = dict(entry.defaults)
    unknown = set(spec_params) - set(defaults)
    if unknown:
        raise KernelSpecError(
            f"kernel kind {entry.kind!r} does not accept parameter(s) {sorted(unknown)}; "
            f"accepted: {sorted(defaults)}"
        )
    merged = dict(defaults)
    for name, value in spec_params.items():
        default = defaults[name]
        # Normalise ints written where a float is expected (e.g. scale=2 in
        # hand-written JSON) so canonical specs are stable under round trips.
        if isinstance(default, float) and isinstance(value, int) and not isinstance(value, bool):
            value = float(value)
        merged[name] = value
    return merged


def make_spec(kind: str, children: Sequence[KernelSpec] = (), **params: ParamValue) -> KernelSpec:
    """Canonical spec for *kind*: every parameter present, defaults filled.

    This is the constructor to prefer in library code — the resulting spec
    satisfies the exact round-trip identity
    ``spec_from_kernel(kernel_from_spec(spec)) == spec``.
    """
    entry = registry_entry(kind)
    merged = _merge_params(entry, params)
    if entry.composite and not children:
        raise KernelSpecError(f"composite kernel kind {entry.kind!r} requires at least one child spec")
    if not entry.composite and children:
        raise KernelSpecError(f"kernel kind {entry.kind!r} does not take child specs")
    return KernelSpec(entry.kind, merged, tuple(children))


def kernel_from_spec(
    spec: Union[KernelSpec, Mapping[str, Any], str],
    interner: Optional[TokenInterner] = None,
) -> StringKernel:
    """Instantiate a live kernel from *spec*.

    *spec* may be a :class:`KernelSpec`, a :meth:`KernelSpec.to_dict`
    mapping, a JSON string, or a bare kind name (all defaults).  Missing
    parameters take the registered defaults.  *interner* is threaded through
    to every (sub-)kernel that supports a shared token interner.
    """
    spec = coerce_spec(spec)
    entry = registry_entry(spec.kind)
    params = _merge_params(entry, spec.params_dict)
    if entry.composite and not spec.children:
        raise KernelSpecError(f"composite kernel kind {entry.kind!r} requires at least one child spec")
    if not entry.composite and spec.children:
        raise KernelSpecError(f"kernel kind {entry.kind!r} does not take child specs")
    children = tuple(kernel_from_spec(child, interner=interner) for child in spec.children)
    return entry.factory(params, children, interner)


def spec_from_kernel(kernel: StringKernel, exact: bool = False) -> KernelSpec:
    """Recover the canonical :class:`KernelSpec` of a live kernel.

    Dispatches on the kernel's class through the registry: exact class
    first, then — unless *exact* — ``isinstance``, so instrumented
    subclasses (test doubles, counters) map back to their base kind.
    *exact=True* refuses the subclass fallback; use it when the spec must
    reconstruct the kernel faithfully (e.g. in process workers), where a
    subclass overriding ``value`` would silently be replaced by its base.
    """
    for entry in _REGISTRY.values():
        if entry.kernel_class is not None and type(kernel) is entry.kernel_class:
            assert entry.to_spec is not None
            return entry.to_spec(kernel)
    if not exact:
        for entry in _REGISTRY.values():
            if entry.kernel_class is not None and entry.to_spec is not None and isinstance(kernel, entry.kernel_class):
                return entry.to_spec(kernel)
    raise KernelSpecError(
        f"no registered kernel kind {'exactly ' if exact else ''}matches {type(kernel).__name__}; "
        "register it with repro.api.register_kernel(..., kernel_class=..., to_spec=...)"
    )


def canonicalize_spec(spec: KernelSpec) -> KernelSpec:
    """Fill registered defaults (recursively) so equivalent specs compare equal.

    A hand-written partial spec like ``{"kind": "kast"}`` and the canonical
    ``make_spec("kast")`` describe the same kernel; canonicalizing both to
    the same value keeps session engine keys, warm caches and persistence
    signatures consistent across input forms.  Unregistered kinds pass
    through unchanged; unknown parameters of registered kinds are rejected.
    """
    if spec.kind not in _REGISTRY:
        return spec
    entry = _REGISTRY[spec.kind]
    return KernelSpec(
        spec.kind,
        _merge_params(entry, spec.params_dict),
        tuple(canonicalize_spec(child) for child in spec.children),
    )


def coerce_spec(spec: Union[KernelSpec, Mapping[str, Any], str, StringKernel]) -> KernelSpec:
    """Normalise the accepted spec shorthands to a canonical :class:`KernelSpec`.

    Accepts a spec, a ``to_dict`` mapping, a JSON object string, a bare kind
    name, or a live kernel (via :func:`spec_from_kernel`).  The result is
    canonicalized (:func:`canonicalize_spec`), so every shorthand naming the
    same kernel configuration coerces to the same value.
    """
    if isinstance(spec, KernelSpec):
        return canonicalize_spec(spec)
    if isinstance(spec, StringKernel):
        return spec_from_kernel(spec)
    if isinstance(spec, Mapping):
        return canonicalize_spec(KernelSpec.from_dict(spec))
    if isinstance(spec, str):
        text = spec.strip()
        if text.startswith("{"):
            return canonicalize_spec(KernelSpec.from_json(text))
        return make_spec(text)
    raise KernelSpecError(f"cannot interpret {type(spec).__name__} as a kernel spec")


def spec_signature(spec: KernelSpec) -> str:
    """Canonical serialization of *spec* minus value-irrelevant parameters.

    This is the string the :class:`~repro.core.engine.GramEngine` stamps
    into persisted matrices: it changes whenever any value-affecting spec
    field changes (invalidating stale caches) while deliberately ignoring
    parameters registered as ``signature_exempt`` (e.g. the Kast kernel's
    ``backend``, whose implementations are value-equivalent).  Unregistered
    kinds keep all their parameters.
    """

    def strip(node: KernelSpec) -> Dict[str, Any]:
        exempt = _REGISTRY[node.kind].signature_exempt if node.kind in _REGISTRY else frozenset()
        payload: Dict[str, Any] = {"kind": node.kind}
        params = {name: value for name, value in node.params if name not in exempt}
        if params:
            payload["params"] = params
        if node.children:
            payload["children"] = [strip(child) for child in node.children]
        return payload

    return json.dumps(strip(spec), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Built-in kinds
# ----------------------------------------------------------------------
def _build_kast(params, children, interner):
    return KastSpectrumKernel(
        cut_weight=params["cut_weight"],
        normalization=params["normalization"],
        filter_tokens_below_cut=params["filter_tokens_below_cut"],
        require_independent_occurrence=params["require_independent_occurrence"],
        backend=params["backend"],
        interner=interner,
    )


def _kast_to_spec(kernel: KastSpectrumKernel) -> KernelSpec:
    return make_spec(
        "kast",
        cut_weight=kernel.cut_weight,
        normalization=kernel.normalization,
        filter_tokens_below_cut=kernel.filter_tokens_below_cut,
        require_independent_occurrence=kernel.require_independent_occurrence,
        backend=kernel.backend,
    )


def _build_blended(params, children, interner):
    return BlendedSpectrumKernel(
        max_length=params["max_length"],
        decay=params["decay"],
        weighted=params["weighted"],
        min_weight=params["min_weight"],
    )


def _blended_to_spec(kernel: BlendedSpectrumKernel) -> KernelSpec:
    return make_spec(
        "blended",
        max_length=kernel.max_length,
        decay=kernel.decay,
        weighted=kernel.weighted,
        min_weight=kernel.min_weight,
    )


def _build_spectrum(params, children, interner):
    return SpectrumKernel(k=params["k"], weighted=params["weighted"])


def _spectrum_to_spec(kernel: SpectrumKernel) -> KernelSpec:
    return make_spec("spectrum", k=kernel.k, weighted=kernel.weighted)


def _build_bag_of_characters(params, children, interner):
    return BagOfCharactersKernel(
        weighted=params["weighted"], include_structural=params["include_structural"]
    )


def _bag_of_characters_to_spec(kernel: BagOfCharactersKernel) -> KernelSpec:
    return make_spec(
        "bag-of-characters", weighted=kernel.weighted, include_structural=kernel.include_structural
    )


def _build_bag_of_words(params, children, interner):
    return BagOfWordsKernel(weighted=params["weighted"])


def _bag_of_words_to_spec(kernel: BagOfWordsKernel) -> KernelSpec:
    return make_spec("bag-of-words", weighted=kernel.weighted)


def _build_sum(params, children, interner):
    return SumKernel(children)


def _sum_to_spec(kernel: SumKernel) -> KernelSpec:
    return make_spec("sum", children=[spec_from_kernel(child) for child in kernel.kernels])


def _build_product(params, children, interner):
    return ProductKernel(children)


def _product_to_spec(kernel: ProductKernel) -> KernelSpec:
    return make_spec("product", children=[spec_from_kernel(child) for child in kernel.kernels])


def _build_scaled(params, children, interner):
    if len(children) != 1:
        raise KernelSpecError(f"'scaled' takes exactly one child spec, got {len(children)}")
    return ScaledKernel(children[0], params["scale"])


def _scaled_to_spec(kernel: ScaledKernel) -> KernelSpec:
    return make_spec("scaled", children=[spec_from_kernel(kernel.kernel)], scale=kernel.scale)


def _build_normalized(params, children, interner):
    if len(children) != 1:
        raise KernelSpecError(f"'normalized' takes exactly one child spec, got {len(children)}")
    return NormalizedKernel(children[0])


def _normalized_to_spec(kernel: NormalizedKernel) -> KernelSpec:
    return make_spec("normalized", children=[spec_from_kernel(kernel.kernel)])


# Registration order fixes the order of KERNEL_CHOICES and the CLI choice
# lists; the first five entries reproduce the library's historical tuple.
register_kernel(
    "kast",
    _build_kast,
    defaults={
        "cut_weight": 2,
        "normalization": "gram",
        "filter_tokens_below_cut": False,
        "require_independent_occurrence": True,
        "backend": "numpy",
    },
    kernel_class=KastSpectrumKernel,
    to_spec=_kast_to_spec,
    signature_exempt=("backend",),
    description="the paper's Kast Spectrum Kernel (weighted shared substrings)",
)
register_kernel(
    "blended",
    _build_blended,
    defaults={"max_length": 3, "decay": 1.0, "weighted": True, "min_weight": 1},
    kernel_class=BlendedSpectrumKernel,
    to_spec=_blended_to_spec,
    description="blended k-spectrum baseline (substrings of every length <= k)",
)
register_kernel(
    "spectrum",
    _build_spectrum,
    defaults={"k": 3, "weighted": True},
    kernel_class=SpectrumKernel,
    to_spec=_spectrum_to_spec,
    description="plain k-spectrum baseline (substrings of length exactly k)",
)
register_kernel(
    "bag-of-characters",
    _build_bag_of_characters,
    defaults={"weighted": True, "include_structural": True},
    kernel_class=BagOfCharactersKernel,
    to_spec=_bag_of_characters_to_spec,
    description="token-literal histogram baseline",
)
register_kernel(
    "bag-of-words",
    _build_bag_of_words,
    defaults={"weighted": True},
    kernel_class=BagOfWordsKernel,
    to_spec=_bag_of_words_to_spec,
    description="block-body histogram baseline",
)
register_kernel(
    "sum",
    _build_sum,
    kernel_class=SumKernel,
    to_spec=_sum_to_spec,
    composite=True,
    description="pointwise sum of the child kernels",
)
register_kernel(
    "product",
    _build_product,
    kernel_class=ProductKernel,
    to_spec=_product_to_spec,
    composite=True,
    description="pointwise product of the child kernels",
)
register_kernel(
    "scaled",
    _build_scaled,
    defaults={"scale": 1.0},
    kernel_class=ScaledKernel,
    to_spec=_scaled_to_spec,
    composite=True,
    description="child kernel multiplied by a positive constant",
)
register_kernel(
    "normalized",
    _build_normalized,
    kernel_class=NormalizedKernel,
    to_spec=_normalized_to_spec,
    composite=True,
    description="child kernel with cosine normalisation baked into its raw value",
)
