"""repro.api — the library's declarative front door.

Two pieces:

* :mod:`repro.api.spec` — :class:`KernelSpec` (frozen, JSON/dict
  round-trippable, picklable kernel descriptions) and the kernel-factory
  registry (:func:`register_kernel`, :func:`kernel_from_spec`,
  :func:`spec_from_kernel`).  Every kernel kind the CLI and the pipeline
  offer derives from this registry.
* :mod:`repro.api.session` — :class:`AnalysisSession`, the service facade
  owning one token interner and one warm Gram engine per spec, with
  ``submit``/``result`` job handles for asynchronous clients.

:class:`ServiceClient` (the networked mirror of the session surface, see
:mod:`repro.service`) is re-exported lazily so ``from repro.api import
ServiceClient`` works without importing the service stack — or the session
module importing it — at package-import time.
"""

from repro.api.session import AnalysisSession, JobError, JobTimeout
from repro.core.cachestore import MatrixCache
from repro.api.spec import (
    KernelSpec,
    KernelSpecError,
    canonicalize_spec,
    coerce_spec,
    kernel_choices,
    kernel_from_spec,
    make_spec,
    register_kernel,
    registered_kinds,
    spec_from_kernel,
    spec_signature,
)

__all__ = [
    "AnalysisSession",
    "JobError",
    "JobTimeout",
    "KernelSpec",
    "KernelSpecError",
    "MatrixCache",
    "ServiceClient",
    "canonicalize_spec",
    "coerce_spec",
    "kernel_choices",
    "kernel_from_spec",
    "make_spec",
    "register_kernel",
    "registered_kinds",
    "spec_from_kernel",
    "spec_signature",
]


def __getattr__(name: str):
    if name == "ServiceClient":
        from repro.service.client import ServiceClient

        return ServiceClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
