"""The :class:`AnalysisSession` service facade — the library's front door.

One session owns the mutable, warm state every kernel evaluation can share:

* one :class:`~repro.strings.interner.TokenInterner` (one literal → id space
  for every Kast kernel the session builds);
* one live kernel and one :class:`~repro.core.engine.GramEngine` per
  :class:`~repro.api.spec.KernelSpec` — the engines' symmetric pair caches
  and self-value caches persist across calls, so interactive clients,
  repeated experiments and sweeps reuse each other's evaluations instead of
  recomputing them;
* a small job layer (:meth:`submit` / :meth:`result`) that runs matrix and
  analysis requests on a background pool, the seam the ROADMAP's async
  evaluation service grows from.

Everything a session does is keyed by declarative specs, so the same facade
serves scripting users (``session.matrix("kast", strings)``), the CLI, and
process workers (specs are picklable).

Example
-------
::

    from repro.api import AnalysisSession, make_spec

    with AnalysisSession(n_jobs=2) as session:
        strings = session.corpus(small=True, seed=7)
        matrix = session.matrix(make_spec("kast", cut_weight=4), strings)
        job = session.submit("blended", strings)
        other = session.result(job)
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError  # == builtin TimeoutError only from 3.11
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.api.spec import KernelSpec, coerce_spec, kernel_from_spec
from repro.core.cachestore import CacheLookup, MatrixCache
from repro.core.engine import ENGINE_EXECUTORS, GramEngine, string_fingerprint
from repro.core.pairstore import PairStore
from repro.core.matrix import KernelMatrix
from repro.kernels.base import StringKernel
from repro.strings.encoder import StringEncoder
from repro.strings.interner import TokenInterner
from repro.strings.tokens import WeightedString
from repro.traces.model import IOTrace
from repro.traces.parser import parse_trace_file
from repro.workloads.corpus import CorpusConfig, build_corpus

__all__ = ["AnalysisSession", "JobError", "JobTimeout"]

#: Anything the session accepts where a kernel spec is expected.
SpecLike = Union[KernelSpec, Mapping[str, Any], str, StringKernel]


class JobError(RuntimeError):
    """Raised by :meth:`AnalysisSession.result` when a job failed."""


class JobTimeout(TimeoutError):
    """Raised by :meth:`AnalysisSession.result` when *timeout* expires.

    A :class:`TimeoutError` subclass (so existing ``except TimeoutError``
    callers keep working) that carries the job id and the timeout that
    expired, so service loops can report or retry the specific job instead
    of unwinding with an anonymous pool timeout.
    """

    def __init__(self, job_id: str, timeout: Optional[float] = None) -> None:
        detail = f" within {timeout}s" if timeout is not None else ""
        super().__init__(f"job {job_id!r} did not finish{detail}")
        self.job_id = job_id
        self.timeout = timeout


class _Job:
    """Internal handle pairing a future with its description."""

    __slots__ = ("job_id", "kind", "future", "created_at", "finished_at")

    def __init__(self, job_id: str, kind: str, future: "Future") -> None:
        self.job_id = job_id
        self.kind = kind
        self.future = future
        self.created_at = time.time()
        #: Stamped by the future's done-callback; None while in flight.
        self.finished_at: Optional[float] = None
        future.add_done_callback(self._stamp_finished)

    def _stamp_finished(self, _future: "Future") -> None:
        self.finished_at = time.time()

    def status(self) -> str:
        if self.future.cancelled():
            return "cancelled"
        if self.future.done():
            return "error" if self.future.exception() is not None else "done"
        if self.future.running():
            return "running"
        return "pending"


class AnalysisSession:
    """Shared-state facade over corpora, kernels and Gram-matrix engines.

    Parameters
    ----------
    n_jobs:
        Worker count forwarded to every engine the session creates.
    executor:
        Engine worker-pool implementation, ``"thread"`` (default) or
        ``"process"`` (see :class:`~repro.core.engine.GramEngine`).
    interner:
        Optional pre-existing token interner to share with other sessions.
    pair_cache_size / chunk_size:
        Forwarded to every engine.
    max_job_workers:
        Size of the background pool serving :meth:`submit` jobs.
    job_ttl:
        Seconds a *finished* job handle (and its retained result) is kept
        for collection before the session's sweep evicts it.  ``None``
        (the default) keeps finished jobs until :meth:`forget` — but see
        *max_retained_jobs*, which bounds retention either way.
    max_retained_jobs:
        Hard cap on retained *finished* jobs: when exceeded, the
        oldest-finished are evicted first.  Protects long-lived servers
        whose clients submit but never fetch from unbounded growth.
    matrix_cache:
        Optional persistent Gram-result cache
        (:class:`~repro.core.cachestore.MatrixCache`, or a directory path
        one is opened at).  When set, :meth:`matrix` serves identical
        ``(spec, corpus)`` requests from disk bit-identically — across
        sessions and processes sharing the directory — and extends cached
        prefixes instead of recomputing them.
    pair_store:
        Optional persistent pair-value store
        (:class:`~repro.core.pairstore.PairStore`, or a directory path one
        is opened at).  Threaded into every engine the session builds:
        kernel values missing from the in-memory caches are fetched by
        content fingerprint before any kernel evaluation, so *any* overlap
        with previously computed corpora — reorderings, subsets,
        interleavings, across sessions and processes — pays only for its
        novel pairs.
    """

    def __init__(
        self,
        n_jobs: int = 1,
        executor: str = "thread",
        interner: Optional[TokenInterner] = None,
        pair_cache_size: Optional[int] = None,
        chunk_size: Optional[int] = None,
        max_job_workers: int = 2,
        job_ttl: Optional[float] = None,
        max_retained_jobs: int = 1024,
        matrix_cache: Optional[Union[MatrixCache, str]] = None,
        pair_store: Optional[Union[PairStore, str]] = None,
    ) -> None:
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if executor not in ENGINE_EXECUTORS:
            raise ValueError(f"executor must be one of {ENGINE_EXECUTORS}, got {executor!r}")
        if max_job_workers < 1:
            raise ValueError(f"max_job_workers must be >= 1, got {max_job_workers}")
        if job_ttl is not None and job_ttl < 0:
            raise ValueError(f"job_ttl must be >= 0 or None, got {job_ttl}")
        if max_retained_jobs < 1:
            raise ValueError(f"max_retained_jobs must be >= 1, got {max_retained_jobs}")
        self.n_jobs = n_jobs
        self.executor = executor
        self.interner = interner if interner is not None else TokenInterner()
        self._engine_options: Dict[str, Any] = {}
        if pair_cache_size is not None:
            self._engine_options["pair_cache_size"] = pair_cache_size
        if chunk_size is not None:
            self._engine_options["chunk_size"] = chunk_size
        if isinstance(matrix_cache, str):
            matrix_cache = MatrixCache(matrix_cache)
        self.matrix_cache = matrix_cache
        if isinstance(pair_store, str):
            pair_store = PairStore(pair_store)
        self.pair_store = pair_store
        self._kernels: Dict[KernelSpec, StringKernel] = {}
        # Engines are keyed by the *value-relevant* kernel signature, not
        # the full spec: specs differing only in value-irrelevant params
        # (e.g. the Kast backend) share one warm engine and pair cache.
        self._engines: Dict[str, GramEngine] = {}
        self._lock = threading.Lock()
        self._jobs: Dict[str, _Job] = {}
        self._job_ids = itertools.count(1)
        self._job_pool: Optional[ThreadPoolExecutor] = None
        self._max_job_workers = max_job_workers
        self.job_ttl = job_ttl
        self.max_retained_jobs = max_retained_jobs
        self._closed = False

    # ------------------------------------------------------------------
    # Spec / kernel / engine resolution (warm caches)
    # ------------------------------------------------------------------
    def spec(self, spec: SpecLike) -> KernelSpec:
        """Coerce any accepted spec shorthand to a :class:`KernelSpec`."""
        return coerce_spec(spec)

    def kernel(self, spec: SpecLike) -> StringKernel:
        """The session's warm kernel for *spec* (built once, then reused).

        Every kernel shares the session interner, so prepared string
        encodings carry over between kernels and sweep points.
        """
        resolved = self.spec(spec)
        with self._lock:
            kernel = self._kernels.get(resolved)
            if kernel is None:
                kernel = kernel_from_spec(resolved, interner=self.interner)
                self._kernels[resolved] = kernel
            return kernel

    def engine(self, spec: SpecLike) -> GramEngine:
        """The session's warm :class:`GramEngine` for *spec*.

        The engine (and its pair/self-value caches) persists for the session
        lifetime: a sweep revisiting a spec, or an interactive client asking
        for an extended corpus, hits the warm caches instead of recomputing.
        Engines are shared between specs whose :func:`kernel signatures
        <repro.api.spec.spec_signature>` agree — the signature strips
        value-irrelevant parameters (e.g. Kast ``backend="numpy"`` vs
        ``"python"``), so equivalent specs warm one pair cache instead of
        fragmenting it.
        """
        resolved = self.spec(spec)
        kernel = self.kernel(resolved)
        signature = resolved.signature()
        with self._lock:
            engine = self._engines.get(signature)
            if engine is None:
                engine = GramEngine(
                    kernel,
                    n_jobs=self.n_jobs,
                    interner=self.interner if hasattr(kernel, "interner") else None,
                    spec=resolved,
                    executor=self.executor,
                    pair_store=self.pair_store,
                    **self._engine_options,
                )
                self._engines[signature] = engine
            return engine

    def set_pair_store(self, pair_store: Optional[Union[PairStore, str]]) -> Optional[PairStore]:
        """Attach (or detach) the persistent pair store, warm engines included.

        Service front ends open the store after constructing the session
        (it lives under their state dir), mirroring how the server attaches
        ``matrix_cache``; engines already built get the store retrofitted.
        Accepts a :class:`~repro.core.pairstore.PairStore`, a directory
        path, or ``None`` to detach.  Returns the attached store.
        """
        if isinstance(pair_store, str):
            pair_store = PairStore(pair_store)
        with self._lock:
            self.pair_store = pair_store
            for engine in self._engines.values():
                engine.pair_store = pair_store
        return pair_store

    # ------------------------------------------------------------------
    # Corpus construction
    # ------------------------------------------------------------------
    def corpus(
        self,
        config: Optional[CorpusConfig] = None,
        *,
        seed: int = 2017,
        small: bool = False,
        use_byte_information: bool = True,
        emit_level_up: bool = True,
        compaction: Optional[Any] = None,
        traces: Optional[Sequence[IOTrace]] = None,
    ) -> List[WeightedString]:
        """Build (or encode) a labelled corpus of weighted strings.

        Without arguments this produces the paper's 110-example corpus;
        ``small=True`` selects the reduced 16-example test corpus.  *traces*
        bypasses corpus generation and encodes the given traces instead.
        """
        if traces is None:
            if config is None:
                config = CorpusConfig.small(seed=seed) if small else CorpusConfig.paper(seed=seed)
            traces = build_corpus(config)
        encoder = self._encoder(use_byte_information, emit_level_up, compaction)
        return encoder.encode_corpus(list(traces))

    def corpus_from_directory(
        self,
        directory: str,
        *,
        use_byte_information: bool = True,
        emit_level_up: bool = True,
        compaction: Optional[Any] = None,
        pattern: str = ".trace",
    ) -> List[WeightedString]:
        """Parse every ``*.trace`` file under *directory* into weighted strings.

        Files are taken in sorted name order so matrices computed from a
        directory are reproducible; *pattern* is the required filename
        suffix.
        """
        import os

        names = sorted(name for name in os.listdir(directory) if name.endswith(pattern))
        if not names:
            raise FileNotFoundError(f"no '*{pattern}' files under {directory!r}")
        traces = [parse_trace_file(os.path.join(directory, name)) for name in names]
        encoder = self._encoder(use_byte_information, emit_level_up, compaction)
        return encoder.encode_corpus(traces)

    @staticmethod
    def _encoder(use_byte_information: bool, emit_level_up: bool, compaction: Optional[Any]) -> StringEncoder:
        from repro.tree.compaction import CompactionConfig

        return StringEncoder(
            emit_level_up=emit_level_up,
            include_bytes_in_literal=use_byte_information,
            use_byte_information=use_byte_information,
            compaction=compaction if compaction is not None else CompactionConfig.paper(),
        )

    # ------------------------------------------------------------------
    # Kernel evaluation
    # ------------------------------------------------------------------
    def value(self, spec: SpecLike, a: WeightedString, b: WeightedString) -> float:
        """Raw ``k(a, b)`` through the spec's warm engine caches."""
        return self.engine(spec).pair_value(a, b)

    def normalized_value(self, spec: SpecLike, a: WeightedString, b: WeightedString) -> float:
        """Cosine-normalised ``k(a, b)`` through the warm engine caches."""
        return self.engine(spec).normalized_pair_value(a, b)

    def gram(self, spec: SpecLike, strings: Sequence[WeightedString], normalized: bool = True) -> np.ndarray:
        """Plain Gram array over *strings* (see :meth:`GramEngine.gram`)."""
        return self.engine(spec).gram(strings, normalized=normalized)

    def matrix(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        repair: bool = True,
        cache_path: Optional[str] = None,
        use_cache: bool = True,
    ) -> KernelMatrix:
        """Labelled kernel matrix over *strings* under *spec*.

        Goes through the spec's warm engine.  When the session has a
        :class:`~repro.core.cachestore.MatrixCache` (and *use_cache* is
        left on), the result cache is consulted first: an identical
        cached corpus is served bit-identically with zero kernel
        evaluations, and a cached prefix is extended (only the appended
        rows are computed).  *cache_path* enables the engine's per-file
        stamped persistence instead (the two are mutually exclusive; a
        given *cache_path* wins).
        """
        matrix, _ = self.matrix_cached(
            spec, strings, normalized=normalized, repair=repair,
            cache_path=cache_path, use_cache=use_cache,
        )
        return matrix

    def matrix_cached(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        repair: bool = True,
        cache_path: Optional[str] = None,
        use_cache: bool = True,
    ) -> Tuple[KernelMatrix, str]:
        """:meth:`matrix` plus the result-cache outcome.

        Returns ``(matrix, status)`` where *status* is ``"hit"`` (served
        verbatim from the cache), ``"extended"`` (cached prefix reused,
        appended rows computed), ``"miss"`` (computed cold and stored) or
        ``"bypass"`` (no cache, *use_cache* off, or *cache_path* given).
        """
        string_list = list(strings)
        cache = self.matrix_cache if (use_cache and cache_path is None and string_list) else None
        if cache is None:
            matrix = self.engine(spec).compute(
                string_list, normalized=normalized, repair=repair, cache_path=cache_path
            )
            return matrix, "bypass"
        engine = self.engine(spec)
        found = self.matrix_cache_lookup(spec, string_list, normalized=normalized)
        if found.status == "hit":
            matrix = KernelMatrix.from_dict(found.payload)
            status = "hit"
        else:
            base: Optional[KernelMatrix] = None
            base_fingerprints: Optional[List[str]] = None
            if found.status == "prefix":
                base = KernelMatrix.from_dict(found.payload)
                base_fingerprints = [str(item) for item in found.payload["fingerprints"]]
            matrix = engine.matrix(
                string_list,
                normalized=normalized,
                base=base,
                base_fingerprints=base_fingerprints,
                base_signature=engine.kernel_signature() if base is not None else None,
            )
            self.matrix_cache_store(spec, string_list, matrix)
            status = "extended" if base is not None else "miss"
        if repair and not matrix.is_positive_semidefinite():
            matrix = matrix.repaired()
        return matrix, status

    # ------------------------------------------------------------------
    # Persistent result cache (shared with servers/workers via the state dir)
    # ------------------------------------------------------------------
    def matrix_cache_lookup(
        self, spec: SpecLike, strings: Sequence[WeightedString], normalized: bool = True
    ) -> CacheLookup:
        """Result-cache probe for ``(spec, strings)``; a miss when disabled.

        Service front ends use this directly when they need the raw
        lookup — e.g. to skip distributed block tasks already covered by
        a cached prefix — while plain callers go through
        :meth:`matrix_cached`.
        """
        if self.matrix_cache is None:
            return CacheLookup("miss")
        string_list = list(strings)
        return self.matrix_cache.lookup(
            self.engine(spec).kernel_signature(),
            bool(normalized),
            [string_fingerprint(string) for string in string_list],
            [string.name for string in string_list],
            [string.label for string in string_list],
        )

    def matrix_cache_store(
        self, spec: SpecLike, strings: Sequence[WeightedString], matrix: KernelMatrix
    ) -> bool:
        """Store a *pre-repair* matrix in the result cache; whether stored.

        The stored payload is the engine's stamped
        :meth:`~repro.core.engine.GramEngine.matrix_payload` form, so the
        entry is self-describing and every layer (session, server, CLI)
        can serve it bit-identically.
        """
        if self.matrix_cache is None or not len(matrix):
            return False
        engine = self.engine(spec)
        self.matrix_cache.store(engine.matrix_payload(matrix, list(strings)))
        return True

    # ------------------------------------------------------------------
    # Streaming serving path (landmark/Nyström models)
    # ------------------------------------------------------------------
    def fit_landmark_model(
        self,
        spec: SpecLike,
        strings: Sequence[WeightedString],
        name: str,
        landmarks: int = 16,
        strategy: str = "kcenter",
        seed: int = 2017,
        n_components: int = 2,
        n_clusters: Optional[int] = None,
        use_cache: bool = True,
    ) -> Tuple[Any, str]:
        """Fit a frozen :class:`~repro.streaming.model.LandmarkModel`.

        The full Gram comes from :meth:`matrix_cached` (zero evaluations
        when the result cache covers the corpus); returns ``(model,
        cache_status)``.  Serve the model with :meth:`streaming_scorer`.
        """
        from repro.streaming.model import fit_landmark_model

        return fit_landmark_model(
            self, spec, strings, name=name, landmarks=landmarks, strategy=strategy,
            seed=seed, n_components=n_components, n_clusters=n_clusters, use_cache=use_cache,
        )

    def streaming_scorer(self, model: Any) -> Any:
        """An online :class:`~repro.streaming.scorer.StreamingScorer` bound
        to this session's warm engine (and shared pair store) for *model*."""
        from repro.streaming.scorer import StreamingScorer

        return StreamingScorer(model, self)

    # ------------------------------------------------------------------
    # Pipeline-level entry points
    # ------------------------------------------------------------------
    def analyze(
        self,
        config: Optional[Any] = None,
        traces: Optional[Sequence[IOTrace]] = None,
        strings: Optional[Sequence[WeightedString]] = None,
    ) -> Any:
        """Run the full analysis pipeline for an ``ExperimentConfig``.

        Equivalent to :func:`repro.pipeline.pipeline.run_experiment`, except
        the kernel-matrix stage goes through the session's warm engines, so
        repeated analyses (and analyses following interactive queries under
        the same spec) share their pair caches.  The session owns the
        execution policy: its ``n_jobs``/``executor`` apply to the matrix
        stage and ``config.n_jobs`` is ignored here — pass the desired
        parallelism to the session constructor.
        """
        from repro.pipeline.config import ExperimentConfig
        from repro.pipeline.pipeline import AnalysisPipeline

        pipeline = AnalysisPipeline(config or ExperimentConfig(), session=self)
        if strings is not None:
            return pipeline.run_on_strings(list(strings))
        return pipeline.run(traces)

    def sweep(
        self,
        config: Optional[Any] = None,
        cut_weights: Optional[Sequence[int]] = None,
        traces: Optional[Sequence[IOTrace]] = None,
        strings: Optional[Sequence[WeightedString]] = None,
    ) -> Any:
        """Cut-weight sweep sharing the session's interner and warm engines."""
        from repro.pipeline.sweep import PAPER_CUT_WEIGHTS, cut_weight_sweep

        return cut_weight_sweep(
            config,
            cut_weights=tuple(cut_weights) if cut_weights is not None else PAPER_CUT_WEIGHTS,
            traces=traces,
            strings=strings,
            session=self,
        )

    # ------------------------------------------------------------------
    # Job handles (async-service seam)
    # ------------------------------------------------------------------
    def submit(self, spec: SpecLike, strings: Sequence[WeightedString], **matrix_options: Any) -> str:
        """Queue a :meth:`matrix` computation; returns a job id.

        The job runs on the session's background pool against the same warm
        engines, so its results (and cache warm-up) are shared with
        synchronous callers.
        """
        resolved = self.spec(spec)
        string_list = list(strings)
        return self._submit_job("matrix", lambda: self.matrix(resolved, string_list, **matrix_options))

    def submit_analyze(self, config: Optional[Any] = None, **analyze_options: Any) -> str:
        """Queue an :meth:`analyze` run; returns a job id."""
        return self._submit_job("analyze", lambda: self.analyze(config, **analyze_options))

    def submit_work(self, kind: str, work: Any) -> str:
        """Queue an arbitrary callable on the session's job pool; returns a job id.

        The persistence hook for service front ends: a server wraps its own
        computation (e.g. a block-sharded matrix job that also writes the
        result to an on-disk job store) in *work* and still gets the
        session's job-id/status/result lifecycle — including
        :class:`JobError` wrapping and :class:`JobTimeout` on slow results.
        *kind* is a short tag prefixed to the generated job id.
        """
        if not callable(work):
            raise TypeError(f"work must be callable, got {type(work).__name__}")
        return self._submit_job(str(kind), work)

    def _submit_job(self, kind: str, work) -> str:
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            self._sweep_jobs_locked()
            if self._job_pool is None:
                self._job_pool = ThreadPoolExecutor(
                    max_workers=self._max_job_workers, thread_name_prefix="repro-session"
                )
            job_id = f"{kind}-{next(self._job_ids)}"
            self._jobs[job_id] = _Job(job_id, kind, self._job_pool.submit(work))
            return job_id

    def _sweep_jobs_locked(self, now: Optional[float] = None) -> List[str]:
        """Evict expired / excess finished jobs (caller holds ``self._lock``)."""
        moment = time.time() if now is None else now
        evicted: List[str] = []
        if self.job_ttl is not None:
            for job_id, job in list(self._jobs.items()):
                if job.finished_at is not None and moment - job.finished_at >= self.job_ttl:
                    del self._jobs[job_id]
                    evicted.append(job_id)
        finished = sorted(
            ((job.finished_at, job_id) for job_id, job in self._jobs.items()
             if job.finished_at is not None),
        )
        excess = len(finished) - self.max_retained_jobs
        for _, job_id in finished[:max(0, excess)]:
            del self._jobs[job_id]
            evicted.append(job_id)
        return evicted

    def sweep_jobs(self) -> List[str]:
        """Drop finished jobs past their TTL (and beyond the retention cap).

        The session-side twin of :meth:`JobStore.sweep
        <repro.service.jobstore.JobStore.sweep>`: a server maintenance
        loop calls both so neither the state dir nor the in-memory future
        map grows without bound when clients never fetch results.  A swept
        job's id stops resolving — :meth:`status` / :meth:`result` raise
        :class:`KeyError` for it.  Returns the evicted job ids.
        """
        with self._lock:
            return self._sweep_jobs_locked()

    def _job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> str:
        """``"pending" | "running" | "done" | "error" | "cancelled"``.

        Raises :class:`KeyError` for unknown ids — including finished jobs
        already evicted by the TTL/retention sweep (:meth:`sweep_jobs`).
        """
        if self.job_ttl is not None:
            self.sweep_jobs()
        return self._job(job_id).status()

    def result(self, job_id: str, timeout: Optional[float] = None, forget: bool = False) -> Any:
        """Block for (and return) a job's result.

        Parameters
        ----------
        job_id:
            A handle previously returned by :meth:`submit`,
            :meth:`submit_analyze` or :meth:`submit_work` (unknown ids raise
            :class:`KeyError`).
        timeout:
            Maximum seconds to wait; when it expires a :class:`JobTimeout`
            (a :class:`TimeoutError` subclass carrying the job id) is raised
            and the job keeps running — the result can still be collected by
            a later call.
        forget:
            When ``True`` the finished job (and the session's reference to
            its result or exception) is dropped after delivery, exactly as
            :meth:`forget` would.  Long-lived service loops should pass it —
            or call :meth:`forget` explicitly — so retained results do not
            accumulate for the session lifetime.  A timed-out job is *not*
            forgotten (it has not finished).

        Raises :class:`JobError` wrapping the original exception when the
        job failed — including a *cancelled* job, whose
        :class:`~concurrent.futures.CancelledError` is a
        :class:`BaseException` since Python 3.8 and would otherwise escape
        the error contract entirely — so callers can distinguish job
        failure from lookup errors.
        """
        job = self._job(job_id)
        try:
            value = job.future.result(timeout=timeout)
        except (TimeoutError, FuturesTimeoutError) as exc:
            raise JobTimeout(job_id, timeout) from exc
        except CancelledError as exc:
            # A BaseException: without this clause it would bypass both the
            # JobError wrapping and the forget=True eviction below.
            if forget:
                self.forget(job_id)
            raise JobError(f"job {job_id!r} was cancelled") from exc
        except Exception as exc:
            if forget:
                self.forget(job_id)
            raise JobError(f"job {job_id!r} failed: {exc}") from exc
        if forget:
            self.forget(job_id)
        return value

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started; returns whether it was cancelled.

        Mirrors :meth:`concurrent.futures.Future.cancel`: a queued job is
        cancelled and reports the ``"cancelled"`` status, a running or
        finished job is left untouched and ``False`` is returned.
        """
        return self._job(job_id).future.cancel()

    def forget(self, job_id: str) -> bool:
        """Drop a *finished* job and its retained result; returns whether dropped.

        Running or pending jobs are left untouched (and ``False`` is
        returned) — this is an eviction hook, not a cancellation API.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or not job.future.done():
                return False
            del self._jobs[job_id]
            return True

    def jobs(self) -> Dict[str, str]:
        """Status of every retained job submitted to this session."""
        if self.job_ttl is not None:
            self.sweep_jobs()
        with self._lock:
            return {job_id: job.status() for job_id, job in self._jobs.items()}

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Per-engine cache counters, keyed by the engine's canonical spec.

        One entry per warm engine: specs deduplicated onto a shared engine
        (equal kernel signatures) report as the spec that first created it.
        When a persistent pair store is attached its aggregate counters are
        reported under the reserved ``"pair-store"`` key (engine entries
        already include their per-engine ``store_hits``/``store_misses``).
        """
        with self._lock:
            engines = list(self._engines.values())
            pair_store = self.pair_store
        info = {engine.spec.canonical(): engine.cache_info() for engine in engines}
        if pair_store is not None:
            info["pair-store"] = pair_store.counters()
        return info

    def engine_counters(self) -> Dict[str, int]:
        """Engine cache counters summed across every warm engine.

        The flat fleet-observability view of :meth:`cache_info`: one total
        per counter (``kernel_evals``, ``pair_hits``, ``store_hits``, …)
        regardless of how many specs are warm — what the service layers
        mirror into their metrics registries.
        """
        with self._lock:
            engines = list(self._engines.values())
        totals: Dict[str, int] = {
            "kernel_evals": 0,
            "pair_hits": 0,
            "pair_misses": 0,
            "store_hits": 0,
            "store_misses": 0,
            "pair_entries": 0,
            "self_entries": 0,
        }
        for engine in engines:
            info = engine.cache_info()
            for key in totals:
                totals[key] += int(info.get(key, 0))
        return totals

    def specs(self) -> Tuple[KernelSpec, ...]:
        """Every spec the session has warmed an engine or kernel for."""
        with self._lock:
            engine_specs = [engine.spec for engine in self._engines.values()]
            return tuple(dict.fromkeys(list(self._kernels) + engine_specs))

    def shutdown(self, wait: bool = True) -> None:
        """Stop the background job pool (idempotent)."""
        with self._lock:
            pool, self._job_pool = self._job_pool, None
            self._closed = True
        if pool is not None:
            pool.shutdown(wait=wait)

    def __enter__(self) -> "AnalysisSession":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"AnalysisSession(n_jobs={self.n_jobs}, executor={self.executor!r}, "
            f"warm_specs={len(self._engines)}, jobs={len(self._jobs)})"
        )
