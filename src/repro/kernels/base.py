"""Common interface shared by every string kernel in the library.

A kernel maps a pair of :class:`~repro.strings.tokens.WeightedString` objects
to a non-negative similarity value.  All kernels — the paper's Kast Spectrum
Kernel and the baselines (k-spectrum, blended spectrum, bag kernels) — derive
from :class:`StringKernel`, so the pipeline, the learning algorithms and the
benchmarks can treat them interchangeably.

Normalisation conventions
-------------------------
``normalized_value`` implements the cosine normalisation of Shawe-Taylor &
Cristianini (and the paper's Eq. 12):

.. math:: \\bar k(A, B) = \\frac{k(A, B)}{\\sqrt{k(A, A)\\, k(B, B)}}

Individual kernels may override it when a cheaper closed form exists (the
Kast kernel does: its self-similarity is the squared filtered string weight).
"""

from __future__ import annotations

import abc
import math
from typing import List, Optional, Sequence

import numpy as np

from repro.strings.tokens import WeightedString

__all__ = ["StringKernel", "KernelEvaluationError"]


class KernelEvaluationError(RuntimeError):
    """Raised when a kernel cannot be evaluated on the given inputs."""


class StringKernel(abc.ABC):
    """Abstract base class for kernels over weighted strings."""

    #: Human readable name used in reports and benchmark output.
    name: str = "kernel"

    @abc.abstractmethod
    def value(self, a: WeightedString, b: WeightedString) -> float:
        """Raw (unnormalised) kernel value ``k(a, b)``."""

    def self_value(self, a: WeightedString) -> float:
        """``k(a, a)``; kernels override this when a cheaper form exists."""
        return self.value(a, a)

    def normalized_value(self, a: WeightedString, b: WeightedString) -> float:
        """Cosine-normalised kernel value in ``[0, 1]`` (0 when either self-value is 0)."""
        denominator = math.sqrt(self.self_value(a) * self.self_value(b))
        if denominator <= 0.0:
            return 0.0
        return self.value(a, b) / denominator

    # ------------------------------------------------------------------
    # Gram matrix helpers
    # ------------------------------------------------------------------
    def matrix(
        self,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        others: Optional[Sequence[WeightedString]] = None,
    ) -> np.ndarray:
        """Compute the Gram matrix over *strings* (or a cross matrix vs *others*).

        Parameters
        ----------
        strings:
            Rows of the matrix.
        normalized:
            Apply cosine normalisation entry-wise.
        others:
            When given, compute the (rectangular) cross-kernel matrix between
            *strings* and *others* instead of the square symmetric Gram
            matrix.
        """
        if others is None:
            return self._symmetric_matrix(strings, normalized)
        return self._cross_matrix(strings, others, normalized)

    def _symmetric_matrix(self, strings: Sequence[WeightedString], normalized: bool) -> np.ndarray:
        count = len(strings)
        gram = np.zeros((count, count), dtype=float)
        self_values: List[float] = [self.self_value(string) for string in strings]
        for i in range(count):
            gram[i, i] = 1.0 if normalized and self_values[i] > 0 else self_values[i]
            for j in range(i + 1, count):
                raw = self.value(strings[i], strings[j])
                if normalized:
                    denominator = math.sqrt(self_values[i] * self_values[j])
                    raw = raw / denominator if denominator > 0 else 0.0
                gram[i, j] = raw
                gram[j, i] = raw
        return gram

    def _cross_matrix(
        self,
        rows: Sequence[WeightedString],
        cols: Sequence[WeightedString],
        normalized: bool,
    ) -> np.ndarray:
        matrix = np.zeros((len(rows), len(cols)), dtype=float)
        row_self = [self.self_value(string) for string in rows]
        col_self = [self.self_value(string) for string in cols]
        for i, row in enumerate(rows):
            for j, col in enumerate(cols):
                raw = self.value(row, col)
                if normalized:
                    denominator = math.sqrt(row_self[i] * col_self[j])
                    raw = raw / denominator if denominator > 0 else 0.0
                matrix[i, j] = raw
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{self.__class__.__name__}(name={self.name!r})"
