"""Common interface shared by every string kernel in the library.

A kernel maps a pair of :class:`~repro.strings.tokens.WeightedString` objects
to a non-negative similarity value.  All kernels — the paper's Kast Spectrum
Kernel and the baselines (k-spectrum, blended spectrum, bag kernels) — derive
from :class:`StringKernel`, so the pipeline, the learning algorithms and the
benchmarks can treat them interchangeably.

Normalisation conventions
-------------------------
``normalized_value`` implements the cosine normalisation of Shawe-Taylor &
Cristianini (and the paper's Eq. 12):

.. math:: \\bar k(A, B) = \\frac{k(A, B)}{\\sqrt{k(A, A)\\, k(B, B)}}

Individual kernels may override it when a cheaper closed form exists (the
Kast kernel does: its self-similarity is the squared filtered string weight).
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence

import numpy as np

from repro.strings.tokens import WeightedString

__all__ = ["StringKernel", "KernelEvaluationError", "normalize_kernel_value"]


class KernelEvaluationError(RuntimeError):
    """Raised when a kernel cannot be evaluated on the given inputs."""


def normalize_kernel_value(raw: float, self_a: float, self_b: float) -> float:
    """Cosine-normalise one raw kernel value: ``raw / sqrt(k(a,a) k(b,b))``.

    This is the single normalisation path shared by ``normalized_value``,
    the Gram/cross matrix assembly and the :class:`~repro.core.engine.GramEngine`,
    so every caller treats the degenerate cases identically: a zero *or
    negative* self-similarity (numerically possible for non-Mercer empirical
    kernels) yields 0.0 instead of a division error or a NaN.
    """
    denominator_squared = self_a * self_b
    if self_a <= 0.0 or self_b <= 0.0 or denominator_squared <= 0.0:
        return 0.0
    return raw / math.sqrt(denominator_squared)


class StringKernel(abc.ABC):
    """Abstract base class for kernels over weighted strings."""

    #: Human readable name used in reports and benchmark output.
    name: str = "kernel"

    @abc.abstractmethod
    def value(self, a: WeightedString, b: WeightedString) -> float:
        """Raw (unnormalised) kernel value ``k(a, b)``."""

    def self_value(self, a: WeightedString) -> float:
        """``k(a, a)``; kernels override this when a cheaper form exists."""
        return self.value(a, a)

    def normalized_value(self, a: WeightedString, b: WeightedString) -> float:
        """Cosine-normalised kernel value in ``[0, 1]`` (0 when either self-value is 0)."""
        return normalize_kernel_value(self.value(a, b), self.self_value(a), self.self_value(b))

    # ------------------------------------------------------------------
    # Gram matrix helpers
    # ------------------------------------------------------------------
    def matrix(
        self,
        strings: Sequence[WeightedString],
        normalized: bool = True,
        others: Optional[Sequence[WeightedString]] = None,
        n_jobs: int = 1,
    ) -> np.ndarray:
        """Compute the Gram matrix over *strings* (or a cross matrix vs *others*).

        The symmetric case is delegated to
        :class:`~repro.core.engine.GramEngine`, which adds a symmetric
        pair-value cache and optional parallel evaluation.

        Parameters
        ----------
        strings:
            Rows of the matrix.
        normalized:
            Apply cosine normalisation entry-wise.
        others:
            When given, compute the (rectangular) cross-kernel matrix between
            *strings* and *others* instead of the square symmetric Gram
            matrix.
        n_jobs:
            Number of worker threads used for the symmetric Gram matrix
            (1 = serial).
        """
        if others is None:
            # Imported lazily: repro.core depends on this module.
            from repro.core.engine import GramEngine

            return GramEngine(self, n_jobs=n_jobs).gram(strings, normalized=normalized)
        return self._cross_matrix(strings, others, normalized)

    def _cross_matrix(
        self,
        rows: Sequence[WeightedString],
        cols: Sequence[WeightedString],
        normalized: bool,
    ) -> np.ndarray:
        matrix = np.zeros((len(rows), len(cols)), dtype=float)
        row_self = [self.self_value(string) for string in rows]
        col_self = [self.self_value(string) for string in cols]
        for i, row in enumerate(rows):
            for j, col in enumerate(cols):
                raw = self.value(row, col)
                if normalized:
                    raw = normalize_kernel_value(raw, row_self[i], col_self[j])
                matrix[i, j] = raw
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{self.__class__.__name__}(name={self.name!r})"
