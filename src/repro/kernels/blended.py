"""The blended k-spectrum kernel.

Shawe-Taylor & Cristianini (2004): instead of counting substrings of exactly
length ``k``, the blended spectrum kernel counts substrings of every length
``1 .. k``, optionally discounting a length-``l`` substring by ``lambda**l``.
It is the strongest baseline in the paper: with byte information it separates
the Flash I/O class but lumps the other three together (Figures 8 and 9),
which benchmark E4/E5 reproduce.

As with :class:`~repro.kernels.spectrum.SpectrumKernel`, the alphabet is the
set of token literals and occurrences can be weighted by their token weights.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

from repro.kernels.base import StringKernel
from repro.strings.tokens import WeightedString

__all__ = ["BlendedSpectrumKernel"]

_Gram = Tuple[str, ...]


class BlendedSpectrumKernel(StringKernel):
    """Count shared token substrings of every length up to ``max_length``.

    Parameters
    ----------
    max_length:
        Largest substring length considered (the ``k`` of the blended
        k-spectrum kernel).
    decay:
        Per-token geometric decay ``lambda``; a substring of length ``l``
        receives an extra factor ``decay ** l``.  ``1.0`` (default) recovers
        the plain blended spectrum kernel.
    weighted:
        When true (default) occurrences contribute their summed token weight
        rather than 1, which puts this baseline on the same footing as the
        Kast kernel with respect to the weighted representation.
    min_weight:
        Occurrences whose summed token weight is below this threshold are
        ignored.  The paper applies its cut-weight sweep to this kernel as
        well; the pipeline passes the cut weight through this parameter.
    """

    def __init__(
        self,
        max_length: int = 3,
        decay: float = 1.0,
        weighted: bool = True,
        min_weight: int = 1,
    ) -> None:
        if max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {max_length}")
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if min_weight < 1:
            raise ValueError(f"min_weight must be >= 1, got {min_weight}")
        self.max_length = max_length
        self.decay = decay
        self.weighted = weighted
        self.min_weight = min_weight
        suffix = f", decay={decay}" if decay != 1.0 else ""
        self.name = f"blended(k<={max_length}{suffix}, min_weight={min_weight})"
        self._cache: Dict[int, Tuple[WeightedString, Dict[_Gram, float]]] = {}

    # ------------------------------------------------------------------
    # Feature map
    # ------------------------------------------------------------------
    def feature_map(self, string: WeightedString) -> Dict[_Gram, float]:
        """Sparse feature vector over all substrings of length 1..max_length."""
        # Entries pin the string object and are identity-checked, so a cache
        # slot can never serve features computed for a freed string whose id
        # was recycled (see SpectrumKernel.feature_map).
        key = id(string)
        cached = self._cache.get(key)
        if cached is not None and cached[0] is string:
            return cached[1]
        literals = [token.literal for token in string]
        weights = [token.weight for token in string]
        features: Dict[_Gram, float] = defaultdict(float)
        count = len(literals)
        for length in range(1, self.max_length + 1):
            factor = self.decay**length
            for start in range(count - length + 1):
                occurrence_weight = sum(weights[start : start + length])
                if occurrence_weight < self.min_weight:
                    continue
                gram = tuple(literals[start : start + length])
                contribution = occurrence_weight if self.weighted else 1.0
                features[gram] += factor * contribution
        result = dict(features)
        self._cache[key] = (string, result)
        if len(self._cache) > 4096:
            self._cache.clear()
            self._cache[key] = (string, result)
        return result

    # ------------------------------------------------------------------
    # StringKernel interface
    # ------------------------------------------------------------------
    def value(self, a: WeightedString, b: WeightedString) -> float:
        features_a = self.feature_map(a)
        features_b = self.feature_map(b)
        if len(features_b) < len(features_a):
            features_a, features_b = features_b, features_a
        return float(sum(value * features_b.get(gram, 0.0) for gram, value in features_a.items()))

    def self_value(self, a: WeightedString) -> float:
        features = self.feature_map(a)
        return float(sum(value * value for value in features.values()))
