"""Kernel combinators.

Sums, products and positive scalings of kernels are kernels (closure
properties of the class of positive semidefinite functions).  These wrappers
let experiments mix representations — for example adding a bag-of-characters
term to the Kast kernel to reward overall operation-mix similarity — without
touching the kernel implementations themselves.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernels.base import StringKernel
from repro.strings.tokens import WeightedString

__all__ = ["SumKernel", "ProductKernel", "ScaledKernel", "NormalizedKernel"]


class SumKernel(StringKernel):
    """Pointwise sum of several kernels: ``k(a, b) = sum_i k_i(a, b)``."""

    def __init__(self, kernels: Sequence[StringKernel]) -> None:
        if not kernels:
            raise ValueError("SumKernel requires at least one kernel")
        self.kernels = tuple(kernels)
        self.name = "sum(" + ", ".join(kernel.name for kernel in self.kernels) + ")"

    def value(self, a: WeightedString, b: WeightedString) -> float:
        return float(sum(kernel.value(a, b) for kernel in self.kernels))

    def self_value(self, a: WeightedString) -> float:
        return float(sum(kernel.self_value(a) for kernel in self.kernels))


class ProductKernel(StringKernel):
    """Pointwise product of several kernels: ``k(a, b) = prod_i k_i(a, b)``."""

    def __init__(self, kernels: Sequence[StringKernel]) -> None:
        if not kernels:
            raise ValueError("ProductKernel requires at least one kernel")
        self.kernels = tuple(kernels)
        self.name = "product(" + ", ".join(kernel.name for kernel in self.kernels) + ")"

    def value(self, a: WeightedString, b: WeightedString) -> float:
        result = 1.0
        for kernel in self.kernels:
            result *= kernel.value(a, b)
        return float(result)

    def self_value(self, a: WeightedString) -> float:
        result = 1.0
        for kernel in self.kernels:
            result *= kernel.self_value(a)
        return float(result)


class ScaledKernel(StringKernel):
    """A kernel multiplied by a positive constant."""

    def __init__(self, kernel: StringKernel, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.kernel = kernel
        self.scale = float(scale)
        self.name = f"{scale} * {kernel.name}"

    def value(self, a: WeightedString, b: WeightedString) -> float:
        return self.scale * self.kernel.value(a, b)

    def self_value(self, a: WeightedString) -> float:
        return self.scale * self.kernel.self_value(a)


class NormalizedKernel(StringKernel):
    """Wrap a kernel so its raw ``value`` is already cosine-normalised.

    Useful when a combinator should mix *normalised* similarities: e.g.
    ``SumKernel([NormalizedKernel(k1), NormalizedKernel(k2)])`` averages two
    similarity structures on an equal footing.
    """

    def __init__(self, kernel: StringKernel) -> None:
        self.kernel = kernel
        self.name = f"normalized({kernel.name})"

    def value(self, a: WeightedString, b: WeightedString) -> float:
        return self.kernel.normalized_value(a, b)

    def self_value(self, a: WeightedString) -> float:
        base = self.kernel.self_value(a)
        return 1.0 if base > 0 else 0.0
