"""Bag-of-characters and bag-of-words kernels.

Section 2.2 of the paper: "The bag-of-characters kernel only takes into
account single-character matching.  The bag-of-words kernel searches for
shared words among strings."  Both are discarded by the authors for the
weighted-token representation (a single token carries too little context),
but they are implemented here as the weakest baselines and to complete the
kernel family the paper surveys.

For the token representation we interpret:

* **character** = a single token literal;
* **word** = a maximal run of tokens between structural delimiters
  (``[BLOCK]``, ``[HANDLE]``, ``[ROOT]``, ``[LEVEL_UP]``), i.e. the body of
  one block.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.kernels.base import StringKernel
from repro.strings.tokens import STRUCTURAL_LITERALS, WeightedString

__all__ = ["BagOfCharactersKernel", "BagOfWordsKernel"]


class BagOfCharactersKernel(StringKernel):
    """Inner product of per-token-literal weight (or count) histograms."""

    def __init__(self, weighted: bool = True, include_structural: bool = True) -> None:
        self.weighted = weighted
        self.include_structural = include_structural
        self.name = "bag-of-characters" + ("" if weighted else " (unweighted)")

    def feature_map(self, string: WeightedString) -> Dict[str, float]:
        """Histogram of token literals (weight-summed or counted)."""
        histogram: Dict[str, float] = defaultdict(float)
        for token in string:
            if not self.include_structural and token.literal in STRUCTURAL_LITERALS:
                continue
            histogram[token.literal] += token.weight if self.weighted else 1.0
        return dict(histogram)

    def value(self, a: WeightedString, b: WeightedString) -> float:
        features_a = self.feature_map(a)
        features_b = self.feature_map(b)
        if len(features_b) < len(features_a):
            features_a, features_b = features_b, features_a
        return float(sum(value * features_b.get(literal, 0.0) for literal, value in features_a.items()))


class BagOfWordsKernel(StringKernel):
    """Inner product of histograms of block bodies ("words").

    A word is the tuple of operation-token literals appearing between two
    structural tokens; empty words are skipped.
    """

    def __init__(self, weighted: bool = True) -> None:
        self.weighted = weighted
        self.name = "bag-of-words" + ("" if weighted else " (unweighted)")

    @staticmethod
    def split_words(string: WeightedString) -> List[Tuple[Tuple[str, ...], int]]:
        """Split *string* into (word, weight) pairs at structural tokens."""
        words: List[Tuple[Tuple[str, ...], int]] = []
        current: List[str] = []
        weight = 0
        for token in string:
            if token.literal in STRUCTURAL_LITERALS:
                if current:
                    words.append((tuple(current), weight))
                    current, weight = [], 0
            else:
                current.append(token.literal)
                weight += token.weight
        if current:
            words.append((tuple(current), weight))
        return words

    def feature_map(self, string: WeightedString) -> Dict[Tuple[str, ...], float]:
        """Histogram of words (weight-summed or counted)."""
        histogram: Dict[Tuple[str, ...], float] = defaultdict(float)
        for word, weight in self.split_words(string):
            histogram[word] += weight if self.weighted else 1.0
        return dict(histogram)

    def value(self, a: WeightedString, b: WeightedString) -> float:
        features_a = self.feature_map(a)
        features_b = self.feature_map(b)
        if len(features_b) < len(features_a):
            features_a, features_b = features_b, features_a
        return float(sum(value * features_b.get(word, 0.0) for word, value in features_a.items()))
