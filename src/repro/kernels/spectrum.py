"""The k-spectrum kernel over weighted token strings.

Leslie, Eskin & Noble (2002): the k-spectrum kernel counts, for every
possible substring of length exactly ``k``, how often it appears in each
string and takes the inner product of those count vectors.  The original
kernel is defined over plain character strings; here the "alphabet" is the
set of token literals and, optionally, occurrences are weighted by the sum of
their token weights (so a loop of 1000 writes counts more than a single
write, mirroring the weighting of the paper's representation).

The paper evaluates this kernel as a baseline and reports that it "was not
successful at finding an acceptable clustering" (section 4.3); benchmark E8
reproduces that comparison.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

from repro.kernels.base import StringKernel
from repro.strings.tokens import WeightedString

__all__ = ["SpectrumKernel"]

_Gram = Tuple[str, ...]


class SpectrumKernel(StringKernel):
    """Count (or weight) shared token k-grams.

    Parameters
    ----------
    k:
        Exact length (in tokens) of the substrings counted.
    weighted:
        When true (default) each k-gram occurrence contributes the sum of its
        token weights instead of 1.  The unweighted variant is the literal
        textbook k-spectrum kernel.
    """

    def __init__(self, k: int = 3, weighted: bool = True) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.weighted = weighted
        self.name = f"spectrum(k={k}{', weighted' if weighted else ''})"
        self._cache: Dict[int, Tuple[WeightedString, Dict[_Gram, float]]] = {}

    # ------------------------------------------------------------------
    # Feature map
    # ------------------------------------------------------------------
    def feature_map(self, string: WeightedString) -> Dict[_Gram, float]:
        """Sparse k-gram feature vector of *string*."""
        # The cache entry pins the string object: a live entry means its id
        # cannot be recycled, and the identity check rejects any entry left
        # over from a freed string (process workers unpickle fresh strings
        # per chunk, so id reuse is routine there).
        key = id(string)
        cached = self._cache.get(key)
        if cached is not None and cached[0] is string:
            return cached[1]
        literals = [token.literal for token in string]
        weights = [token.weight for token in string]
        features: Dict[_Gram, float] = defaultdict(float)
        for start in range(len(literals) - self.k + 1):
            gram = tuple(literals[start : start + self.k])
            if self.weighted:
                features[gram] += float(sum(weights[start : start + self.k]))
            else:
                features[gram] += 1.0
        result = dict(features)
        self._cache[key] = (string, result)
        if len(self._cache) > 4096:
            self._cache.clear()
            self._cache[key] = (string, result)
        return result

    # ------------------------------------------------------------------
    # StringKernel interface
    # ------------------------------------------------------------------
    def value(self, a: WeightedString, b: WeightedString) -> float:
        features_a = self.feature_map(a)
        features_b = self.feature_map(b)
        if len(features_b) < len(features_a):
            features_a, features_b = features_b, features_a
        return float(sum(value * features_b.get(gram, 0.0) for gram, value in features_a.items()))

    def self_value(self, a: WeightedString) -> float:
        features = self.feature_map(a)
        return float(sum(value * value for value in features.values()))
