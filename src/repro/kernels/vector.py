"""Vector-space kernels (linear, polynomial, Gaussian/RBF).

Section 2.2 of the paper mentions the "widely used Polynomial and Gaussian
Kernel Functions" as the standard choice for attribute-value data.  They are
included so the examples can contrast structured string kernels with the
classical vector kernels applied to hand-crafted trace statistics (an
instructive comparison the paper motivates but does not run), and so the
learning algorithms can be tested against analytically known kernels.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

__all__ = ["linear_kernel", "polynomial_kernel", "rbf_kernel", "VectorKernel", "vector_gram_matrix"]


def linear_kernel(x: np.ndarray, y: np.ndarray) -> float:
    """Plain inner product ``<x, y>``."""
    return float(np.dot(np.asarray(x, dtype=float), np.asarray(y, dtype=float)))


def polynomial_kernel(x: np.ndarray, y: np.ndarray, degree: int = 2, coef0: float = 1.0, gamma: float = 1.0) -> float:
    """Polynomial kernel ``(gamma <x, y> + coef0) ** degree``."""
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    return float((gamma * np.dot(np.asarray(x, dtype=float), np.asarray(y, dtype=float)) + coef0) ** degree)


def rbf_kernel(x: np.ndarray, y: np.ndarray, gamma: float = 1.0) -> float:
    """Gaussian kernel ``exp(-gamma ||x - y||^2)``."""
    if gamma <= 0:
        raise ValueError(f"gamma must be > 0, got {gamma}")
    difference = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
    return float(np.exp(-gamma * float(np.dot(difference, difference))))


class VectorKernel:
    """A named kernel over fixed-length numeric vectors.

    Provides the same ``value`` / ``matrix`` shape as the string kernels so
    the learning algorithms can consume either.
    """

    def __init__(self, function: Callable[..., float], name: str, **parameters) -> None:
        self._function = function
        self.name = name
        self.parameters = parameters

    @classmethod
    def linear(cls) -> "VectorKernel":
        """Linear kernel."""
        return cls(linear_kernel, "linear")

    @classmethod
    def polynomial(cls, degree: int = 2, coef0: float = 1.0, gamma: float = 1.0) -> "VectorKernel":
        """Polynomial kernel of the given degree."""
        return cls(polynomial_kernel, f"poly(d={degree})", degree=degree, coef0=coef0, gamma=gamma)

    @classmethod
    def rbf(cls, gamma: float = 1.0) -> "VectorKernel":
        """Gaussian RBF kernel."""
        return cls(rbf_kernel, f"rbf(gamma={gamma})", gamma=gamma)

    def value(self, x: np.ndarray, y: np.ndarray) -> float:
        """Kernel value between two vectors."""
        return self._function(x, y, **self.parameters)

    def matrix(self, vectors: Sequence[np.ndarray], normalized: bool = False) -> np.ndarray:
        """Gram matrix over a sequence of vectors."""
        return vector_gram_matrix(vectors, self, normalized=normalized)


def vector_gram_matrix(
    vectors: Sequence[np.ndarray],
    kernel: Optional[VectorKernel] = None,
    normalized: bool = False,
) -> np.ndarray:
    """Compute the Gram matrix of *vectors* under *kernel* (linear by default)."""
    kernel = kernel or VectorKernel.linear()
    count = len(vectors)
    gram = np.zeros((count, count), dtype=float)
    for i in range(count):
        for j in range(i, count):
            value = kernel.value(vectors[i], vectors[j])
            gram[i, j] = value
            gram[j, i] = value
    if normalized:
        diagonal = np.sqrt(np.maximum(np.diag(gram), 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            inverse = np.where(diagonal > 0, 1.0 / diagonal, 0.0)
        gram = gram * inverse[:, None] * inverse[None, :]
        np.fill_diagonal(gram, np.where(diagonal > 0, 1.0, 0.0))
    return gram
