"""String and vector kernels: the baselines the paper compares against.

* :mod:`repro.kernels.base` — the :class:`StringKernel` interface;
* :mod:`repro.kernels.spectrum` — k-spectrum kernel (Leslie et al., 2002);
* :mod:`repro.kernels.blended` — blended k-spectrum kernel (Shawe-Taylor &
  Cristianini, 2004), the paper's main baseline;
* :mod:`repro.kernels.bag` — bag-of-characters / bag-of-words kernels;
* :mod:`repro.kernels.vector` — linear / polynomial / RBF kernels on vectors;
* :mod:`repro.kernels.composite` — sum / product / scaling combinators.

The Kast Spectrum Kernel itself lives in :mod:`repro.core.kast`.
"""

from repro.kernels.bag import BagOfCharactersKernel, BagOfWordsKernel
from repro.kernels.base import KernelEvaluationError, StringKernel
from repro.kernels.blended import BlendedSpectrumKernel
from repro.kernels.composite import NormalizedKernel, ProductKernel, ScaledKernel, SumKernel
from repro.kernels.spectrum import SpectrumKernel
from repro.kernels.vector import (
    VectorKernel,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
    vector_gram_matrix,
)

__all__ = [
    "BagOfCharactersKernel",
    "BagOfWordsKernel",
    "KernelEvaluationError",
    "StringKernel",
    "BlendedSpectrumKernel",
    "NormalizedKernel",
    "ProductKernel",
    "ScaledKernel",
    "SumKernel",
    "SpectrumKernel",
    "VectorKernel",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "vector_gram_matrix",
]
