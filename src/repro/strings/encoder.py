"""Flattening of compacted access-pattern trees into weighted strings.

Section 3.1, "From Trees to Strings": the compacted tree is traversed in
pre-order and each node becomes a token:

* leaf nodes become ``name[bytes]`` tokens whose weight is the repetition
  count;
* ROOT, HANDLE and BLOCK nodes become ``[ROOT]``, ``[HANDLE]`` and
  ``[BLOCK]`` tokens with weight 1;
* whenever the pre-order walk ascends before visiting the next node, a
  ``[LEVEL_UP]`` token is emitted whose weight is the number of levels
  jumped.  No token is needed for descents because a parent-to-child step is
  always exactly one level and is implicit between adjacent tokens.

The encoder also offers the full trace → string convenience (build tree,
compact, encode) because that is the combination every experiment uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.strings.tokens import (
    BLOCK_LITERAL,
    HANDLE_LITERAL,
    LEVEL_UP_LITERAL,
    ROOT_LITERAL,
    Token,
    WeightedString,
    operation_literal,
)
from repro.traces.model import IOTrace
from repro.traces.operations import DEFAULT_REGISTRY, OperationRegistry
from repro.tree.builder import TreeBuilder
from repro.tree.compaction import CompactionConfig, TreeCompactor
from repro.tree.node import NodeKind, PatternNode
from repro.tree.traversal import preorder_with_level_changes

__all__ = ["StringEncoder", "encode_tree", "trace_to_string"]

_STRUCTURAL_LITERALS = {
    NodeKind.ROOT: ROOT_LITERAL,
    NodeKind.HANDLE: HANDLE_LITERAL,
    NodeKind.BLOCK: BLOCK_LITERAL,
}


@dataclass
class StringEncoder:
    """Encode access-pattern trees (or traces) as weighted strings.

    Parameters
    ----------
    emit_level_up:
        Emit ``[LEVEL_UP]`` tokens on ascents (paper behaviour).  Disabling
        them is an ablation that discards tree-structure information.
    include_bytes_in_literal:
        Include the byte value in operation literals (``read[1024]``).  When
        false, every operation literal uses ``[0]`` which — combined with
        building the tree without byte information — yields the paper's
        byte-free string variant.
    registry:
        Operation registry used when encoding directly from traces.
    compaction:
        Compaction configuration used when encoding directly from traces.
    use_byte_information:
        Whether the tree builder keeps byte counts when encoding directly
        from traces.  Kept separate from ``include_bytes_in_literal`` so the
        two halves of the byte-info switch can be ablated independently; the
        pipeline sets them together.
    """

    emit_level_up: bool = True
    include_bytes_in_literal: bool = True
    registry: OperationRegistry = None  # type: ignore[assignment]
    compaction: Optional[CompactionConfig] = None
    use_byte_information: bool = True

    def __post_init__(self) -> None:
        if self.registry is None:
            self.registry = DEFAULT_REGISTRY
        if self.compaction is None:
            self.compaction = CompactionConfig.paper()

    # ------------------------------------------------------------------
    # Tree -> string
    # ------------------------------------------------------------------
    def encode_tree(self, root: PatternNode, name: str = "string", label: Optional[str] = None) -> WeightedString:
        """Encode an (already compacted) tree as a weighted string."""
        tokens: List[Token] = []
        for step in preorder_with_level_changes(root):
            if self.emit_level_up and step.levels_up > 0:
                tokens.append(Token(LEVEL_UP_LITERAL, step.levels_up))
            node = step.node
            if node.kind is NodeKind.OPERATION:
                nbytes = node.nbytes if self.include_bytes_in_literal else 0
                tokens.append(Token(operation_literal(node.name, nbytes), node.repetitions))
            else:
                tokens.append(Token(_STRUCTURAL_LITERALS[node.kind], 1))
        return WeightedString(tokens, name=name, label=label)

    # ------------------------------------------------------------------
    # Trace -> string
    # ------------------------------------------------------------------
    def encode_trace(self, trace: IOTrace) -> WeightedString:
        """Full conversion: trace → tree → compacted tree → weighted string."""
        builder = TreeBuilder(
            registry=self.registry,
            use_byte_information=self.use_byte_information,
        )
        tree = builder.build(trace)
        compacted = TreeCompactor(self.compaction).compact(tree, in_place=True)
        return self.encode_tree(compacted, name=trace.name, label=trace.label)

    def encode_corpus(self, traces: List[IOTrace]) -> List[WeightedString]:
        """Encode a list of traces, preserving order, names and labels."""
        return [self.encode_trace(trace) for trace in traces]


def encode_tree(root: PatternNode, name: str = "string", label: Optional[str] = None, **kwargs) -> WeightedString:
    """Encode *root* with a default-configured :class:`StringEncoder`."""
    return StringEncoder(**kwargs).encode_tree(root, name=name, label=label)


def trace_to_string(
    trace: IOTrace,
    use_byte_information: bool = True,
    compaction: Optional[CompactionConfig] = None,
    emit_level_up: bool = True,
) -> WeightedString:
    """One-call trace → weighted string conversion.

    Parameters mirror the experimental switches of the paper: byte
    information on/off and (for ablations) compaction config and the
    ``[LEVEL_UP]`` token.
    """
    encoder = StringEncoder(
        emit_level_up=emit_level_up,
        include_bytes_in_literal=use_byte_information,
        use_byte_information=use_byte_information,
        compaction=compaction,
    )
    return encoder.encode_trace(trace)
