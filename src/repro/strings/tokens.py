"""Weighted tokens and weighted strings.

Section 3.1/3.2 of the paper:

* a **token** is a literal plus a weight.  Leaf tokens have the literal
  ``name[bytes]`` and the repetition count as weight; the structural tokens
  ``[ROOT]``, ``[HANDLE]`` and ``[BLOCK]`` always have weight 1; the
  ``[LEVEL_UP]`` token's weight is the number of levels ascended;
* a **weighted string** is a sequence of consecutive weighted tokens;
* a **substring** is a contiguous run of tokens fully contained in a string;
* the **weight of a string** is the sum of the weights of its tokens.

:class:`WeightedString` also provides a compact textual syntax used by tests,
the CLI and the worked-example benchmark::

    [ROOT]:1 [HANDLE]:1 [BLOCK]:1 write[1024]:3 [LEVEL_UP]:2

``parse`` accepts weights separated by ``:`` or ``*``; a missing weight means 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "ROOT_LITERAL",
    "HANDLE_LITERAL",
    "BLOCK_LITERAL",
    "LEVEL_UP_LITERAL",
    "STRUCTURAL_LITERALS",
    "Token",
    "WeightedString",
    "operation_literal",
]

ROOT_LITERAL = "[ROOT]"
HANDLE_LITERAL = "[HANDLE]"
BLOCK_LITERAL = "[BLOCK]"
LEVEL_UP_LITERAL = "[LEVEL_UP]"

#: Literals that do not correspond to operation leaves.
STRUCTURAL_LITERALS = frozenset({ROOT_LITERAL, HANDLE_LITERAL, BLOCK_LITERAL, LEVEL_UP_LITERAL})


def operation_literal(name: str, nbytes: int) -> str:
    """Build the literal part of an operation token: ``name[bytes]``."""
    return f"{name}[{int(nbytes)}]"


@dataclass(frozen=True)
class Token:
    """A weighted token: a literal part plus a positive integer weight."""

    literal: str
    weight: int = 1

    def __post_init__(self) -> None:
        if not self.literal:
            raise ValueError("Token.literal must be a non-empty string")
        if self.weight < 1:
            raise ValueError(f"Token.weight must be >= 1, got {self.weight}")

    @property
    def is_structural(self) -> bool:
        """Whether this token is one of the imaginary ROOT/HANDLE/BLOCK/LEVEL_UP tokens."""
        return self.literal in STRUCTURAL_LITERALS

    @property
    def is_level_up(self) -> bool:
        """Whether this token marks an ascent in the pre-order traversal."""
        return self.literal == LEVEL_UP_LITERAL

    def with_weight(self, weight: int) -> "Token":
        """Return a copy of this token with a different weight."""
        return Token(self.literal, weight)

    def __str__(self) -> str:
        return f"{self.literal}:{self.weight}"


class WeightedString:
    """An immutable sequence of weighted tokens.

    Supports the sequence protocol (length, indexing, slicing, iteration),
    weight queries with a threshold, and a round-trippable text format.
    """

    __slots__ = ("_tokens", "name", "label")

    def __init__(
        self,
        tokens: Iterable[Token],
        name: str = "string",
        label: Optional[str] = None,
    ) -> None:
        self._tokens: Tuple[Token, ...] = tuple(tokens)
        self.name = name
        self.label = label

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[str, int]],
        name: str = "string",
        label: Optional[str] = None,
    ) -> "WeightedString":
        """Build a string from ``(literal, weight)`` pairs."""
        return cls((Token(literal, weight) for literal, weight in pairs), name=name, label=label)

    @classmethod
    def parse(cls, text: str, name: str = "string", label: Optional[str] = None) -> "WeightedString":
        """Parse the compact text form (whitespace-separated ``literal:weight``)."""
        tokens: List[Token] = []
        for chunk in text.split():
            literal = chunk
            weight = 1
            for separator in (":", "*"):
                if separator in chunk:
                    literal, _, weight_text = chunk.rpartition(separator)
                    try:
                        weight = int(weight_text)
                    except ValueError as exc:
                        raise ValueError(f"invalid token weight in {chunk!r}") from exc
                    break
            if not literal:
                raise ValueError(f"invalid token {chunk!r}")
            tokens.append(Token(literal, weight))
        return cls(tokens, name=name, label=label)

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    @property
    def tokens(self) -> Tuple[Token, ...]:
        """The tokens of the string as an immutable tuple."""
        return self._tokens

    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens)

    def __getitem__(self, index: Union[int, slice]) -> Union[Token, "WeightedString"]:
        if isinstance(index, slice):
            return WeightedString(self._tokens[index], name=f"{self.name}[{index.start}:{index.stop}]", label=self.label)
        return self._tokens[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedString):
            return NotImplemented
        return self._tokens == other._tokens

    def __hash__(self) -> int:
        return hash(self._tokens)

    # ------------------------------------------------------------------
    # Weight queries
    # ------------------------------------------------------------------
    def weight(self, min_token_weight: int = 1) -> int:
        """Sum of the weights of all tokens whose weight is >= *min_token_weight*.

        ``weight(n)`` is exactly the paper's :math:`weight_{w \\ge n}` function
        used in the normalisation of the worked example.
        """
        return sum(token.weight for token in self._tokens if token.weight >= min_token_weight)

    def total_weight(self) -> int:
        """Sum of all token weights (``weight(1)``)."""
        return self.weight(1)

    def max_token_weight(self) -> int:
        """The largest single token weight (0 for an empty string)."""
        if not self._tokens:
            return 0
        return max(token.weight for token in self._tokens)

    def literals(self) -> List[str]:
        """The literal parts of the tokens, in order."""
        return [token.literal for token in self._tokens]

    def weights(self) -> List[int]:
        """The weights of the tokens, in order."""
        return [token.weight for token in self._tokens]

    # ------------------------------------------------------------------
    # Derived strings
    # ------------------------------------------------------------------
    def substring(self, start: int, length: int) -> "WeightedString":
        """Return the substring of *length* tokens starting at *start*."""
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        if start < 0 or start + length > len(self._tokens):
            raise IndexError(
                f"substring [{start}, {start + length}) out of range for string of {len(self._tokens)} tokens"
            )
        return WeightedString(
            self._tokens[start : start + length],
            name=f"{self.name}[{start}:{start + length}]",
            label=self.label,
        )

    def without_structural_tokens(self) -> "WeightedString":
        """Return a copy keeping only operation tokens (ablation helper)."""
        return WeightedString(
            (token for token in self._tokens if not token.is_structural),
            name=self.name,
            label=self.label,
        )

    def concatenated(self, other: "WeightedString") -> "WeightedString":
        """Return a new string with *other*'s tokens appended."""
        return WeightedString(self._tokens + other._tokens, name=f"{self.name}+{other.name}", label=self.label)

    def with_name(self, name: str) -> "WeightedString":
        """Return a copy with a different name."""
        return WeightedString(self._tokens, name=name, label=self.label)

    def with_label(self, label: Optional[str]) -> "WeightedString":
        """Return a copy with a different label."""
        return WeightedString(self._tokens, name=self.name, label=label)

    # ------------------------------------------------------------------
    # Text form
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render the string in the compact ``literal:weight`` format."""
        return " ".join(str(token) for token in self._tokens)

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"WeightedString(name={self.name!r}, tokens={len(self._tokens)}, weight={self.total_weight()})"
