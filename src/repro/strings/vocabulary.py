"""Token vocabularies.

The kernels themselves never need an explicit vocabulary — they work on
shared substrings — but a vocabulary is useful for:

* building explicit (sparse) feature vectors for the baseline bag kernels;
* diagnostics (how many distinct tokens does a corpus produce?  how does the
  cut weight relate to token-weight distribution?);
* stable integer encodings of strings for fast hashing in the spectrum
  kernels.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.strings.tokens import Token, WeightedString

__all__ = ["Vocabulary", "build_vocabulary"]


class Vocabulary:
    """A bidirectional mapping between token literals and integer ids."""

    def __init__(self) -> None:
        self._literal_to_id: Dict[str, int] = {}
        self._id_to_literal: List[str] = []
        self._frequencies: Counter = Counter()
        self._weight_totals: Counter = Counter()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, literal: str, weight: int = 1) -> int:
        """Add one occurrence of *literal* (with *weight*) and return its id."""
        token_id = self.intern(literal)
        self._frequencies[literal] += 1
        self._weight_totals[literal] += weight
        return token_id

    def add_string(self, string: WeightedString) -> None:
        """Add every token of *string*."""
        for token in string:
            self.add(token.literal, token.weight)

    def add_corpus(self, strings: Iterable[WeightedString]) -> None:
        """Add every token of every string in *strings*."""
        for string in strings:
            self.add_string(string)

    def intern(self, literal: str) -> int:
        """Return the id of *literal*, assigning a fresh one if unknown.

        Unlike :meth:`add` this does not touch the frequency/weight
        statistics — it is the id-assignment primitive used by
        :class:`~repro.strings.interner.TokenInterner` for fast integer
        encodings of strings.
        """
        token_id = self._literal_to_id.get(literal)
        if token_id is None:
            token_id = len(self._id_to_literal)
            self._literal_to_id[literal] = token_id
            self._id_to_literal.append(literal)
        return token_id

    def intern_all(self, literals: Sequence[str]) -> List[int]:
        """Intern every literal of a sequence and return the ids in order."""
        lookup = self._literal_to_id.get
        ids: List[int] = []
        for literal in literals:
            token_id = lookup(literal)
            if token_id is None:
                token_id = self.intern(literal)
            ids.append(token_id)
        return ids

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def id_of(self, literal: str) -> int:
        """Return the id of *literal*; raises ``KeyError`` if unknown."""
        return self._literal_to_id[literal]

    def literal_of(self, token_id: int) -> str:
        """Return the literal with the given id."""
        return self._id_to_literal[token_id]

    def __contains__(self, literal: str) -> bool:
        return literal in self._literal_to_id

    def __len__(self) -> int:
        return len(self._id_to_literal)

    def literals(self) -> List[str]:
        """All known literals in id order."""
        return list(self._id_to_literal)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def frequency(self, literal: str) -> int:
        """Number of token occurrences observed for *literal*."""
        return self._frequencies[literal]

    def total_weight(self, literal: str) -> int:
        """Sum of the weights observed for *literal*."""
        return self._weight_totals[literal]

    def most_common(self, n: int = 10) -> List[Tuple[str, int]]:
        """The *n* most frequent literals with their occurrence counts."""
        return self._frequencies.most_common(n)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(self, string: WeightedString) -> List[int]:
        """Encode *string* as a list of token ids (unknown literals are added)."""
        return [self.add(token.literal, 0) for token in string]

    def bag_of_tokens(self, string: WeightedString, weighted: bool = True) -> Dict[int, float]:
        """Sparse bag-of-tokens vector: token id → summed weight (or count)."""
        vector: Dict[int, float] = {}
        for token in string:
            token_id = self.add(token.literal, 0)
            vector[token_id] = vector.get(token_id, 0.0) + (token.weight if weighted else 1.0)
        return vector


def build_vocabulary(strings: Sequence[WeightedString]) -> Vocabulary:
    """Build a vocabulary covering every token of *strings*."""
    vocabulary = Vocabulary()
    vocabulary.add_corpus(strings)
    return vocabulary
