"""Weighted-string representation of I/O access patterns.

* :mod:`repro.strings.tokens` — :class:`Token` and :class:`WeightedString`;
* :mod:`repro.strings.encoder` — tree/trace → weighted string conversion
  (pre-order flattening with ``[LEVEL_UP]`` tokens);
* :mod:`repro.strings.vocabulary` — token vocabularies and bag-of-token
  vectors for the baseline kernels.
"""

from repro.strings.encoder import StringEncoder, encode_tree, trace_to_string
from repro.strings.interner import TokenInterner
from repro.strings.tokens import (
    BLOCK_LITERAL,
    HANDLE_LITERAL,
    LEVEL_UP_LITERAL,
    ROOT_LITERAL,
    STRUCTURAL_LITERALS,
    Token,
    WeightedString,
    operation_literal,
)
from repro.strings.vocabulary import Vocabulary, build_vocabulary

__all__ = [
    "StringEncoder",
    "encode_tree",
    "trace_to_string",
    "BLOCK_LITERAL",
    "HANDLE_LITERAL",
    "LEVEL_UP_LITERAL",
    "ROOT_LITERAL",
    "STRUCTURAL_LITERALS",
    "Token",
    "WeightedString",
    "operation_literal",
    "TokenInterner",
    "Vocabulary",
    "build_vocabulary",
]
