"""Corpus-level token interning: literals → small integer ids → NumPy arrays.

The Kast kernel's candidate search compares token literals pairwise.  Doing
that on Python strings costs a hash + equality check per comparison; doing it
on small integers lets NumPy evaluate the whole equality matrix in one
vectorised sweep.  :class:`TokenInterner` provides the bridge:

* it owns a :class:`~repro.strings.vocabulary.Vocabulary` that assigns each
  distinct literal a dense integer id (corpus-level: every string encoded
  through the same interner shares the id space, so two strings' arrays are
  directly comparable);
* :meth:`encode` turns a sequence of literals into an ``int32`` NumPy array;
* encoding is thread-safe, so one interner can be shared by the
  :class:`~repro.core.engine.GramEngine` worker pool and across the cut-weight
  sweep (the encoding does not depend on the cut weight).
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.strings.tokens import WeightedString
from repro.strings.vocabulary import Vocabulary

__all__ = ["TokenInterner"]


class TokenInterner:
    """Thread-safe literal → integer-id encoder shared across a corpus.

    Parameters
    ----------
    vocabulary:
        Optional existing vocabulary to extend; a fresh one is created by
        default.  The interner only ever *adds* literals, so ids remain
        stable for the lifetime of the interner.
    """

    def __init__(self, vocabulary: Optional[Vocabulary] = None) -> None:
        self.vocabulary = vocabulary if vocabulary is not None else Vocabulary()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.vocabulary)

    def id_of(self, literal: str) -> int:
        """Id of *literal*, interning it first if unknown."""
        with self._lock:
            return self.vocabulary.intern(literal)

    def encode(self, literals: Sequence[str]) -> np.ndarray:
        """Encode a sequence of literals as a dense ``int32`` array.

        Unknown literals are interned on the fly, so any pattern drawn from a
        previously encoded string round-trips without a separate registration
        step.
        """
        with self._lock:
            ids = self.vocabulary.intern_all(literals)
        return np.asarray(ids, dtype=np.int32)

    def encode_string(self, string: WeightedString) -> np.ndarray:
        """Encode the literals of *string* (see :meth:`encode`)."""
        return self.encode([token.literal for token in string])

    def encode_corpus(self, strings: Iterable[WeightedString]) -> list:
        """Encode every string of a corpus, returning the list of arrays."""
        return [self.encode_string(string) for string in strings]
