"""Synthetic mutation of I/O traces.

Section 4.1 of the paper: "For each pattern 4 additional synthetic copies
were created.  Such copies introduced small mutations on the pattern; the
idea behind these mutations was the need to create access patterns that
were, in theory, closer to a determined example than the rest of the
category members."

This module implements that mutation step.  A :class:`TraceMutator` applies a
configurable mix of local edits to a trace:

* **byte jitter** — multiply a data operation's byte count by a small factor
  or add/subtract a few bytes;
* **operation duplication** — repeat an operation in place (an extra loop
  iteration);
* **operation deletion** — drop a non-structural operation;
* **operation substitution** — swap a data operation for a closely related
  one (``read`` ↔ ``pread``, ``write`` ↔ ``pwrite``);
* **block duplication** — duplicate a whole open..close block on a fresh
  handle (the program opened one more file of the same kind).

Structural operations (``open``/``close``) are never deleted or substituted,
so mutated traces remain well formed.  All randomness flows through a seeded
:class:`random.Random` instance, making corpora exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.traces.model import IOOperation, IOTrace
from repro.traces.operations import DEFAULT_REGISTRY, OperationClass, OperationRegistry

__all__ = ["MutationConfig", "TraceMutator", "mutate_trace", "make_mutated_copies"]

#: Pairs of data operations considered behaviourally interchangeable.
_SUBSTITUTION_GROUPS: Tuple[Tuple[str, ...], ...] = (
    ("read", "pread", "readv"),
    ("write", "pwrite", "writev", "append"),
    ("mpi_read", "read"),
    ("mpi_write", "write"),
)


@dataclass(frozen=True)
class MutationConfig:
    """Probabilities and magnitudes of the individual mutation kinds.

    All rates are per-operation probabilities except ``block_duplication_rate``
    which is a per-trace probability.  The defaults produce "small mutations"
    in the paper's sense: copies stay much closer to their original than to
    other members of the same category.
    """

    byte_jitter_rate: float = 0.15
    byte_jitter_max_factor: float = 0.25
    duplication_rate: float = 0.05
    deletion_rate: float = 0.03
    substitution_rate: float = 0.04
    block_duplication_rate: float = 0.25
    max_block_duplications: int = 1

    def __post_init__(self) -> None:
        for name in (
            "byte_jitter_rate",
            "duplication_rate",
            "deletion_rate",
            "substitution_rate",
            "block_duplication_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.byte_jitter_max_factor < 0:
            raise ValueError("byte_jitter_max_factor must be >= 0")
        if self.max_block_duplications < 0:
            raise ValueError("max_block_duplications must be >= 0")

    @classmethod
    def gentle(cls) -> "MutationConfig":
        """Very small perturbations: byte jitter only."""
        return cls(
            byte_jitter_rate=0.10,
            duplication_rate=0.0,
            deletion_rate=0.0,
            substitution_rate=0.0,
            block_duplication_rate=0.0,
        )

    @classmethod
    def paper_corpus(cls) -> "MutationConfig":
        """Mutation mix used when rebuilding the paper's 110-example corpus.

        The copies must stay "in theory, closer to a determined example than
        the rest of the category members" (section 4.1), so the edits are
        restricted to ones that perturb token *weights* and byte values
        locally without reshuffling the operation sequence: deleting or
        substituting operations would shift the pairwise compaction rules and
        move a copy away from its whole category, which is not what the paper
        describes.
        """
        return cls(
            byte_jitter_rate=0.03,
            byte_jitter_max_factor=0.2,
            duplication_rate=0.06,
            deletion_rate=0.0,
            substitution_rate=0.0,
            block_duplication_rate=0.3,
            max_block_duplications=1,
        )

    @classmethod
    def aggressive(cls) -> "MutationConfig":
        """Larger perturbations, useful for robustness studies."""
        return cls(
            byte_jitter_rate=0.35,
            byte_jitter_max_factor=0.5,
            duplication_rate=0.15,
            deletion_rate=0.10,
            substitution_rate=0.10,
            block_duplication_rate=0.5,
            max_block_duplications=2,
        )


class TraceMutator:
    """Apply randomised local edits to traces.

    Parameters
    ----------
    config:
        Mutation rates; defaults to :class:`MutationConfig` defaults.
    seed:
        Seed for the internal random number generator.
    registry:
        Operation registry used to classify operations (structural operations
        are protected from destructive edits).
    """

    def __init__(
        self,
        config: Optional[MutationConfig] = None,
        seed: Optional[int] = None,
        registry: OperationRegistry = DEFAULT_REGISTRY,
    ) -> None:
        self.config = config or MutationConfig()
        self.registry = registry
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def mutate(self, trace: IOTrace, suffix: str = "mut") -> IOTrace:
        """Return a mutated copy of *trace*.

        The copy keeps the original's label and metadata and gets a derived
        name (``"<original>_<suffix>"``).
        """
        operations = self._mutate_operations(list(trace.operations))
        operations = self._maybe_duplicate_block(operations)
        renumbered = [
            IOOperation(
                name=op.name,
                handle=op.handle,
                nbytes=op.nbytes,
                offset=op.offset,
                timestamp=index,
            )
            for index, op in enumerate(operations)
        ]
        return IOTrace.from_operations(
            renumbered,
            name=f"{trace.name}_{suffix}",
            label=trace.label,
            metadata=trace.metadata,
        )

    def mutate_many(self, trace: IOTrace, copies: int) -> List[IOTrace]:
        """Return *copies* independently mutated copies of *trace*."""
        if copies < 0:
            raise ValueError(f"copies must be >= 0, got {copies}")
        return [self.mutate(trace, suffix=f"mut{index + 1}") for index in range(copies)]

    # ------------------------------------------------------------------
    # Individual mutation kinds
    # ------------------------------------------------------------------
    def _mutate_operations(self, operations: List[IOOperation]) -> List[IOOperation]:
        mutated: List[IOOperation] = []
        for op in operations:
            klass = self.registry.classify(op.name)
            protected = klass in (OperationClass.OPEN, OperationClass.CLOSE)
            if not protected and self._hit(self.config.deletion_rate):
                continue
            current = op
            if not protected and self._hit(self.config.substitution_rate):
                current = self._substitute(current)
            if current.nbytes > 0 and self._hit(self.config.byte_jitter_rate):
                current = self._jitter_bytes(current)
            mutated.append(current)
            if not protected and self._hit(self.config.duplication_rate):
                mutated.append(current)
        return mutated

    def _jitter_bytes(self, op: IOOperation) -> IOOperation:
        factor = 1.0 + self._rng.uniform(-self.config.byte_jitter_max_factor, self.config.byte_jitter_max_factor)
        new_bytes = max(1, int(round(op.nbytes * factor)))
        return op.with_bytes(new_bytes)

    def _substitute(self, op: IOOperation) -> IOOperation:
        for group in _SUBSTITUTION_GROUPS:
            if op.name in group:
                candidates = [name for name in group if name != op.name]
                if candidates:
                    return IOOperation(
                        name=self._rng.choice(candidates),
                        handle=op.handle,
                        nbytes=op.nbytes,
                        offset=op.offset,
                        timestamp=op.timestamp,
                    )
        return op

    def _maybe_duplicate_block(self, operations: List[IOOperation]) -> List[IOOperation]:
        result = list(operations)
        for _ in range(self.config.max_block_duplications):
            if not self._hit(self.config.block_duplication_rate):
                continue
            block = self._pick_block(result)
            if block is None:
                break
            start, end = block
            handle_suffix = f"_dup{self._rng.randrange(1_000_000)}"
            duplicated = [
                IOOperation(
                    name=op.name,
                    handle=op.handle + handle_suffix,
                    nbytes=op.nbytes,
                    offset=op.offset,
                    timestamp=op.timestamp,
                )
                for op in result[start : end + 1]
            ]
            result.extend(duplicated)
        return result

    def _pick_block(self, operations: List[IOOperation]) -> Optional[Tuple[int, int]]:
        """Pick a random (open_index, close_index) pair on the same handle."""
        blocks: List[Tuple[int, int]] = []
        open_index: Dict[str, int] = {}
        for index, op in enumerate(operations):
            klass = self.registry.classify(op.name)
            if klass is OperationClass.OPEN:
                open_index[op.handle] = index
            elif klass is OperationClass.CLOSE and op.handle in open_index:
                blocks.append((open_index.pop(op.handle), index))
        if not blocks:
            return None
        return self._rng.choice(blocks)

    def _hit(self, probability: float) -> bool:
        return self._rng.random() < probability


def mutate_trace(
    trace: IOTrace,
    seed: Optional[int] = None,
    config: Optional[MutationConfig] = None,
) -> IOTrace:
    """Convenience wrapper: return one mutated copy of *trace*."""
    return TraceMutator(config=config, seed=seed).mutate(trace)


def make_mutated_copies(
    trace: IOTrace,
    copies: int = 4,
    seed: Optional[int] = None,
    config: Optional[MutationConfig] = None,
) -> List[IOTrace]:
    """Return *copies* mutated copies of *trace* (the paper uses 4)."""
    return TraceMutator(config=config, seed=seed).mutate_many(trace, copies)
