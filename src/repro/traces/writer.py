"""Serialise :class:`~repro.traces.model.IOTrace` objects back to plain text.

The writer emits the ``whitespace`` dialect understood by
:class:`repro.traces.parser.TraceParser`, so ``parse(write(trace))`` is an
identity on the semantic fields (name, handle, bytes, offset).  This
round-trip is exercised by property-based tests.
"""

from __future__ import annotations

import os
from typing import List, Optional, TextIO, Union

from repro.traces.model import IOTrace

__all__ = ["TraceWriter", "write_trace", "format_trace"]


class TraceWriter:
    """Format traces as plain text.

    Parameters
    ----------
    include_offsets:
        When true, offsets are emitted as a trailing ``offset=N`` field.
    include_header:
        When true (default), a comment header with the trace name, label and
        metadata is emitted; the parser folds it back into trace metadata.
    """

    def __init__(self, include_offsets: bool = True, include_header: bool = True) -> None:
        self.include_offsets = include_offsets
        self.include_header = include_header

    def format(self, trace: IOTrace) -> str:
        """Return the plain-text representation of *trace*."""
        lines: List[str] = []
        if self.include_header:
            lines.append(f"# trace: {trace.name}")
            if trace.label is not None:
                lines.append(f"# label: {trace.label}")
            for key, value in trace.metadata.as_dict().items():
                if value and value != "0":
                    lines.append(f"# {key}: {value}")
        for op in trace.operations:
            parts = [op.name, op.handle, str(op.nbytes)]
            if self.include_offsets and op.offset is not None:
                parts.append(f"offset={op.offset}")
            lines.append(" ".join(parts))
        return "\n".join(lines) + "\n"

    def write(self, trace: IOTrace, stream: TextIO) -> None:
        """Write *trace* to an open text stream."""
        stream.write(self.format(trace))

    def write_file(self, trace: IOTrace, path: Union[str, os.PathLike]) -> None:
        """Write *trace* to the file at *path* (UTF-8)."""
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            self.write(trace, handle)


def format_trace(trace: IOTrace, **kwargs) -> str:
    """Format *trace* with a default-configured :class:`TraceWriter`."""
    return TraceWriter(**kwargs).format(trace)


def write_trace(trace: IOTrace, path: Union[str, os.PathLike], **kwargs) -> None:
    """Write *trace* to *path* with a default-configured :class:`TraceWriter`."""
    TraceWriter(**kwargs).write_file(trace, path)
