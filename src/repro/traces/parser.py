"""Parser for plain-text I/O access-pattern files.

The paper describes the input as "plain text files where each line
corresponds to an operation".  The published text does not fix a concrete
syntax, so this parser accepts a small family of line dialects that cover the
obvious ways such traces are written in practice:

``whitespace`` dialect (default, also what :mod:`repro.traces.writer` emits)::

    # comment lines and blank lines are ignored
    open  fh1
    write fh1 1024
    write fh1 1024 offset=2048
    close fh1

``csv`` dialect::

    open,fh1,0
    write,fh1,1024

``keyvalue`` dialect (one ``key=value`` pair per field)::

    op=write handle=fh1 bytes=1024 offset=2048

All dialects agree on the semantic fields: operation name (required), handle
(optional, defaults to ``"0"``), byte count (optional, defaults to ``0``) and
offset (optional).  The parser canonicalises operation names through the
operation registry so e.g. ``fwrite`` becomes ``write``.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, TextIO, Union

from repro.traces.model import IOOperation, IOTrace, TraceMetadata
from repro.traces.operations import DEFAULT_REGISTRY, OperationRegistry

__all__ = ["TraceParseError", "TraceParser", "parse_trace", "parse_trace_file"]

_COMMENT_PREFIXES = ("#", "//", ";")


class TraceParseError(ValueError):
    """Raised when a trace line cannot be interpreted."""

    def __init__(self, message: str, line_number: Optional[int] = None, line: Optional[str] = None) -> None:
        details = message
        if line_number is not None:
            details = f"line {line_number}: {details}"
        if line is not None:
            details = f"{details} (content: {line!r})"
        super().__init__(details)
        self.line_number = line_number
        self.line = line


@dataclass
class _ParsedFields:
    name: str
    handle: str = "0"
    nbytes: int = 0
    offset: Optional[int] = None


class TraceParser:
    """Parse plain-text I/O access patterns into :class:`IOTrace` objects.

    Parameters
    ----------
    dialect:
        One of ``"auto"``, ``"whitespace"``, ``"csv"`` or ``"keyvalue"``.
        ``"auto"`` sniffs the dialect per line, which is convenient for
        hand-written traces but slightly slower.
    registry:
        Operation registry used to canonicalise operation names.
    canonicalise:
        When true (default), map aliases such as ``fread`` onto their
        canonical names.  Set to false to preserve the raw names.
    strict:
        When true, malformed lines raise :class:`TraceParseError`; when false
        they are skipped silently.
    """

    def __init__(
        self,
        dialect: str = "auto",
        registry: OperationRegistry = DEFAULT_REGISTRY,
        canonicalise: bool = True,
        strict: bool = True,
    ) -> None:
        if dialect not in ("auto", "whitespace", "csv", "keyvalue"):
            raise ValueError(f"unknown trace dialect: {dialect!r}")
        self.dialect = dialect
        self.registry = registry
        self.canonicalise = canonicalise
        self.strict = strict

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def parse_text(self, text: str, name: str = "trace", label: Optional[str] = None) -> IOTrace:
        """Parse a whole trace given as a string."""
        return self.parse_lines(text.splitlines(), name=name, label=label)

    def parse_stream(self, stream: TextIO, name: str = "trace", label: Optional[str] = None) -> IOTrace:
        """Parse a whole trace from an open text stream."""
        return self.parse_lines(stream, name=name, label=label)

    def parse_file(
        self,
        path: Union[str, os.PathLike],
        name: Optional[str] = None,
        label: Optional[str] = None,
    ) -> IOTrace:
        """Parse a trace file from disk; the file stem becomes the trace name."""
        path = os.fspath(path)
        trace_name = name if name is not None else os.path.splitext(os.path.basename(path))[0]
        with open(path, "r", encoding="utf-8") as handle:
            return self.parse_stream(handle, name=trace_name, label=label)

    def parse_lines(
        self,
        lines: Iterable[str],
        name: str = "trace",
        label: Optional[str] = None,
    ) -> IOTrace:
        """Parse an iterable of raw lines into an :class:`IOTrace`."""
        operations: List[IOOperation] = []
        metadata_pairs: List[tuple] = []
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith(_COMMENT_PREFIXES):
                pair = self._parse_metadata_comment(line)
                if pair is not None:
                    metadata_pairs.append(pair)
                continue
            try:
                fields = self._parse_line(line)
            except TraceParseError:
                if self.strict:
                    raise
                continue
            except ValueError as exc:
                if self.strict:
                    raise TraceParseError(str(exc), line_number, line) from exc
                continue
            op_name = self.registry.canonical_name(fields.name) if self.canonicalise else fields.name.lower()
            operations.append(
                IOOperation(
                    name=op_name,
                    handle=fields.handle,
                    nbytes=fields.nbytes,
                    offset=fields.offset,
                    timestamp=len(operations),
                )
            )
        metadata = TraceMetadata(extra=tuple(metadata_pairs)) if metadata_pairs else TraceMetadata()
        return IOTrace.from_operations(operations, name=name, label=label, metadata=metadata)

    # ------------------------------------------------------------------
    # Line-level parsing
    # ------------------------------------------------------------------
    def _parse_metadata_comment(self, line: str) -> Optional[tuple]:
        # "# key: value" comments become trace metadata entries.
        body = line.lstrip("#/; ").strip()
        if ":" in body:
            key, _, value = body.partition(":")
            key = key.strip().lower()
            value = value.strip()
            if key and value and " " not in key:
                return (key, value)
        return None

    def _parse_line(self, line: str) -> _ParsedFields:
        dialect = self.dialect
        if dialect == "auto":
            dialect = self._sniff_dialect(line)
        if dialect == "csv":
            return self._parse_csv(line)
        if dialect == "keyvalue":
            return self._parse_keyvalue(line)
        return self._parse_whitespace(line)

    @staticmethod
    def _sniff_dialect(line: str) -> str:
        # A line is key=value only when its first field already is one; the
        # whitespace dialect accepts trailing key=value fields (e.g. offsets)
        # on otherwise positional lines.
        first_field = line.split(None, 1)[0] if line.split() else ""
        if "=" in first_field:
            return "keyvalue"
        if "," in line:
            return "csv"
        return "whitespace"

    def _parse_whitespace(self, line: str) -> _ParsedFields:
        tokens = line.split()
        if not tokens:
            raise TraceParseError("empty line")
        fields = _ParsedFields(name=tokens[0])
        positional: List[str] = []
        for token in tokens[1:]:
            if "=" in token:
                key, _, value = token.partition("=")
                self._assign_keyvalue(fields, key, value)
            else:
                positional.append(token)
        if positional:
            fields.handle = positional[0]
        if len(positional) > 1:
            fields.nbytes = self._parse_int(positional[1], "byte count")
        if len(positional) > 2:
            fields.offset = self._parse_int(positional[2], "offset")
        if len(positional) > 3:
            raise TraceParseError(f"too many fields on line: {line!r}")
        return fields

    def _parse_csv(self, line: str) -> _ParsedFields:
        parts = [part.strip() for part in line.split(",")]
        if not parts or not parts[0]:
            raise TraceParseError(f"missing operation name: {line!r}")
        fields = _ParsedFields(name=parts[0])
        if len(parts) > 1 and parts[1]:
            fields.handle = parts[1]
        if len(parts) > 2 and parts[2]:
            fields.nbytes = self._parse_int(parts[2], "byte count")
        if len(parts) > 3 and parts[3]:
            fields.offset = self._parse_int(parts[3], "offset")
        if len(parts) > 4:
            raise TraceParseError(f"too many fields on line: {line!r}")
        return fields

    def _parse_keyvalue(self, line: str) -> _ParsedFields:
        fields = _ParsedFields(name="")
        for token in line.split():
            if "=" not in token:
                # Allow a bare leading operation name in key=value lines.
                if not fields.name:
                    fields.name = token
                    continue
                raise TraceParseError(f"expected key=value field, got {token!r}")
            key, _, value = token.partition("=")
            self._assign_keyvalue(fields, key, value)
        if not fields.name:
            raise TraceParseError(f"missing operation name: {line!r}")
        return fields

    def _assign_keyvalue(self, fields: _ParsedFields, key: str, value: str) -> None:
        key = key.strip().lower()
        value = value.strip()
        if key in ("op", "operation", "name", "call"):
            fields.name = value
        elif key in ("handle", "fh", "fd", "file"):
            fields.handle = value
        elif key in ("bytes", "nbytes", "size", "count", "len"):
            fields.nbytes = self._parse_int(value, "byte count")
        elif key in ("offset", "pos", "position"):
            fields.offset = self._parse_int(value, "offset")
        # Unknown keys are ignored: traces often carry timing fields we do not use.

    @staticmethod
    def _parse_int(value: str, what: str) -> int:
        try:
            parsed = int(value, 0)
        except ValueError as exc:
            raise TraceParseError(f"invalid {what}: {value!r}") from exc
        if parsed < 0:
            raise TraceParseError(f"negative {what}: {value!r}")
        return parsed


def parse_trace(text: str, name: str = "trace", label: Optional[str] = None, **kwargs) -> IOTrace:
    """Parse trace *text* with a default-configured :class:`TraceParser`."""
    return TraceParser(**kwargs).parse_text(text, name=name, label=label)


def parse_trace_file(path: Union[str, os.PathLike], label: Optional[str] = None, **kwargs) -> IOTrace:
    """Parse the trace file at *path* with a default-configured parser."""
    return TraceParser(**kwargs).parse_file(path, label=label)
