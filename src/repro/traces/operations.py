"""Taxonomy of I/O operations appearing in access-pattern traces.

The paper (Torres et al., PaCT 2017, section 3.1) treats an I/O access
pattern as a plain-text file where each line records one operation issued by
the traced program.  Operations fall into a small number of behavioural
classes which drive how the trace is turned into a tree:

* *structural* operations (``open`` / ``close``) delimit blocks and become
  BLOCK nodes rather than leaves;
* *negligible* operations (``fileno``, ``nmap``/``mmap``, ``fscanf`` ...) are
  dropped before any further processing;
* *data* operations (``read``, ``write``, ``pread``, ...) carry a byte count;
* *positioning* operations (``lseek``, ``seek``, ``rewind``) move the file
  offset and usually carry a zero byte count.

This module is the single source of truth for that classification.  Both the
parser and the synthetic workload generators consult it, so adding a new
operation name here makes it flow through the whole pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

__all__ = [
    "OperationClass",
    "OperationSpec",
    "OperationRegistry",
    "DEFAULT_REGISTRY",
    "NEGLIGIBLE_OPERATIONS",
    "STRUCTURAL_OPERATIONS",
    "DATA_OPERATIONS",
    "POSITIONING_OPERATIONS",
    "METADATA_OPERATIONS",
    "canonical_name",
    "classify",
    "is_negligible",
    "is_open",
    "is_close",
    "carries_bytes",
]


class OperationClass(enum.Enum):
    """Behavioural class of a traced I/O operation."""

    #: Opens a file handle; starts a BLOCK in the tree representation.
    OPEN = "open"
    #: Closes a file handle; ends the current BLOCK.
    CLOSE = "close"
    #: Transfers payload bytes (read/write family).
    DATA = "data"
    #: Moves the file offset without transferring payload bytes.
    POSITIONING = "positioning"
    #: Touches metadata only (stat, fsync, truncate, ...).
    METADATA = "metadata"
    #: Ignored entirely when building the tree (fileno, mmap, fscanf, ...).
    NEGLIGIBLE = "negligible"
    #: Anything the registry has never seen; kept as a generic leaf.
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class OperationSpec:
    """Static description of one operation name.

    Attributes
    ----------
    name:
        Canonical lower-case operation name.
    klass:
        Behavioural :class:`OperationClass`.
    carries_bytes:
        Whether the operation's trace line is expected to include a byte
        count.  Operations that do not carry bytes are treated as having a
        byte value of zero, which is exactly what compaction rule 4 of the
        paper exploits (e.g. ``lseek`` + ``write`` fusion).
    aliases:
        Alternative spellings that should map onto this canonical name.
    """

    name: str
    klass: OperationClass
    carries_bytes: bool = False
    aliases: Tuple[str, ...] = ()


def _spec(
    name: str,
    klass: OperationClass,
    carries_bytes: bool = False,
    aliases: Iterable[str] = (),
) -> OperationSpec:
    return OperationSpec(name=name, klass=klass, carries_bytes=carries_bytes, aliases=tuple(aliases))


_BUILTIN_SPECS: Tuple[OperationSpec, ...] = (
    # Structural.
    _spec("open", OperationClass.OPEN, aliases=("fopen", "open64", "openat", "creat", "mpi_file_open")),
    _spec("close", OperationClass.CLOSE, aliases=("fclose", "mpi_file_close")),
    # Data transfer.
    _spec("read", OperationClass.DATA, carries_bytes=True, aliases=("fread", "read64")),
    _spec("write", OperationClass.DATA, carries_bytes=True, aliases=("fwrite", "write64")),
    _spec("pread", OperationClass.DATA, carries_bytes=True, aliases=("pread64",)),
    _spec("pwrite", OperationClass.DATA, carries_bytes=True, aliases=("pwrite64",)),
    _spec("readv", OperationClass.DATA, carries_bytes=True),
    _spec("writev", OperationClass.DATA, carries_bytes=True),
    _spec("mpi_read", OperationClass.DATA, carries_bytes=True, aliases=("mpi_file_read", "mpi_file_read_at")),
    _spec("mpi_write", OperationClass.DATA, carries_bytes=True, aliases=("mpi_file_write", "mpi_file_write_at")),
    _spec("append", OperationClass.DATA, carries_bytes=True),
    # Positioning.
    _spec("lseek", OperationClass.POSITIONING, aliases=("lseek64", "fseek", "seek")),
    _spec("rewind", OperationClass.POSITIONING),
    # Metadata.
    _spec("stat", OperationClass.METADATA, aliases=("fstat", "lstat", "stat64", "fstat64")),
    _spec("fsync", OperationClass.METADATA, aliases=("fdatasync", "sync")),
    _spec("truncate", OperationClass.METADATA, carries_bytes=True, aliases=("ftruncate",)),
    _spec("flush", OperationClass.METADATA, aliases=("fflush",)),
    # Negligible -- explicitly named by the paper plus common companions.
    _spec("fileno", OperationClass.NEGLIGIBLE),
    _spec("nmap", OperationClass.NEGLIGIBLE, aliases=("mmap", "munmap", "mmap64")),
    _spec("fscanf", OperationClass.NEGLIGIBLE, aliases=("fprintf", "scanf")),
    _spec("ioctl", OperationClass.NEGLIGIBLE),
    _spec("fcntl", OperationClass.NEGLIGIBLE),
    _spec("dup", OperationClass.NEGLIGIBLE, aliases=("dup2",)),
    _spec("feof", OperationClass.NEGLIGIBLE, aliases=("ferror", "clearerr")),
)


class OperationRegistry:
    """Lookup table mapping operation names (and aliases) to their spec.

    The registry is deliberately mutable so downstream users tracing exotic
    I/O layers (HDF5, NetCDF, ADIOS, object stores) can register their own
    operation names without patching the library::

        registry = OperationRegistry.with_builtins()
        registry.register(OperationSpec("h5dwrite", OperationClass.DATA, carries_bytes=True))
    """

    def __init__(self, specs: Iterable[OperationSpec] = ()) -> None:
        self._by_name: Dict[str, OperationSpec] = {}
        for spec in specs:
            self.register(spec)

    @classmethod
    def with_builtins(cls) -> "OperationRegistry":
        """Return a registry pre-populated with the built-in POSIX/MPI names."""
        return cls(_BUILTIN_SPECS)

    def register(self, spec: OperationSpec) -> None:
        """Register *spec* under its canonical name and all of its aliases."""
        self._by_name[spec.name.lower()] = spec
        for alias in spec.aliases:
            self._by_name[alias.lower()] = spec

    def spec_for(self, name: str) -> Optional[OperationSpec]:
        """Return the spec registered for *name* (alias-aware), or ``None``."""
        return self._by_name.get(name.strip().lower())

    def canonical_name(self, name: str) -> str:
        """Map *name* to its canonical spelling; unknown names are lower-cased."""
        spec = self.spec_for(name)
        if spec is None:
            return name.strip().lower()
        return spec.name

    def classify(self, name: str) -> OperationClass:
        """Return the :class:`OperationClass` of *name*."""
        spec = self.spec_for(name)
        if spec is None:
            return OperationClass.UNKNOWN
        return spec.klass

    def carries_bytes(self, name: str) -> bool:
        """Whether lines for *name* are expected to include a byte count."""
        spec = self.spec_for(name)
        if spec is None:
            # Unknown operations keep whatever byte information the trace has.
            return True
        return spec.carries_bytes

    def is_negligible(self, name: str) -> bool:
        """Whether *name* should be dropped before building the tree."""
        return self.classify(name) is OperationClass.NEGLIGIBLE

    def is_open(self, name: str) -> bool:
        """Whether *name* opens a file handle (starts a BLOCK)."""
        return self.classify(name) is OperationClass.OPEN

    def is_close(self, name: str) -> bool:
        """Whether *name* closes a file handle (ends a BLOCK)."""
        return self.classify(name) is OperationClass.CLOSE

    def known_names(self) -> FrozenSet[str]:
        """All canonical names currently registered (aliases excluded)."""
        return frozenset(spec.name for spec in self._by_name.values())

    def __contains__(self, name: str) -> bool:
        return self.spec_for(name) is not None

    def __len__(self) -> int:
        return len({id(spec) for spec in self._by_name.values()})


#: Registry used by the parser and workload generators unless overridden.
DEFAULT_REGISTRY = OperationRegistry.with_builtins()

#: Operation names the paper explicitly ignores, plus common companions.
NEGLIGIBLE_OPERATIONS: FrozenSet[str] = frozenset(
    name for name in DEFAULT_REGISTRY.known_names() if DEFAULT_REGISTRY.is_negligible(name)
)

#: Names that open or close file handles.
STRUCTURAL_OPERATIONS: FrozenSet[str] = frozenset(
    name
    for name in DEFAULT_REGISTRY.known_names()
    if DEFAULT_REGISTRY.classify(name) in (OperationClass.OPEN, OperationClass.CLOSE)
)

#: Names whose trace lines carry payload byte counts.
DATA_OPERATIONS: FrozenSet[str] = frozenset(
    name for name in DEFAULT_REGISTRY.known_names() if DEFAULT_REGISTRY.classify(name) is OperationClass.DATA
)

#: Offset-moving operations (zero byte count).
POSITIONING_OPERATIONS: FrozenSet[str] = frozenset(
    name
    for name in DEFAULT_REGISTRY.known_names()
    if DEFAULT_REGISTRY.classify(name) is OperationClass.POSITIONING
)

#: Metadata-only operations.
METADATA_OPERATIONS: FrozenSet[str] = frozenset(
    name for name in DEFAULT_REGISTRY.known_names() if DEFAULT_REGISTRY.classify(name) is OperationClass.METADATA
)


def canonical_name(name: str) -> str:
    """Module-level shortcut for :meth:`OperationRegistry.canonical_name`."""
    return DEFAULT_REGISTRY.canonical_name(name)


def classify(name: str) -> OperationClass:
    """Module-level shortcut for :meth:`OperationRegistry.classify`."""
    return DEFAULT_REGISTRY.classify(name)


def is_negligible(name: str) -> bool:
    """Module-level shortcut for :meth:`OperationRegistry.is_negligible`."""
    return DEFAULT_REGISTRY.is_negligible(name)


def is_open(name: str) -> bool:
    """Module-level shortcut for :meth:`OperationRegistry.is_open`."""
    return DEFAULT_REGISTRY.is_open(name)


def is_close(name: str) -> bool:
    """Module-level shortcut for :meth:`OperationRegistry.is_close`."""
    return DEFAULT_REGISTRY.is_close(name)


def carries_bytes(name: str) -> bool:
    """Module-level shortcut for :meth:`OperationRegistry.carries_bytes`."""
    return DEFAULT_REGISTRY.carries_bytes(name)
